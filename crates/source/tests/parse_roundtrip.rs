//! Property suite: `parse ∘ pretty` is the identity up to α-equivalence
//! on generator-produced programs.
//!
//! The parser's own unit tests cover the hand-written corpus; this suite
//! adds the missing property coverage on *random* well-typed programs —
//! closed programs, ground programs, and open components with their
//! environments — at several render widths (line breaks and indentation
//! must never change the parse).

use cccc_source::generate::{GeneratorConfig, TermGenerator};
use cccc_source::parse::parse_term;
use cccc_source::pretty::{term_to_string, term_to_string_width};
use cccc_source::subst::alpha_eq;
use cccc_source::Term;

const SEEDS: u64 = 40;

fn assert_round_trips(term: &Term, context: &str) {
    let printed = term_to_string(term);
    let reparsed = parse_term(&printed)
        .unwrap_or_else(|e| panic!("{context}: failed to re-parse `{printed}`: {e}"));
    assert!(
        alpha_eq(term, &reparsed),
        "{context}: round trip changed term\n  original: {term}\n  reparsed: {reparsed}"
    );
}

#[test]
fn generated_closed_programs_round_trip() {
    for seed in 0..SEEDS {
        let mut generator = TermGenerator::new(seed);
        let (term, ty) = generator.gen_program();
        assert_round_trips(&term, &format!("seed {seed} term"));
        assert_round_trips(&ty, &format!("seed {seed} type"));
    }
}

#[test]
fn generated_ground_programs_round_trip() {
    for seed in 0..SEEDS {
        let mut generator = TermGenerator::new(0x600D + seed);
        let term = generator.gen_ground_program();
        assert_round_trips(&term, &format!("seed {seed}"));
    }
}

#[test]
fn generated_open_components_round_trip_with_their_environments() {
    for seed in 0..SEEDS / 2 {
        let mut generator = TermGenerator::new(0x0BEB + seed);
        let (env, term, substitution) = generator.gen_open_component(3);
        // A *free* generated variable cannot survive a parse (its unique
        // subscript is not reconstructible from text — α-equivalence only
        // quotients binders), so round-trip the γ-closed component, whose
        // generated names are all bound.
        let closed = cccc_source::subst::subst_all(&term, &substitution);
        assert_round_trips(&closed, &format!("seed {seed} closed component"));
        // Every environment type and every closing replacement.
        for decl in env.iter() {
            assert_round_trips(decl.ty(), &format!("seed {seed} env type"));
        }
        for (name, replacement) in &substitution {
            assert_round_trips(replacement, &format!("seed {seed} γ({name})"));
        }
    }
}

#[test]
fn round_trip_is_width_independent() {
    // Narrow widths force line breaks and indentation inside binders and
    // applications; the parse must not change.
    for seed in 0..SEEDS / 2 {
        let mut generator = TermGenerator::new(0x3117 + seed);
        let (term, _) = generator.gen_program();
        for width in [8, 24, 200] {
            let printed = term_to_string_width(&term, width);
            let reparsed = parse_term(&printed).unwrap_or_else(|e| {
                panic!("seed {seed} width {width}: failed to re-parse `{printed}`: {e}")
            });
            assert!(
                alpha_eq(&term, &reparsed),
                "seed {seed} width {width}: round trip changed term"
            );
        }
    }
}

#[test]
fn deeper_generator_configurations_round_trip() {
    let config =
        GeneratorConfig { max_depth: 6, redex_probability: 0.5, variable_probability: 0.5 };
    for seed in 0..SEEDS / 4 {
        let mut generator = TermGenerator::with_config(0xDEE0 ^ seed, config);
        let (term, _) = generator.gen_program();
        assert_round_trips(&term, &format!("deep seed {seed}"));
    }
}
