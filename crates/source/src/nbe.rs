//! Normalization by evaluation (NbE) for CC.
//!
//! The step-based engine in [`crate::reduce`] implements the paper's `⊲`
//! relation literally: every β/ζ-contraction runs a capture-avoiding
//! substitution that re-traverses the term. That is the right *specification*
//! but a poor *algorithm* — definitional equivalence (`≡`, Figure 2) is
//! decided constantly by the type checker, and substitution-based
//! normalization is quadratic (or worse) on exactly those call sites.
//!
//! This module is the algorithmic engine: an environment machine that
//! evaluates terms into a *semantic domain* ([`Value`]) where binders are
//! [`Closure`]s carrying their evaluation environment instead of eagerly
//! substituted bodies, and definitions are unfolded lazily through
//! [`Thunk`]s (δ, evaluated at most once per environment). Normal forms are
//! recovered by read-back ([`quote`]), and equivalence is decided directly
//! on values ([`conv`]) without generating fresh symbols or substituting —
//! binders are crossed with de Bruijn *levels* ([`Head::Local`]).
//!
//! # Paper correspondence
//!
//! | Paper (Figure 2) | Here |
//! |---|---|
//! | `Γ ⊢ e ⊲* v` (reduction to a value) | [`eval`] into [`Value`] |
//! | normal form of `e` | [`quote`] ∘ [`eval`] = [`normalize_nbe`] |
//! | weak-head normal form | [`whnf_nbe`] |
//! | `Γ ⊢ e ≡ e'` with η (`[≡-η1]`/`[≡-η2]`) | [`conv`] / [`conv_terms`] |
//! | δ (unfold `x = e : A ∈ Γ`) | [`ValEnv::from_env`] + lazy [`Thunk`] |
//!
//! The two engines are differentially tested against each other: the
//! property suites assert that [`normalize_nbe`] agrees with
//! [`crate::reduce::normalize`] and that [`conv_terms`] agrees with
//! [`crate::equiv::equiv_spec`] on generator-produced well-typed programs.

use crate::ast::{RcTerm, Term, Universe};
use crate::env::{Decl, Env};
use crate::reduce::ReduceError;
use cccc_util::fuel::Fuel;
use cccc_util::symbol::Symbol;
use std::cell::OnceCell;
use std::rc::Rc;

/// Maximum depth of nested *β-application* frames. The step-based engine
/// runs its head loop iteratively, so divergent (necessarily ill-typed)
/// terms like Ω merely exhaust fuel; the environment machine recurses
/// through every β-application, so we bound that recursion explicitly and
/// report [`ReduceError::OutOfFuel`] instead of overflowing the stack.
/// Structural descent does **not** count against the bound — it is
/// bounded by the term's syntactic depth, exactly like every other
/// recursive traversal in this workspace (`subst`, `alpha_eq`,
/// step-based `normalize`). The bound is sized to stay within the 2 MiB
/// default stack of Rust test threads even in debug builds; the deepest
/// corpus/benchmark workloads evaluate within a few hundred β-frames.
const MAX_EVAL_DEPTH: u32 = 512;

/// A reference-counted semantic value.
pub type RcValue = Rc<Value>;

/// The semantic domain of CC values.
///
/// Canonical forms mirror the value grammar of Theorem 4.8; everything
/// blocked on a variable (or, for ill-typed input, on a non-eliminable
/// value) is a [`Value::Stuck`] spine.
#[derive(Clone, Debug)]
pub enum Value {
    /// A universe `⋆` or `□`.
    Sort(Universe),
    /// The ground type `Bool`.
    BoolTy,
    /// A boolean literal.
    Bool(bool),
    /// A function value `λ x : A. e` whose body is a closure.
    Lam {
        /// The original binder name (used only for read-back).
        binder: Symbol,
        /// The evaluated domain annotation.
        domain: RcValue,
        /// The suspended body.
        body: Closure,
    },
    /// A dependent function type `Π x : A. B`.
    Pi {
        /// The original binder name (used only for read-back).
        binder: Symbol,
        /// The evaluated domain.
        domain: RcValue,
        /// The suspended codomain.
        codomain: Closure,
    },
    /// A strong dependent pair type `Σ x : A. B`.
    Sigma {
        /// The original binder name (used only for read-back).
        binder: Symbol,
        /// The evaluated type of the first component.
        first: RcValue,
        /// The suspended type of the second component.
        second: Closure,
    },
    /// A dependent pair `⟨e1, e2⟩`.
    Pair {
        /// The first component.
        first: RcValue,
        /// The second component.
        second: RcValue,
        /// The evaluated Σ annotation (a typing artifact; ignored by
        /// [`conv`], quoted back by [`quote`]).
        annotation: RcValue,
    },
    /// A neutral/stuck term: a head that cannot reduce, under a spine of
    /// pending eliminations.
    Stuck {
        /// What evaluation is blocked on.
        head: Head,
        /// The eliminations waiting for the head, innermost first.
        spine: Vec<Elim>,
    },
}

impl Value {
    /// A stuck value with an empty spine.
    pub fn stuck(head: Head) -> RcValue {
        Rc::new(Value::Stuck { head, spine: Vec::new() })
    }

    /// A neutral free variable.
    pub fn global(name: Symbol) -> RcValue {
        Value::stuck(Head::Global(name))
    }

    /// A fresh variable at de Bruijn level `level`, as introduced by
    /// [`conv`] and [`quote`] when crossing a binder.
    pub fn local(level: usize) -> RcValue {
        Value::stuck(Head::Local(level))
    }
}

/// The head of a [`Value::Stuck`] spine.
#[derive(Clone, Debug)]
pub enum Head {
    /// A free variable with no definition in the environment.
    Global(Symbol),
    /// A fresh variable introduced when crossing a binder, identified by
    /// its de Bruijn *level* — no fresh symbols are generated during
    /// conversion checking.
    Local(usize),
    /// An ill-typed elimination target (e.g. `fst true`): the value is
    /// canonical but the elimination does not apply, so the term is stuck.
    /// Keeping it here keeps the engine total on arbitrary input.
    Blocked(RcValue),
}

/// One pending elimination in a stuck spine.
#[derive(Clone, Debug)]
pub enum Elim {
    /// Application to an evaluated argument.
    App(RcValue),
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// A conditional blocked on its scrutinee; the branches stay
    /// suspended until read-back or comparison forces them.
    If {
        /// The `then` branch.
        then_branch: Thunk,
        /// The `else` branch.
        else_branch: Thunk,
    },
}

/// A suspended body: a term together with the environment it was closed
/// over, applied by extending that environment with the argument.
#[derive(Clone, Debug)]
pub struct Closure {
    env: ValEnv,
    binder: Symbol,
    body: RcTerm,
}

impl Closure {
    /// Applies the closure to an argument value.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
    pub fn apply(&self, argument: RcValue, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
        let env = self.env.bind(self.binder, Thunk::forced(argument));
        eval_at(&env, &self.body, fuel, 0)
    }
}

/// A lazily evaluated value: evaluated at most once (per environment), the
/// result cached behind an [`OnceCell`]. This is what makes δ-unfolding of
/// environment definitions cheap — each definition is evaluated the first
/// time it is looked up and shared from then on.
#[derive(Clone, Debug)]
pub struct Thunk(Rc<ThunkData>);

#[derive(Debug)]
struct ThunkData {
    cell: OnceCell<RcValue>,
    env: ValEnv,
    /// `None` for already-forced thunks (the cell is pre-filled).
    term: Option<RcTerm>,
}

impl Thunk {
    /// A thunk whose evaluation is suspended.
    pub fn suspended(env: ValEnv, term: RcTerm) -> Thunk {
        Thunk(Rc::new(ThunkData { cell: OnceCell::new(), env, term: Some(term) }))
    }

    /// A thunk holding an already-computed value.
    pub fn forced(value: RcValue) -> Thunk {
        let cell = OnceCell::new();
        let _ = cell.set(value);
        Thunk(Rc::new(ThunkData { cell, env: ValEnv::new(), term: None }))
    }

    /// Forces the thunk, evaluating its term on first use.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
    pub fn force(&self, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
        if let Some(value) = self.0.cell.get() {
            return Ok(value.clone());
        }
        let term = self.0.term.as_ref().expect("suspended thunk carries its term");
        let value = eval_at(&self.0.env, term, fuel, 0)?;
        let _ = self.0.cell.set(value.clone());
        Ok(value)
    }
}

/// A persistent evaluation environment mapping variables to [`Thunk`]s.
///
/// Extension is O(1) and shares the tail, so going under a binder never
/// copies the environment (unlike [`Env::with_assumption`], which clones
/// its vector).
#[derive(Clone, Debug, Default)]
pub struct ValEnv(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Symbol,
    thunk: Thunk,
    rest: ValEnv,
}

impl ValEnv {
    /// The empty environment.
    pub fn new() -> ValEnv {
        ValEnv(None)
    }

    /// Extends the environment with a binding, shadowing earlier entries
    /// of the same name.
    pub fn bind(&self, name: Symbol, thunk: Thunk) -> ValEnv {
        ValEnv(Some(Rc::new(EnvNode { name, thunk, rest: self.clone() })))
    }

    fn lookup(&self, name: Symbol) -> Option<&Thunk> {
        let mut node = self.0.as_deref();
        while let Some(n) = node {
            if n.name == name {
                return Some(&n.thunk);
            }
            node = n.rest.0.as_deref();
        }
        None
    }

    /// Builds the evaluation environment corresponding to a typing
    /// environment `Γ`: assumptions become neutral variables, definitions
    /// become lazy thunks over the environment prefix they were declared
    /// in (the δ rule, evaluated at most once per environment).
    pub fn from_env(env: &Env) -> ValEnv {
        let mut out = ValEnv::new();
        for decl in env.iter() {
            match decl {
                Decl::Assumption { name, .. } => {
                    out = out.bind(*name, Thunk::forced(Value::global(*name)));
                }
                Decl::Definition { name, term, .. } => {
                    let thunk = Thunk::suspended(out.clone(), term.clone());
                    out = out.bind(*name, thunk);
                }
            }
        }
        out
    }
}

/// Evaluates `term` in the evaluation environment `env`.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn eval(env: &ValEnv, term: &Term, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
    eval_at(env, term, fuel, 0)
}

fn eval_at(env: &ValEnv, term: &Term, fuel: &mut Fuel, depth: u32) -> Result<RcValue, ReduceError> {
    if !fuel.tick() || depth > MAX_EVAL_DEPTH {
        return Err(ReduceError::OutOfFuel);
    }
    match term {
        Term::Var(x) => match env.lookup(*x) {
            Some(thunk) => thunk.force(fuel),
            None => Ok(Value::global(*x)),
        },
        Term::Sort(u) => Ok(Rc::new(Value::Sort(*u))),
        Term::BoolTy => Ok(Rc::new(Value::BoolTy)),
        Term::BoolLit(b) => Ok(Rc::new(Value::Bool(*b))),
        Term::Pi { binder, domain, codomain } => Ok(Rc::new(Value::Pi {
            binder: *binder,
            domain: eval_at(env, domain, fuel, depth)?,
            codomain: Closure { env: env.clone(), binder: *binder, body: codomain.clone() },
        })),
        Term::Lam { binder, domain, body } => Ok(Rc::new(Value::Lam {
            binder: *binder,
            domain: eval_at(env, domain, fuel, depth)?,
            body: Closure { env: env.clone(), binder: *binder, body: body.clone() },
        })),
        Term::Sigma { binder, first, second } => Ok(Rc::new(Value::Sigma {
            binder: *binder,
            first: eval_at(env, first, fuel, depth)?,
            second: Closure { env: env.clone(), binder: *binder, body: second.clone() },
        })),
        Term::App { func, arg } => {
            let func = eval_at(env, func, fuel, depth)?;
            let arg = eval_at(env, arg, fuel, depth)?;
            apply(func, arg, fuel, depth)
        }
        // ζ, lazily: the definition is evaluated the first time the body
        // uses it, and at most once.
        Term::Let { binder, bound, body, .. } => {
            let inner = env.bind(*binder, Thunk::suspended(env.clone(), bound.clone()));
            eval_at(&inner, body, fuel, depth)
        }
        Term::Pair { first, second, annotation } => Ok(Rc::new(Value::Pair {
            first: eval_at(env, first, fuel, depth)?,
            second: eval_at(env, second, fuel, depth)?,
            annotation: eval_at(env, annotation, fuel, depth)?,
        })),
        Term::Fst(e) => Ok(project(eval_at(env, e, fuel, depth)?, true)),
        Term::Snd(e) => Ok(project(eval_at(env, e, fuel, depth)?, false)),
        Term::If { scrutinee, then_branch, else_branch } => {
            let scrutinee = eval_at(env, scrutinee, fuel, depth)?;
            match &*scrutinee {
                Value::Bool(true) => eval_at(env, then_branch, fuel, depth),
                Value::Bool(false) => eval_at(env, else_branch, fuel, depth),
                _ => Ok(extend(
                    scrutinee,
                    Elim::If {
                        then_branch: Thunk::suspended(env.clone(), then_branch.clone()),
                        else_branch: Thunk::suspended(env.clone(), else_branch.clone()),
                    },
                )),
            }
        }
    }
}

/// Applies `func` to `arg`: β when the function is a λ-value (one new
/// β-frame against [`MAX_EVAL_DEPTH`]), spine extension otherwise.
fn apply(func: RcValue, arg: RcValue, fuel: &mut Fuel, depth: u32) -> Result<RcValue, ReduceError> {
    if let Value::Lam { body, .. } = &*func {
        let env = body.env.bind(body.binder, Thunk::forced(arg));
        let body = body.body.clone();
        return eval_at(&env, &body, fuel, depth + 1);
    }
    Ok(extend(func, Elim::App(arg)))
}

/// Projects a component out of `value`: π1/π2 when it is a pair, spine
/// extension otherwise.
fn project(value: RcValue, first: bool) -> RcValue {
    if let Value::Pair { first: a, second: b, .. } = &*value {
        return if first { a.clone() } else { b.clone() };
    }
    extend(value, if first { Elim::Fst } else { Elim::Snd })
}

/// Pushes an elimination onto a stuck value's spine, wrapping canonical
/// values that the elimination does not apply to in a [`Head::Blocked`].
/// When the value is uniquely owned the spine is reused in place, so
/// building a neutral spine of n eliminations stays linear.
fn extend(value: RcValue, elim: Elim) -> RcValue {
    match Rc::try_unwrap(value) {
        Ok(Value::Stuck { head, mut spine }) => {
            spine.push(elim);
            Rc::new(Value::Stuck { head, spine })
        }
        Ok(other) => {
            Rc::new(Value::Stuck { head: Head::Blocked(Rc::new(other)), spine: vec![elim] })
        }
        Err(shared) => {
            if let Value::Stuck { head, spine } = &*shared {
                let mut spine = spine.clone();
                spine.push(elim);
                Rc::new(Value::Stuck { head: head.clone(), spine })
            } else {
                Rc::new(Value::Stuck { head: Head::Blocked(shared), spine: vec![elim] })
            }
        }
    }
}

/// Reads a value back into a β/δ/ζ/π-normal [`Term`].
///
/// Binders are re-introduced with *canonical* generated names, one per de
/// Bruijn level, shared by every read-back on the thread: quoting the same
/// value twice yields the *same* interned term, so repeated normalization
/// hits the hash-consing kernel and repeated conversion checks hit the
/// memo table. The canonical names are globally fresh symbols, so they can
/// never collide with a symbol appearing in any source program; the one
/// way a collision can still arise — a caller re-normalizing a term that
/// contains a previous read-back's canonical name *free* — is detected
/// during the quote, which then soundly restarts with per-quote freshened
/// names. The result is α-equivalent to the step-based normal form.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn quote(value: &Value, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let entry = *fuel;
    match quote_with(&mut Vec::new(), value, fuel, QuoteNames::Canonical) {
        Err(QuoteError::CanonicalCaptured) => {
            // The abandoned canonical attempt must not charge the retry:
            // refund its ticks so the freshening pass runs against the
            // budget this call was handed, not the depleted remainder.
            // Otherwise a term that hits the fallback near the fuel
            // boundary is double-charged and spuriously reports
            // `OutOfFuel`.
            *fuel = entry;
            quote_with(&mut Vec::new(), value, fuel, QuoteNames::Freshen)
                .map_err(QuoteError::into_reduce)
        }
        other => other.map_err(QuoteError::into_reduce),
    }
}

/// How read-back chooses binder names.
#[derive(Clone, Copy, PartialEq, Eq)]
enum QuoteNames {
    /// The thread's canonical per-level names (stable, shareable output).
    Canonical,
    /// A fresh symbol per binder (the always-safe fallback).
    Freshen,
}

/// Internal quote failure: either genuine fuel exhaustion, or a free
/// occurrence of a canonical name that a canonical-mode binder would
/// capture (triggering the freshening retry).
enum QuoteError {
    Reduce(ReduceError),
    CanonicalCaptured,
}

impl QuoteError {
    fn into_reduce(self) -> ReduceError {
        match self {
            QuoteError::Reduce(e) => e,
            // The freshening retry can never conflict.
            QuoteError::CanonicalCaptured => unreachable!("freshened quote cannot conflict"),
        }
    }
}

impl From<ReduceError> for QuoteError {
    fn from(e: ReduceError) -> QuoteError {
        QuoteError::Reduce(e)
    }
}

thread_local! {
    /// The canonical read-back binder names, one per de Bruijn level,
    /// lazily extended. Globally fresh, so they never collide with
    /// program symbols.
    static QUOTE_LEVEL_NAMES: std::cell::RefCell<Vec<Symbol>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The canonical binder name for de Bruijn level `level`.
fn canonical_name(level: usize) -> Symbol {
    QUOTE_LEVEL_NAMES.with(|names| {
        let mut names = names.borrow_mut();
        while names.len() <= level {
            names.push(Symbol::fresh("q"));
        }
        names[level]
    })
}

/// [`quote`] with an explicit stack of binder names for the levels already
/// crossed; `names.len()` is the current level.
fn quote_with(
    names: &mut Vec<Symbol>,
    value: &Value,
    fuel: &mut Fuel,
    mode: QuoteNames,
) -> Result<Term, QuoteError> {
    if !fuel.tick() {
        return Err(QuoteError::Reduce(ReduceError::OutOfFuel));
    }
    match value {
        Value::Sort(u) => Ok(Term::Sort(*u)),
        Value::BoolTy => Ok(Term::BoolTy),
        Value::Bool(b) => Ok(Term::BoolLit(*b)),
        Value::Lam { binder, domain, body } => {
            let domain = quote_with(names, domain, fuel, mode)?;
            let (binder, body) = quote_closure(names, *binder, body, fuel, mode)?;
            Ok(Term::Lam { binder, domain: domain.rc(), body: body.rc() })
        }
        Value::Pi { binder, domain, codomain } => {
            let domain = quote_with(names, domain, fuel, mode)?;
            let (binder, codomain) = quote_closure(names, *binder, codomain, fuel, mode)?;
            Ok(Term::Pi { binder, domain: domain.rc(), codomain: codomain.rc() })
        }
        Value::Sigma { binder, first, second } => {
            let first = quote_with(names, first, fuel, mode)?;
            let (binder, second) = quote_closure(names, *binder, second, fuel, mode)?;
            Ok(Term::Sigma { binder, first: first.rc(), second: second.rc() })
        }
        Value::Pair { first, second, annotation } => Ok(Term::Pair {
            first: quote_with(names, first, fuel, mode)?.rc(),
            second: quote_with(names, second, fuel, mode)?.rc(),
            annotation: quote_with(names, annotation, fuel, mode)?.rc(),
        }),
        Value::Stuck { head, spine } => {
            let mut out = match head {
                Head::Global(x) => {
                    // A free variable equal to a binder introduced by this
                    // quote would be captured. Canonical names are globally
                    // fresh, so this can only happen when the caller feeds a
                    // previous read-back's binder back in free — restart
                    // with per-quote freshening.
                    if mode == QuoteNames::Canonical && names.contains(x) {
                        return Err(QuoteError::CanonicalCaptured);
                    }
                    Term::Var(*x)
                }
                Head::Local(level) => Term::Var(names[*level]),
                Head::Blocked(v) => quote_with(names, v, fuel, mode)?,
            };
            for elim in spine {
                out = match elim {
                    Elim::App(arg) => {
                        Term::App { func: out.rc(), arg: quote_with(names, arg, fuel, mode)?.rc() }
                    }
                    Elim::Fst => Term::Fst(out.rc()),
                    Elim::Snd => Term::Snd(out.rc()),
                    Elim::If { then_branch, else_branch } => {
                        let then_value = then_branch.force(fuel)?;
                        let else_value = else_branch.force(fuel)?;
                        Term::If {
                            scrutinee: out.rc(),
                            then_branch: quote_with(names, &then_value, fuel, mode)?.rc(),
                            else_branch: quote_with(names, &else_value, fuel, mode)?.rc(),
                        }
                    }
                };
            }
            Ok(out)
        }
    }
}

/// Crosses one binder during read-back: instantiates the closure at the
/// next level and quotes the result under the mode's binder name.
fn quote_closure(
    names: &mut Vec<Symbol>,
    binder: Symbol,
    closure: &Closure,
    fuel: &mut Fuel,
    mode: QuoteNames,
) -> Result<(Symbol, Term), QuoteError> {
    let name = match mode {
        QuoteNames::Canonical => canonical_name(names.len()),
        QuoteNames::Freshen => binder.freshen(),
    };
    let body = closure.apply(Value::local(names.len()), fuel)?;
    names.push(name);
    let body = quote_with(names, &body, fuel, mode);
    names.pop();
    Ok((name, body?))
}

/// Decides `Γ ⊢ e1 ≡ e2` directly on values, at binder level `level`.
///
/// Implements the η rules `[≡-η1]`/`[≡-η2]` by applying both sides to the
/// same fresh level — no fresh symbols, no substitution. A `false` answer
/// is definitive (the step-based specification agrees, see the property
/// suites); errors mean the comparison could not be decided within `fuel`.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn conv(
    level: usize,
    left: &Value,
    right: &Value,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    if !fuel.tick() {
        return Err(ReduceError::OutOfFuel);
    }
    match (left, right) {
        (Value::Lam { domain: d1, body: b1, .. }, Value::Lam { domain: d2, body: b2, .. }) => {
            Ok(conv(level, d1, d2, fuel)? && conv_closure(level, b1, b2, fuel)?)
        }
        // η: exactly one side is a function; compare its body against the
        // other side applied to the same fresh variable.
        (Value::Lam { body, .. }, other) | (other, Value::Lam { body, .. }) => {
            let fresh = Value::local(level);
            let applied_lam = body.apply(fresh.clone(), fuel)?;
            let applied_other = apply_value(other, fresh, fuel)?;
            conv(level + 1, &applied_lam, &applied_other, fuel)
        }
        (
            Value::Pi { domain: d1, codomain: c1, .. },
            Value::Pi { domain: d2, codomain: c2, .. },
        ) => Ok(conv(level, d1, d2, fuel)? && conv_closure(level, c1, c2, fuel)?),
        (
            Value::Sigma { first: f1, second: s1, .. },
            Value::Sigma { first: f2, second: s2, .. },
        ) => Ok(conv(level, f1, f2, fuel)? && conv_closure(level, s1, s2, fuel)?),
        (Value::Sort(u), Value::Sort(v)) => Ok(u == v),
        (Value::BoolTy, Value::BoolTy) => Ok(true),
        (Value::Bool(a), Value::Bool(b)) => Ok(a == b),
        // Pairs compare componentwise; the annotation is a typing artifact.
        (Value::Pair { first: f1, second: s1, .. }, Value::Pair { first: f2, second: s2, .. }) => {
            Ok(conv(level, f1, f2, fuel)? && conv(level, s1, s2, fuel)?)
        }
        (Value::Stuck { head: h1, spine: s1 }, Value::Stuck { head: h2, spine: s2 }) => {
            if !conv_head(level, h1, h2, fuel)? || s1.len() != s2.len() {
                return Ok(false);
            }
            for (e1, e2) in s1.iter().zip(s2) {
                if !conv_elim(level, e1, e2, fuel)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn conv_head(level: usize, h1: &Head, h2: &Head, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    match (h1, h2) {
        (Head::Global(x), Head::Global(y)) => Ok(x == y),
        (Head::Local(a), Head::Local(b)) => Ok(a == b),
        (Head::Blocked(a), Head::Blocked(b)) => conv(level, a, b, fuel),
        _ => Ok(false),
    }
}

fn conv_elim(level: usize, e1: &Elim, e2: &Elim, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    match (e1, e2) {
        (Elim::App(a), Elim::App(b)) => conv(level, a, b, fuel),
        (Elim::Fst, Elim::Fst) | (Elim::Snd, Elim::Snd) => Ok(true),
        (
            Elim::If { then_branch: t1, else_branch: f1 },
            Elim::If { then_branch: t2, else_branch: f2 },
        ) => {
            let (t1, t2) = (t1.force(fuel)?, t2.force(fuel)?);
            if !conv(level, &t1, &t2, fuel)? {
                return Ok(false);
            }
            let (f1, f2) = (f1.force(fuel)?, f2.force(fuel)?);
            conv(level, &f1, &f2, fuel)
        }
        _ => Ok(false),
    }
}

/// Compares two closures by instantiating both at the same fresh level.
fn conv_closure(
    level: usize,
    c1: &Closure,
    c2: &Closure,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    let fresh = Value::local(level);
    let a = c1.apply(fresh.clone(), fuel)?;
    let b = c2.apply(fresh, fuel)?;
    conv(level + 1, &a, &b, fuel)
}

/// [`apply`] on a borrowed value (used by the η rule, where the
/// non-function side may be any value).
fn apply_value(func: &Value, arg: RcValue, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
    match func {
        Value::Lam { body, .. } => body.apply(arg, fuel),
        Value::Stuck { head, spine } => {
            let mut spine = spine.clone();
            spine.push(Elim::App(arg));
            Ok(Rc::new(Value::Stuck { head: head.clone(), spine }))
        }
        other => Ok(Rc::new(Value::Stuck {
            head: Head::Blocked(Rc::new(other.clone())),
            spine: vec![Elim::App(arg)],
        })),
    }
}

/// Evaluates `term` under the typing environment `env` (definitions become
/// lazy δ-thunks, assumptions become neutral variables).
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn eval_in(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
    eval(&ValEnv::from_env(env), term, fuel)
}

/// Fully normalizes `term` through the NbE engine: evaluate, then read
/// back. Agrees with [`crate::reduce::normalize`] up to α-equivalence on
/// well-typed terms.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn normalize_nbe(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let value = eval_in(env, term, fuel)?;
    quote(&value, fuel)
}

/// Weak-head normalization through the NbE engine. This is the entry
/// point the type checker uses to expose head constructors (`Π`, `Σ`,
/// sorts, …).
///
/// A term whose head is already canonical (or a neutral variable) is
/// returned unchanged — the dominant case on the type-checking path, where
/// inferred types are usually literal `Π`/`Σ`/sorts. Otherwise the term is
/// evaluated and read back, which yields a complete normal form (in
/// particular weak-head normal).
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn whnf_nbe(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    match term {
        Term::Sort(_)
        | Term::BoolTy
        | Term::BoolLit(_)
        | Term::Pi { .. }
        | Term::Lam { .. }
        | Term::Sigma { .. }
        | Term::Pair { .. } => Ok(term.clone()),
        Term::Var(x) if env.lookup_definition(*x).is_none() => Ok(term.clone()),
        _ => normalize_nbe(env, term, fuel),
    }
}

/// [`normalize_nbe`] with the default fuel budget.
///
/// # Panics
///
/// Panics if the default budget is exhausted; intended for tests and
/// examples operating on well-typed terms.
pub fn normalize_nbe_default(env: &Env, term: &Term) -> Term {
    let mut fuel = Fuel::default();
    normalize_nbe(env, term, &mut fuel).expect("NbE normalization exhausted default fuel")
}

/// Decides definitional equivalence of two terms through the NbE engine:
/// evaluate both sides under `env`, then [`conv`] the values.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn conv_terms(env: &Env, e1: &Term, e2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    let venv = ValEnv::from_env(env);
    let v1 = eval(&venv, e1, fuel)?;
    let v2 = eval(&venv, e2, fuel)?;
    conv(0, &v1, &v2, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::subst::alpha_eq;

    fn nf(t: &Term) -> Term {
        normalize_nbe_default(&Env::new(), t)
    }

    #[test]
    fn beta_zeta_projections_if() {
        assert!(alpha_eq(&nf(&app(lam("x", bool_ty(), var("x")), tt())), &tt()));
        assert!(alpha_eq(&nf(&let_("x", bool_ty(), tt(), ite(var("x"), ff(), tt()))), &ff()));
        let p = pair(tt(), ff(), sigma("x", bool_ty(), bool_ty()));
        assert!(alpha_eq(&nf(&fst(p.clone())), &tt()));
        assert!(alpha_eq(&nf(&snd(p)), &ff()));
        assert!(alpha_eq(&nf(&ite(tt(), ff(), tt())), &ff()));
    }

    #[test]
    fn normalizes_under_binders() {
        let t = lam("y", bool_ty(), app(lam("x", bool_ty(), var("x")), var("y")));
        assert!(alpha_eq(&nf(&t), &lam("y", bool_ty(), var("y"))));
    }

    #[test]
    fn delta_definitions_unfold_lazily() {
        let env = Env::new().with_definition(Symbol::intern("b"), tt(), bool_ty());
        let mut fuel = Fuel::default();
        let result = normalize_nbe(&env, &ite(var("b"), ff(), tt()), &mut fuel).unwrap();
        assert!(alpha_eq(&result, &ff()));
    }

    #[test]
    fn capture_is_avoided_through_environments() {
        // (λ y : Bool. x)[y/x] via an application: λ-binder must not
        // capture the free y.
        let env = Env::new().with_assumption(Symbol::intern("y"), bool_ty());
        let t = app(lam("x", bool_ty(), lam("y", bool_ty(), var("x"))), var("y"));
        let mut fuel = Fuel::default();
        let result = normalize_nbe(&env, &t, &mut fuel).unwrap();
        match &result {
            Term::Lam { binder, body, .. } => {
                assert_ne!(*binder, Symbol::intern("y"));
                assert!(alpha_eq(body, &var("y")));
            }
            other => panic!("expected lambda, got {other}"),
        }
    }

    #[test]
    fn conv_implements_function_eta() {
        let env = Env::new();
        let mut fuel = Fuel::default();
        let expanded = lam("x", bool_ty(), app(var("f"), var("x")));
        assert!(conv_terms(&env, &expanded, &var("f"), &mut fuel).unwrap());
        assert!(conv_terms(&env, &var("f"), &expanded, &mut fuel).unwrap());
        assert!(!conv_terms(&env, &expanded, &var("g"), &mut fuel).unwrap());
    }

    #[test]
    fn divergence_is_reported_not_overflowed() {
        let omega_half = lam("x", bool_ty(), app(var("x"), var("x")));
        let omega = app(omega_half.clone(), omega_half);
        let mut fuel = Fuel::default();
        assert!(matches!(
            normalize_nbe(&Env::new(), &omega, &mut fuel),
            Err(ReduceError::OutOfFuel)
        ));
    }

    #[test]
    fn free_canonical_readback_names_are_not_captured() {
        // Extract the canonical level-0 binder introduced by read-back …
        let canonical = match nf(&lam("x", bool_ty(), var("x"))) {
            Term::Lam { binder, .. } => binder,
            other => panic!("expected lambda, got {other}"),
        };
        // … and feed it back in *free* under a fresh binder. Quoting must
        // not capture it (the canonical-name conflict triggers the
        // freshening fallback).
        let tricky = lam("y", bool_ty(), app(var_sym(canonical), var("y")));
        let result = nf(&tricky);
        assert!(alpha_eq(&result, &tricky), "free `{canonical}` was captured in {result}");
    }

    #[test]
    fn stuck_spines_quote_back() {
        let env = Env::new();
        let mut fuel = Fuel::default();
        let t = ite(app(var("f"), tt()), fst(var("p")), snd(var("p")));
        let result = normalize_nbe(&env, &t, &mut fuel).unwrap();
        assert!(alpha_eq(&result, &t));
    }

    #[test]
    fn fallback_retry_is_not_double_charged_near_the_fuel_boundary() {
        // Extract the canonical level-0 read-back name …
        let canonical = match nf(&lam("x", bool_ty(), var("x"))) {
            Term::Lam { binder, .. } => binder,
            other => panic!("expected lambda, got {other}"),
        };
        // … and build a capture-conflict term: the free occurrence of the
        // canonical name under a binder forces quote's freshening retry.
        let tricky = lam("y", bool_ty(), app(var_sym(canonical), var("y")));
        // Budget calibration: an α-variant with a plain free variable has
        // the identical tick structure (same evaluation, same read-back
        // traversal) but never conflicts, so its cost is exactly what one
        // *single* quote pass of `tricky` needs.
        let plain = lam("y", bool_ty(), app(var("plain_free"), var("y")));
        let mut calibration = Fuel::default();
        let _ = normalize_nbe(&Env::new(), &plain, &mut calibration).unwrap();
        let budget = calibration.used();
        // On exactly that budget the conflict case must still succeed:
        // the abandoned canonical attempt's ticks are refunded, so only
        // one full pass is ever charged. (Double-charging the retry —
        // the old behaviour — needs strictly more than `budget` and
        // spuriously reported OutOfFuel here.)
        let mut exact = Fuel::new(budget);
        let result = normalize_nbe(&Env::new(), &tricky, &mut exact)
            .expect("the freshening retry must run on a fresh sub-budget");
        assert!(alpha_eq(&result, &tricky));
        assert!(exact.is_exhausted(), "the budget was chosen to be exactly boundary-tight");
    }
}
