//! Standard CC terms and the program corpus used throughout the test suite
//! and benchmarks.
//!
//! The corpus plays the role of the paper's informal examples: the
//! polymorphic identity function of §3, `False = Π A:⋆. A` of §4.1,
//! refinement-style Σ types of §2, and Church-encoded data. Every term in
//! [`corpus`] is closed and well-typed; every term in [`ground_corpus`]
//! additionally has the ground type `Bool` and evaluates to a literal, which
//! is what Theorem 5.7 (correctness of separate compilation) observes.

use crate::ast::Term;
use crate::builder::*;

/// `False`, encoded as `Π A : ⋆. A` (§4.1 of the paper).
pub fn false_ty() -> Term {
    pi("A", star(), var("A"))
}

/// `True`, encoded as `Π A : ⋆. A → A`.
pub fn true_ty() -> Term {
    pi("A", star(), pi("x", var("A"), var("A")))
}

/// The canonical inhabitant of [`true_ty`]: the polymorphic identity
/// function `λ A : ⋆. λ x : A. x`.
pub fn poly_id() -> Term {
    lam("A", star(), lam("x", var("A"), var("x")))
}

/// The type of the polymorphic identity function, `Π A : ⋆. Π x : A. A`.
pub fn poly_id_ty() -> Term {
    pi("A", star(), pi("x", var("A"), var("A")))
}

/// Polymorphic constant function `λ A : ⋆. λ B : ⋆. λ x : A. λ y : B. x`.
pub fn poly_const() -> Term {
    lam("A", star(), lam("B", star(), lam("x", var("A"), lam("y", var("B"), var("x")))))
}

/// Polymorphic function composition
/// `λ A B C : ⋆. λ f : B → C. λ g : A → B. λ x : A. f (g x)`.
pub fn poly_compose() -> Term {
    lam(
        "A",
        star(),
        lam(
            "B",
            star(),
            lam(
                "C",
                star(),
                lam(
                    "f",
                    arrow(var("B"), var("C")),
                    lam(
                        "g",
                        arrow(var("A"), var("B")),
                        lam("x", var("A"), app(var("f"), app(var("g"), var("x")))),
                    ),
                ),
            ),
        ),
    )
}

/// `λ A : ⋆. λ f : A → A. λ x : A. f (f x)` — applies a function twice.
pub fn apply_twice() -> Term {
    lam(
        "A",
        star(),
        lam(
            "f",
            arrow(var("A"), var("A")),
            lam("x", var("A"), app(var("f"), app(var("f"), var("x")))),
        ),
    )
}

/// Boolean negation on the ground type, `λ b : Bool. if b then false else true`.
pub fn not_fn() -> Term {
    lam("b", bool_ty(), ite(var("b"), ff(), tt()))
}

/// Boolean conjunction on the ground type.
pub fn and_fn() -> Term {
    lam("a", bool_ty(), lam("b", bool_ty(), ite(var("a"), var("b"), ff())))
}

/// Boolean disjunction on the ground type.
pub fn or_fn() -> Term {
    lam("a", bool_ty(), lam("b", bool_ty(), ite(var("a"), tt(), var("b"))))
}

/// Boolean exclusive or on the ground type.
pub fn xor_fn() -> Term {
    lam("a", bool_ty(), lam("b", bool_ty(), ite(var("a"), ite(var("b"), ff(), tt()), var("b"))))
}

/// The type of Church numerals, `Π A : ⋆. (A → A) → A → A`.
/// Impredicativity of `⋆` is what makes this a small type.
pub fn church_nat_ty() -> Term {
    pi("A", star(), arrow(arrow(var("A"), var("A")), arrow(var("A"), var("A"))))
}

/// The Church numeral for `n`.
pub fn church_numeral(n: usize) -> Term {
    let mut body = var("x");
    for _ in 0..n {
        body = app(var("f"), body);
    }
    lam("A", star(), lam("f", arrow(var("A"), var("A")), lam("x", var("A"), body)))
}

/// Successor on Church numerals.
pub fn church_succ() -> Term {
    lam(
        "n",
        church_nat_ty(),
        lam(
            "A",
            star(),
            lam(
                "f",
                arrow(var("A"), var("A")),
                lam(
                    "x",
                    var("A"),
                    app(var("f"), app(app(app(var("n"), var("A")), var("f")), var("x"))),
                ),
            ),
        ),
    )
}

/// Addition on Church numerals.
pub fn church_add() -> Term {
    lam(
        "m",
        church_nat_ty(),
        lam(
            "n",
            church_nat_ty(),
            lam(
                "A",
                star(),
                lam(
                    "f",
                    arrow(var("A"), var("A")),
                    lam(
                        "x",
                        var("A"),
                        app(
                            app(app(var("m"), var("A")), var("f")),
                            app(app(app(var("n"), var("A")), var("f")), var("x")),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// Multiplication on Church numerals.
pub fn church_mul() -> Term {
    lam(
        "m",
        church_nat_ty(),
        lam(
            "n",
            church_nat_ty(),
            lam(
                "A",
                star(),
                lam(
                    "f",
                    arrow(var("A"), var("A")),
                    app(app(var("m"), var("A")), app(app(var("n"), var("A")), var("f"))),
                ),
            ),
        ),
    )
}

/// Tests whether a Church numeral is even, producing a ground `Bool` by
/// iterating boolean negation starting from `true`.
pub fn church_is_even() -> Term {
    lam("n", church_nat_ty(), app(app(app(var("n"), bool_ty()), not_fn()), tt()))
}

/// The type of Church booleans, `Π A : ⋆. A → A → A`.
pub fn church_bool_ty() -> Term {
    pi("A", star(), arrow(var("A"), arrow(var("A"), var("A"))))
}

/// Church-encoded `true`.
pub fn church_true() -> Term {
    lam("A", star(), lam("t", var("A"), lam("f", var("A"), var("t"))))
}

/// Church-encoded `false`.
pub fn church_false() -> Term {
    lam("A", star(), lam("t", var("A"), lam("f", var("A"), var("f"))))
}

/// Converts a Church boolean to the ground type `Bool`.
pub fn church_bool_to_ground() -> Term {
    lam("b", church_bool_ty(), app(app(app(var("b"), bool_ty()), tt()), ff()))
}

/// A refinement-style predicate on booleans: `IsTrue b` is inhabited exactly
/// when `b` is `true`. `λ b : Bool. if b then True else False`, where `True`
/// and `False` are the impredicative encodings above.
pub fn is_true_predicate() -> Term {
    lam("b", bool_ty(), ite(var("b"), true_ty(), false_ty()))
}

/// The refinement type `Σ b : Bool. IsTrue b` of booleans that are provably
/// `true` (§2's "positive numbers" example transported to booleans).
pub fn refined_true_ty() -> Term {
    sigma("b", bool_ty(), app(is_true_predicate(), var("b")))
}

/// The canonical inhabitant of [`refined_true_ty`]: `⟨true, id⟩`.
pub fn refined_true_witness() -> Term {
    pair(tt(), poly_id(), refined_true_ty())
}

/// Polymorphic pair swap on non-dependent products:
/// `λ A B : ⋆. λ p : A × B. ⟨snd p, fst p⟩ as B × A`.
pub fn poly_swap() -> Term {
    lam(
        "A",
        star(),
        lam(
            "B",
            star(),
            lam(
                "p",
                product(var("A"), var("B")),
                pair(snd(var("p")), fst(var("p")), product(var("B"), var("A"))),
            ),
        ),
    )
}

/// A named, closed, well-typed CC program used by tests and benchmarks.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Human-readable name of the program.
    pub name: &'static str,
    /// The program itself (closed and well-typed).
    pub term: Term,
}

/// The corpus of closed well-typed CC programs exercised by the integration
/// tests, property tests, and benchmarks. Every entry type checks in the
/// empty environment.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry { name: "poly_id", term: poly_id() },
        CorpusEntry { name: "poly_const", term: poly_const() },
        CorpusEntry { name: "poly_compose", term: poly_compose() },
        CorpusEntry { name: "apply_twice", term: apply_twice() },
        CorpusEntry { name: "not", term: not_fn() },
        CorpusEntry { name: "and", term: and_fn() },
        CorpusEntry { name: "or", term: or_fn() },
        CorpusEntry { name: "xor", term: xor_fn() },
        CorpusEntry { name: "church_zero", term: church_numeral(0) },
        CorpusEntry { name: "church_three", term: church_numeral(3) },
        CorpusEntry { name: "church_succ", term: church_succ() },
        CorpusEntry { name: "church_add", term: church_add() },
        CorpusEntry { name: "church_mul", term: church_mul() },
        CorpusEntry { name: "church_is_even", term: church_is_even() },
        CorpusEntry { name: "church_true", term: church_true() },
        CorpusEntry { name: "church_false", term: church_false() },
        CorpusEntry { name: "church_bool_to_ground", term: church_bool_to_ground() },
        CorpusEntry { name: "is_true_predicate", term: is_true_predicate() },
        CorpusEntry { name: "refined_true_witness", term: refined_true_witness() },
        CorpusEntry { name: "poly_swap", term: poly_swap() },
        CorpusEntry { name: "false_ty", term: false_ty() },
        CorpusEntry { name: "church_nat_ty", term: church_nat_ty() },
        CorpusEntry { name: "refined_true_ty", term: refined_true_ty() },
        CorpusEntry { name: "id_applied_to_bool", term: app(app(poly_id(), bool_ty()), tt()) },
        CorpusEntry {
            name: "id_self_application",
            term: app(app(poly_id(), poly_id_ty()), poly_id()),
        },
        CorpusEntry {
            name: "compose_not_not",
            term: apps(poly_compose(), vec![bool_ty(), bool_ty(), bool_ty(), not_fn(), not_fn()]),
        },
        CorpusEntry {
            name: "twice_not_true",
            term: app(app(app(apply_twice(), bool_ty()), not_fn()), tt()),
        },
        CorpusEntry {
            name: "let_bound_identity",
            term: let_("id", poly_id_ty(), poly_id(), app(app(var("id"), bool_ty()), ff())),
        },
        CorpusEntry {
            name: "nested_let_pair",
            term: let_(
                "p",
                sigma("x", bool_ty(), bool_ty()),
                pair(tt(), ff(), sigma("x", bool_ty(), bool_ty())),
                ite(fst(var("p")), snd(var("p")), tt()),
            ),
        },
        CorpusEntry {
            name: "dependent_pair_of_type_and_value",
            term: pair(bool_ty(), tt(), sigma("A", star(), var("A"))),
        },
        CorpusEntry {
            name: "swap_bool_pair",
            term: apps(
                poly_swap(),
                vec![bool_ty(), bool_ty(), pair(tt(), ff(), product(bool_ty(), bool_ty()))],
            ),
        },
        CorpusEntry {
            name: "add_two_three_is_even",
            term: app(
                church_is_even(),
                app(app(church_add(), church_numeral(2)), church_numeral(3)),
            ),
        },
        CorpusEntry {
            name: "mul_two_three_is_even",
            term: app(
                church_is_even(),
                app(app(church_mul(), church_numeral(2)), church_numeral(3)),
            ),
        },
    ]
}

/// The subset of programs whose type is the ground type `Bool`; these are
/// the observations used for the separate-compilation correctness theorem.
/// Each entry is paired with the boolean value it evaluates to.
pub fn ground_corpus() -> Vec<(CorpusEntry, bool)> {
    vec![
        (
            CorpusEntry { name: "id_applied_to_bool", term: app(app(poly_id(), bool_ty()), tt()) },
            true,
        ),
        (CorpusEntry { name: "not_true", term: app(not_fn(), tt()) }, false),
        (CorpusEntry { name: "not_false", term: app(not_fn(), ff()) }, true),
        (CorpusEntry { name: "and_true_false", term: app(app(and_fn(), tt()), ff()) }, false),
        (CorpusEntry { name: "or_false_true", term: app(app(or_fn(), ff()), tt()) }, true),
        (CorpusEntry { name: "xor_true_true", term: app(app(xor_fn(), tt()), tt()) }, false),
        (
            CorpusEntry {
                name: "twice_not_true",
                term: app(app(app(apply_twice(), bool_ty()), not_fn()), tt()),
            },
            true,
        ),
        (
            CorpusEntry { name: "four_is_even", term: app(church_is_even(), church_numeral(4)) },
            true,
        ),
        (
            CorpusEntry { name: "five_is_even", term: app(church_is_even(), church_numeral(5)) },
            false,
        ),
        (
            CorpusEntry {
                name: "add_two_three_is_even",
                term: app(
                    church_is_even(),
                    app(app(church_add(), church_numeral(2)), church_numeral(3)),
                ),
            },
            false,
        ),
        (
            CorpusEntry {
                name: "mul_two_three_is_even",
                term: app(
                    church_is_even(),
                    app(app(church_mul(), church_numeral(2)), church_numeral(3)),
                ),
            },
            true,
        ),
        (
            CorpusEntry {
                name: "church_true_to_ground",
                term: app(church_bool_to_ground(), church_true()),
            },
            true,
        ),
        (
            CorpusEntry {
                name: "church_false_to_ground",
                term: app(church_bool_to_ground(), church_false()),
            },
            false,
        ),
        (
            CorpusEntry { name: "refined_witness_projection", term: fst(refined_true_witness()) },
            true,
        ),
        (
            CorpusEntry {
                name: "let_bound_identity",
                term: let_("id", poly_id_ty(), poly_id(), app(app(var("id"), bool_ty()), ff())),
            },
            false,
        ),
        (
            CorpusEntry {
                name: "swap_then_project",
                term: fst(apps(
                    poly_swap(),
                    vec![bool_ty(), bool_ty(), pair(tt(), ff(), product(bool_ty(), bool_ty()))],
                )),
            },
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::equiv::definitionally_equal;
    use crate::reduce::normalize_default;
    use crate::subst::alpha_eq;
    use crate::typecheck::infer;

    #[test]
    fn poly_id_has_expected_type() {
        let ty = infer(&Env::new(), &poly_id()).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &poly_id_ty()));
    }

    #[test]
    fn false_ty_is_a_small_type() {
        let ty = infer(&Env::new(), &false_ty()).unwrap();
        assert!(ty.is_star());
    }

    #[test]
    fn every_corpus_entry_type_checks() {
        for entry in corpus() {
            assert!(
                infer(&Env::new(), &entry.term).is_ok(),
                "corpus entry `{}` failed to type check",
                entry.name
            );
        }
    }

    #[test]
    fn corpus_is_reasonably_large_and_named_uniquely() {
        let entries = corpus();
        assert!(entries.len() >= 30);
        let mut names: Vec<_> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "corpus names must be unique");
    }

    #[test]
    fn ground_corpus_entries_have_type_bool_and_expected_value() {
        for (entry, expected) in ground_corpus() {
            let ty = infer(&Env::new(), &entry.term)
                .unwrap_or_else(|e| panic!("`{}` ill-typed: {e}", entry.name));
            assert!(
                definitionally_equal(&Env::new(), &ty, &bool_ty()),
                "`{}` does not have type Bool",
                entry.name
            );
            let value = normalize_default(&Env::new(), &entry.term);
            assert!(
                alpha_eq(&value, &bool_lit(expected)),
                "`{}` evaluated to {value} but {expected} was expected",
                entry.name
            );
        }
    }

    #[test]
    fn church_arithmetic_normalizes_correctly() {
        let env = Env::new();
        let two_plus_three = app(app(church_add(), church_numeral(2)), church_numeral(3));
        assert!(definitionally_equal(&env, &two_plus_three, &church_numeral(5)));
        let two_times_three = app(app(church_mul(), church_numeral(2)), church_numeral(3));
        assert!(definitionally_equal(&env, &two_times_three, &church_numeral(6)));
        let succ_four = app(church_succ(), church_numeral(4));
        assert!(definitionally_equal(&env, &succ_four, &church_numeral(5)));
    }

    #[test]
    fn refined_witness_type_checks_at_refinement_type() {
        use crate::typecheck::check;
        assert!(check(&Env::new(), &refined_true_witness(), &refined_true_ty()).is_ok());
    }

    #[test]
    fn church_numeral_size_grows_linearly() {
        assert!(church_numeral(10).size() > church_numeral(2).size());
    }
}
