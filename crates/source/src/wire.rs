//! Wire codec for CC terms: flatten to / re-intern from a
//! [`WireTerm`] word buffer.
//!
//! [`RcTerm`] handles are `!Send` by design (per-thread interners, see
//! [`cccc_util::intern`]); this module is how CC terms cross thread
//! boundaries in the parallel module driver. [`encode`] runs on the
//! producing thread and writes a compact, deterministic buffer — shared
//! subterms are emitted once and back-referenced by index, so the buffer
//! is linear in the hash-consed DAG, not the tree. [`decode`] runs on the
//! consuming thread and re-interns bottom-up, so decoded terms are
//! first-class citizens of that thread's interner (cached metadata, memo
//! eligibility, identity fast paths) from the moment they exist.
//!
//! [`fingerprint`] hashes the encoding into a process-stable 128-bit
//! content fingerprint — the unit of cache keying in the driver.

use crate::ast::{RcTerm, Term, Universe};
use cccc_util::intern::{FxHashMap, NodeId};
use cccc_util::symbol::Symbol;
use cccc_util::wire::{Fingerprint, WireError, WireReader, WireTerm, WireWriter};

const TAG_BACKREF: u64 = 0;
const TAG_VAR: u64 = 1;
const TAG_STAR: u64 = 2;
const TAG_BOX: u64 = 3;
const TAG_PI: u64 = 4;
const TAG_LAM: u64 = 5;
const TAG_APP: u64 = 6;
const TAG_LET: u64 = 7;
const TAG_SIGMA: u64 = 8;
const TAG_PAIR: u64 = 9;
const TAG_FST: u64 = 10;
const TAG_SND: u64 = 11;
const TAG_BOOL_TY: u64 = 12;
const TAG_BOOL_LIT: u64 = 13;
const TAG_IF: u64 = 14;

/// Encodes a CC term into a thread-portable wire buffer.
pub fn encode(term: &Term) -> WireTerm {
    let mut writer = WireWriter::new();
    let mut seen: FxHashMap<NodeId, u64> = FxHashMap::default();
    encode_head(term, &mut writer, &mut seen);
    writer.finish()
}

/// Encodes a CC term into a *process*-portable wire buffer: symbols are
/// written through a relocatable symbol table
/// ([`cccc_util::wire::WireWriter::portable`]) instead of as raw interner
/// parts, so the buffer can be persisted to disk and decoded by a later
/// process. [`decode`] handles both formats transparently.
pub fn encode_portable(term: &Term) -> WireTerm {
    let mut writer = WireWriter::portable();
    let mut seen: FxHashMap<NodeId, u64> = FxHashMap::default();
    encode_head(term, &mut writer, &mut seen);
    writer.finish()
}

/// The process-stable content fingerprint of a term (the fingerprint of
/// its wire encoding). Structural: α-variants fingerprint differently.
pub fn fingerprint(term: &Term) -> Fingerprint {
    encode(term).fingerprint()
}

/// An α-invariant, *process-stable* content fingerprint: binders are
/// numbered by a de Bruijn-style scope walk instead of hashed by name,
/// so α-equivalent terms always agree (and structurally unequal terms
/// disagree with hash probability), and free variables contribute their
/// textual names rather than raw interner parts, so the same term
/// fingerprints identically in any process. The driver fingerprints
/// exported *interfaces* and unit sources this way: recompiling an
/// import whose inferred type merely re-freshened a binder must not
/// invalidate every dependent, and a fresh process consulting the
/// persistent artifact store must recompute the keys an earlier process
/// wrote. (A *generated* symbol occurring free — never the case for
/// well-formed units, whose free names are their plain import names —
/// still folds in its process-local subscript, keeping distinct
/// generated names distinct at the price of stability in that corner.)
pub fn fingerprint_alpha(term: &Term) -> Fingerprint {
    let mut writer = WireWriter::new();
    let mut scope: Vec<Symbol> = Vec::new();
    encode_alpha(term, &mut writer, &mut scope);
    writer.finish().fingerprint()
}

/// Writes an occurrence of `x`: its scope depth when bound (counted from
/// the innermost binder, so the numbering is position-only), its base
/// name plus generated-subscript when free. The subscript is a separate
/// word — not rendered into the name — so a plain symbol whose name
/// contains `$` can never alias a generated symbol.
fn push_alpha_var(x: Symbol, writer: &mut WireWriter, scope: &[Symbol]) {
    match scope.iter().rev().position(|&b| b == x) {
        Some(depth) => {
            writer.push(1);
            writer.push(depth as u64);
        }
        None => {
            writer.push(0);
            writer.push_str(x.base_name());
            writer.push(x.disambiguator());
        }
    }
}

/// The α-invariant encoding: same tags as [`encode`], but no subterm
/// sharing (back-references would be scope-sensitive) and binders
/// contribute only their positions. Interfaces are small, so the tree
/// walk is cheap.
fn encode_alpha(term: &Term, writer: &mut WireWriter, scope: &mut Vec<Symbol>) {
    match term {
        Term::Var(x) => {
            writer.push(TAG_VAR);
            push_alpha_var(*x, writer, scope);
        }
        Term::Sort(Universe::Star) => writer.push(TAG_STAR),
        Term::Sort(Universe::Box) => writer.push(TAG_BOX),
        Term::Pi { binder, domain, codomain } => {
            writer.push(TAG_PI);
            encode_alpha(domain, writer, scope);
            scope.push(*binder);
            encode_alpha(codomain, writer, scope);
            scope.pop();
        }
        Term::Lam { binder, domain, body } => {
            writer.push(TAG_LAM);
            encode_alpha(domain, writer, scope);
            scope.push(*binder);
            encode_alpha(body, writer, scope);
            scope.pop();
        }
        Term::App { func, arg } => {
            writer.push(TAG_APP);
            encode_alpha(func, writer, scope);
            encode_alpha(arg, writer, scope);
        }
        Term::Let { binder, annotation, bound, body } => {
            writer.push(TAG_LET);
            encode_alpha(annotation, writer, scope);
            encode_alpha(bound, writer, scope);
            scope.push(*binder);
            encode_alpha(body, writer, scope);
            scope.pop();
        }
        Term::Sigma { binder, first, second } => {
            writer.push(TAG_SIGMA);
            encode_alpha(first, writer, scope);
            scope.push(*binder);
            encode_alpha(second, writer, scope);
            scope.pop();
        }
        Term::Pair { first, second, annotation } => {
            writer.push(TAG_PAIR);
            encode_alpha(first, writer, scope);
            encode_alpha(second, writer, scope);
            encode_alpha(annotation, writer, scope);
        }
        Term::Fst(e) => {
            writer.push(TAG_FST);
            encode_alpha(e, writer, scope);
        }
        Term::Snd(e) => {
            writer.push(TAG_SND);
            encode_alpha(e, writer, scope);
        }
        Term::BoolTy => writer.push(TAG_BOOL_TY),
        Term::BoolLit(b) => {
            writer.push(TAG_BOOL_LIT);
            writer.push(u64::from(*b));
        }
        Term::If { scrutinee, then_branch, else_branch } => {
            writer.push(TAG_IF);
            encode_alpha(scrutinee, writer, scope);
            encode_alpha(then_branch, writer, scope);
            encode_alpha(else_branch, writer, scope);
        }
    }
}

/// Decodes a wire buffer produced by [`encode`] or [`encode_portable`],
/// re-interning every node into the current thread's CC interner. For a
/// portable buffer the embedded symbol table is re-interned first: plain
/// names resolve to the identical symbols, generated names to
/// consistently fresh ones, so the result is α-equivalent to (and, when
/// no generated symbols occur, structurally identical to) the encoded
/// term even in a different process.
///
/// # Errors
///
/// Returns a [`WireError`] if the buffer is corrupt (truncated, unknown
/// tag, bad back-reference, bad symbol table, or trailing words).
pub fn decode(wire: &WireTerm) -> Result<Term, WireError> {
    let mut reader = wire.term_reader()?;
    let mut nodes: Vec<RcTerm> = Vec::new();
    let term = decode_head(&mut reader, &mut nodes)?;
    reader.expect_exhausted()?;
    Ok(term)
}

/// Writes a node handle: a back-reference when the node was already
/// written, its head otherwise. Completion indices are assigned postorder,
/// mirroring the registration order in [`decode_node`].
fn encode_node(node: &RcTerm, writer: &mut WireWriter, seen: &mut FxHashMap<NodeId, u64>) {
    if let Some(&index) = seen.get(&node.id()) {
        writer.push(TAG_BACKREF);
        writer.push(index);
        return;
    }
    encode_head(node, writer, seen);
    let index = seen.len() as u64;
    seen.insert(node.id(), index);
}

fn encode_head(term: &Term, writer: &mut WireWriter, seen: &mut FxHashMap<NodeId, u64>) {
    match term {
        Term::Var(x) => {
            writer.push(TAG_VAR);
            writer.push_symbol(*x);
        }
        Term::Sort(Universe::Star) => writer.push(TAG_STAR),
        Term::Sort(Universe::Box) => writer.push(TAG_BOX),
        Term::Pi { binder, domain, codomain } => {
            writer.push(TAG_PI);
            writer.push_symbol(*binder);
            encode_node(domain, writer, seen);
            encode_node(codomain, writer, seen);
        }
        Term::Lam { binder, domain, body } => {
            writer.push(TAG_LAM);
            writer.push_symbol(*binder);
            encode_node(domain, writer, seen);
            encode_node(body, writer, seen);
        }
        Term::App { func, arg } => {
            writer.push(TAG_APP);
            encode_node(func, writer, seen);
            encode_node(arg, writer, seen);
        }
        Term::Let { binder, annotation, bound, body } => {
            writer.push(TAG_LET);
            writer.push_symbol(*binder);
            encode_node(annotation, writer, seen);
            encode_node(bound, writer, seen);
            encode_node(body, writer, seen);
        }
        Term::Sigma { binder, first, second } => {
            writer.push(TAG_SIGMA);
            writer.push_symbol(*binder);
            encode_node(first, writer, seen);
            encode_node(second, writer, seen);
        }
        Term::Pair { first, second, annotation } => {
            writer.push(TAG_PAIR);
            encode_node(first, writer, seen);
            encode_node(second, writer, seen);
            encode_node(annotation, writer, seen);
        }
        Term::Fst(e) => {
            writer.push(TAG_FST);
            encode_node(e, writer, seen);
        }
        Term::Snd(e) => {
            writer.push(TAG_SND);
            encode_node(e, writer, seen);
        }
        Term::BoolTy => writer.push(TAG_BOOL_TY),
        Term::BoolLit(b) => {
            writer.push(TAG_BOOL_LIT);
            writer.push(u64::from(*b));
        }
        Term::If { scrutinee, then_branch, else_branch } => {
            writer.push(TAG_IF);
            encode_node(scrutinee, writer, seen);
            encode_node(then_branch, writer, seen);
            encode_node(else_branch, writer, seen);
        }
    }
}

/// Reads one node, registering it for back-references in the same
/// postorder position the encoder assigned.
fn decode_node(reader: &mut WireReader<'_>, nodes: &mut Vec<RcTerm>) -> Result<RcTerm, WireError> {
    if reader.peek() == Some(TAG_BACKREF) {
        reader.next_word()?;
        let index = reader.next_word()?;
        return nodes.get(index as usize).cloned().ok_or(WireError::BadBackref(index));
    }
    let term = decode_head(reader, nodes)?;
    let node = term.rc();
    nodes.push(node.clone());
    Ok(node)
}

fn decode_head(reader: &mut WireReader<'_>, nodes: &mut Vec<RcTerm>) -> Result<Term, WireError> {
    let tag = reader.next_word()?;
    Ok(match tag {
        TAG_VAR => Term::Var(reader.next_symbol()?),
        TAG_STAR => Term::Sort(Universe::Star),
        TAG_BOX => Term::Sort(Universe::Box),
        TAG_PI => {
            let binder = reader.next_symbol()?;
            let domain = decode_node(reader, nodes)?;
            let codomain = decode_node(reader, nodes)?;
            Term::Pi { binder, domain, codomain }
        }
        TAG_LAM => {
            let binder = reader.next_symbol()?;
            let domain = decode_node(reader, nodes)?;
            let body = decode_node(reader, nodes)?;
            Term::Lam { binder, domain, body }
        }
        TAG_APP => {
            let func = decode_node(reader, nodes)?;
            let arg = decode_node(reader, nodes)?;
            Term::App { func, arg }
        }
        TAG_LET => {
            let binder = reader.next_symbol()?;
            let annotation = decode_node(reader, nodes)?;
            let bound = decode_node(reader, nodes)?;
            let body = decode_node(reader, nodes)?;
            Term::Let { binder, annotation, bound, body }
        }
        TAG_SIGMA => {
            let binder = reader.next_symbol()?;
            let first = decode_node(reader, nodes)?;
            let second = decode_node(reader, nodes)?;
            Term::Sigma { binder, first, second }
        }
        TAG_PAIR => {
            let first = decode_node(reader, nodes)?;
            let second = decode_node(reader, nodes)?;
            let annotation = decode_node(reader, nodes)?;
            Term::Pair { first, second, annotation }
        }
        TAG_FST => Term::Fst(decode_node(reader, nodes)?),
        TAG_SND => Term::Snd(decode_node(reader, nodes)?),
        TAG_BOOL_TY => Term::BoolTy,
        TAG_BOOL_LIT => Term::BoolLit(reader.next_word()? != 0),
        TAG_IF => {
            let scrutinee = decode_node(reader, nodes)?;
            let then_branch = decode_node(reader, nodes)?;
            let else_branch = decode_node(reader, nodes)?;
            Term::If { scrutinee, then_branch, else_branch }
        }
        other => return Err(WireError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::prelude;

    fn round_trip(term: &Term) {
        let wire = encode(term);
        let decoded = decode(&wire).expect("decodes");
        // Structural identity, not merely α-equivalence: re-interning the
        // decoded term yields the same node as re-interning the original.
        assert!(
            term.clone().rc().same(&decoded.clone().rc()),
            "round trip changed term:\n  original: {term}\n  decoded:  {decoded}"
        );
        assert_eq!(wire.fingerprint(), encode(&decoded).fingerprint());
    }

    #[test]
    fn corpus_round_trips() {
        for entry in prelude::corpus() {
            round_trip(&entry.term);
        }
    }

    #[test]
    fn generated_symbols_round_trip() {
        round_trip(&arrow(bool_ty(), bool_ty()));
        round_trip(&lam("x", bool_ty(), app(var("f"), var("x"))));
    }

    #[test]
    fn shared_subterms_are_backreferenced() {
        // `<f x, f x> as Σ _ : Bool. Bool` shares the `f x` node.
        let shared = app(var("f"), var("x"));
        let term = pair(shared.clone(), shared, sigma("_s", bool_ty(), bool_ty()));
        let wire = encode(&term);
        // A naive tree encoding of the two `f x` occurrences would repeat
        // the application; the DAG encoding back-references instead, so
        // the buffer must be shorter than twice the single-occurrence one.
        let single = encode(&app(var("f"), var("x")));
        assert!(wire.len() < 2 * single.len() + 10);
        round_trip(&term);
    }

    #[test]
    fn fingerprints_distinguish_terms() {
        assert_ne!(fingerprint(&tt()), fingerprint(&ff()));
        assert_ne!(
            fingerprint(&lam("x", bool_ty(), var("x"))),
            fingerprint(&lam("y", bool_ty(), var("y"))),
            "fingerprints are structural, not α-quotiented"
        );
        assert_eq!(fingerprint(&prelude::poly_id()), fingerprint(&prelude::poly_id()));
    }

    #[test]
    fn alpha_fingerprints_quotient_binder_names() {
        // α-variants agree …
        let a = lam("x", bool_ty(), var("x"));
        let b = lam("y", bool_ty(), var("y"));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint_alpha(&a), fingerprint_alpha(&b));
        // … including under shadowing …
        let shadowed = lam("x", bool_ty(), lam("x", bool_ty(), var("x")));
        let renamed = lam("x", bool_ty(), lam("y", bool_ty(), var("y")));
        let outer = lam("x", bool_ty(), lam("y", bool_ty(), var("x")));
        assert_eq!(fingerprint_alpha(&shadowed), fingerprint_alpha(&renamed));
        assert_ne!(fingerprint_alpha(&shadowed), fingerprint_alpha(&outer));
        // … free variables still count by name …
        assert_ne!(fingerprint_alpha(&var("p")), fingerprint_alpha(&var("q")));
        // … and Π/Σ binders are quotiented too (the interface case).
        let pi_a = pi("A", star(), arrow(var("A"), var("A")));
        let pi_b = pi("B", star(), arrow(var("B"), var("B")));
        assert_eq!(fingerprint_alpha(&pi_a), fingerprint_alpha(&pi_b));
    }

    #[test]
    fn portable_buffers_round_trip() {
        // Every corpus program relocates to an α-equivalent term (some
        // prelude terms carry generated binders, which are re-freshened).
        for entry in prelude::corpus() {
            let wire = encode_portable(&entry.term);
            assert!(wire.is_portable());
            let decoded = decode(&wire).expect("portable buffer decodes");
            assert!(
                crate::subst::alpha_eq(&entry.term, &decoded),
                "`{}` changed across a portable round trip",
                entry.name
            );
        }
        // A term whose names are all plain relocates to the structurally
        // identical term: every plain name re-interns to itself.
        let plain = lam("x", bool_ty(), app(var("f"), var("x")));
        let decoded = decode(&encode_portable(&plain)).unwrap();
        assert!(plain.clone().rc().same(&decoded.clone().rc()));
        // Bound generated symbols relocate to fresh names; the result is
        // α-equivalent even though the subscripts differ.
        let fresh = cccc_util::symbol::Symbol::fresh("v");
        let t = Term::Lam {
            binder: fresh,
            domain: bool_ty().rc(),
            body: app(var("f"), Term::Var(fresh)).rc(),
        };
        let decoded = decode(&encode_portable(&t)).unwrap();
        assert!(crate::subst::alpha_eq(&t, &decoded));
        match &decoded {
            Term::Lam { binder, .. } => {
                assert_ne!(*binder, fresh, "generated binder is re-disambiguated");
                assert!(binder.is_generated());
            }
            other => panic!("expected lambda, got {other}"),
        }
    }

    #[test]
    fn alpha_fingerprints_hash_free_variables_by_name() {
        // A free plain symbol and a free generated symbol with the same
        // base name must not collide …
        let plain = var("w");
        let generated = cccc_util::symbol::Symbol::fresh("w");
        assert_ne!(fingerprint_alpha(&plain), fingerprint_alpha(&Term::Var(generated)));
        // … and two interned copies of the same name agree (name-based,
        // not identity-based — the property a fresh process relies on).
        assert_eq!(fingerprint_alpha(&var("w")), fingerprint_alpha(&plain));
        // The generated subscript is hashed as its own word, never
        // rendered into the name: a plain symbol that *textually* equals
        // a generated symbol's display form must not alias it.
        let aliased = var(&format!("w${}", generated.disambiguator()));
        assert_ne!(fingerprint_alpha(&aliased), fingerprint_alpha(&Term::Var(generated)));
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        use cccc_util::wire::WireWriter;
        let mut w = WireWriter::new();
        w.push(99);
        assert!(matches!(decode(&w.finish()), Err(WireError::BadTag(99))));
        // A backref at the root is impossible output of the encoder, so it
        // reads as an unknown tag; a *nested* out-of-range backref is the
        // real corruption case.
        let mut w = WireWriter::new();
        w.push(TAG_BACKREF);
        w.push(7);
        assert!(matches!(decode(&w.finish()), Err(WireError::BadTag(TAG_BACKREF))));
        let mut w = WireWriter::new();
        w.push(TAG_FST);
        w.push(TAG_BACKREF);
        w.push(7);
        assert!(matches!(decode(&w.finish()), Err(WireError::BadBackref(7))));
        let empty = WireWriter::new().finish();
        assert!(matches!(decode(&empty), Err(WireError::Truncated)));
    }
}
