//! Free variables, capture-avoiding substitution, renaming, and
//! α-equivalence for CC terms.
//!
//! CC uses a named representation of binders, so substitution must freshen
//! binders that would capture free variables of the substituted term.
//! α-equivalence compares terms up to a consistent renaming of binders.

use crate::ast::{RcTerm, Term};
use cccc_util::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// The free variables of `term`, in order of first occurrence (left to
/// right, outside in). Duplicates are removed.
pub fn free_vars(term: &Term) -> Vec<Symbol> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_free(term, &mut HashSet::new(), &mut seen, &mut out);
    out
}

/// The free variables of `term` as a set, collected directly (no
/// intermediate ordered `Vec`) — this sits on the substitution hot path,
/// which only needs membership queries.
pub fn free_var_set(term: &Term) -> HashSet<Symbol> {
    let mut out = HashSet::new();
    collect_free_set(term, &mut Vec::new(), &mut out);
    out
}

fn collect_free_set(term: &Term, bound: &mut Vec<Symbol>, out: &mut HashSet<Symbol>) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) {
                out.insert(*x);
            }
        }
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain: body }
        | Term::Lam { binder, domain, body }
        | Term::Sigma { binder, first: domain, second: body } => {
            collect_free_set(domain, bound, out);
            bound.push(*binder);
            collect_free_set(body, bound, out);
            bound.pop();
        }
        Term::App { func, arg } => {
            collect_free_set(func, bound, out);
            collect_free_set(arg, bound, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            collect_free_set(annotation, bound, out);
            collect_free_set(bound_term, bound, out);
            bound.push(*binder);
            collect_free_set(body, bound, out);
            bound.pop();
        }
        Term::Pair { first, second, annotation } => {
            collect_free_set(first, bound, out);
            collect_free_set(second, bound, out);
            collect_free_set(annotation, bound, out);
        }
        Term::Fst(e) | Term::Snd(e) => collect_free_set(e, bound, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            collect_free_set(scrutinee, bound, out);
            collect_free_set(then_branch, bound, out);
            collect_free_set(else_branch, bound, out);
        }
    }
}

/// Whether `x` occurs free in `term`. Short-circuits on the first
/// occurrence without materializing any free-variable collection — this
/// sits on the β/ζ and equivalence hot paths.
pub fn occurs_free(x: Symbol, term: &Term) -> bool {
    match term {
        Term::Var(y) => *y == x,
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => false,
        Term::Pi { binder, domain, codomain: body }
        | Term::Lam { binder, domain, body }
        | Term::Sigma { binder, first: domain, second: body } => {
            occurs_free(x, domain) || (*binder != x && occurs_free(x, body))
        }
        Term::App { func, arg } => occurs_free(x, func) || occurs_free(x, arg),
        Term::Let { binder, annotation, bound, body } => {
            occurs_free(x, annotation)
                || occurs_free(x, bound)
                || (*binder != x && occurs_free(x, body))
        }
        Term::Pair { first, second, annotation } => {
            occurs_free(x, first) || occurs_free(x, second) || occurs_free(x, annotation)
        }
        Term::Fst(e) | Term::Snd(e) => occurs_free(x, e),
        Term::If { scrutinee, then_branch, else_branch } => {
            occurs_free(x, scrutinee) || occurs_free(x, then_branch) || occurs_free(x, else_branch)
        }
    }
}

fn collect_free(
    term: &Term,
    bound: &mut HashSet<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) && seen.insert(*x) {
                out.push(*x);
            }
        }
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain } => {
            collect_free(domain, bound, seen, out);
            collect_under(*binder, codomain, bound, seen, out);
        }
        Term::Lam { binder, domain, body } => {
            collect_free(domain, bound, seen, out);
            collect_under(*binder, body, bound, seen, out);
        }
        Term::App { func, arg } => {
            collect_free(func, bound, seen, out);
            collect_free(arg, bound, seen, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            collect_free(annotation, bound, seen, out);
            collect_free(bound_term, bound, seen, out);
            collect_under(*binder, body, bound, seen, out);
        }
        Term::Sigma { binder, first, second } => {
            collect_free(first, bound, seen, out);
            collect_under(*binder, second, bound, seen, out);
        }
        Term::Pair { first, second, annotation } => {
            collect_free(first, bound, seen, out);
            collect_free(second, bound, seen, out);
            collect_free(annotation, bound, seen, out);
        }
        Term::Fst(e) | Term::Snd(e) => collect_free(e, bound, seen, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            collect_free(scrutinee, bound, seen, out);
            collect_free(then_branch, bound, seen, out);
            collect_free(else_branch, bound, seen, out);
        }
    }
}

fn collect_under(
    binder: Symbol,
    body: &Term,
    bound: &mut HashSet<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    let newly_bound = bound.insert(binder);
    collect_free(body, bound, seen, out);
    if newly_bound {
        bound.remove(&binder);
    }
}

/// Capture-avoiding substitution `term[replacement/x]`.
///
/// Binders that shadow `x` stop the substitution; binders whose name occurs
/// free in `replacement` are renamed to fresh symbols before descending.
///
/// The free-variable set of `replacement` is computed *lazily*, on the
/// first binder crossing that needs it: substituting into binder-free
/// positions (the overwhelmingly common `[App]`-rule case of substituting
/// an argument into a small codomain) never materializes it at all.
pub fn subst(term: &Term, x: Symbol, replacement: &Term) -> Term {
    let mut fv = FvCache { replacement, set: None };
    subst_inner(term, x, replacement, &mut fv)
}

/// A lazily computed free-variable set for the replacement term of a
/// substitution.
struct FvCache<'a> {
    replacement: &'a Term,
    set: Option<HashSet<Symbol>>,
}

impl FvCache<'_> {
    fn contains(&mut self, name: Symbol) -> bool {
        self.set.get_or_insert_with(|| free_var_set(self.replacement)).contains(&name)
    }
}

/// Applies several substitutions in sequence (left to right). Later
/// substitutions see the result of earlier ones.
pub fn subst_all(term: &Term, substitutions: &[(Symbol, Term)]) -> Term {
    let mut out = term.clone();
    for (x, replacement) in substitutions {
        out = subst(&out, *x, replacement);
    }
    out
}

fn subst_inner(term: &Term, x: Symbol, replacement: &Term, fv: &mut FvCache<'_>) -> Term {
    match term {
        Term::Var(y) => {
            if *y == x {
                replacement.clone()
            } else {
                term.clone()
            }
        }
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => term.clone(),
        Term::Pi { binder, domain, codomain } => {
            let domain = subst_inner(domain, x, replacement, fv).rc();
            let (binder, codomain) = subst_under(*binder, codomain, x, replacement, fv);
            Term::Pi { binder, domain, codomain: codomain.rc() }
        }
        Term::Lam { binder, domain, body } => {
            let domain = subst_inner(domain, x, replacement, fv).rc();
            let (binder, body) = subst_under(*binder, body, x, replacement, fv);
            Term::Lam { binder, domain, body: body.rc() }
        }
        Term::App { func, arg } => Term::App {
            func: subst_inner(func, x, replacement, fv).rc(),
            arg: subst_inner(arg, x, replacement, fv).rc(),
        },
        Term::Let { binder, annotation, bound, body } => {
            let annotation = subst_inner(annotation, x, replacement, fv).rc();
            let bound = subst_inner(bound, x, replacement, fv).rc();
            let (binder, body) = subst_under(*binder, body, x, replacement, fv);
            Term::Let { binder, annotation, bound, body: body.rc() }
        }
        Term::Sigma { binder, first, second } => {
            let first = subst_inner(first, x, replacement, fv).rc();
            let (binder, second) = subst_under(*binder, second, x, replacement, fv);
            Term::Sigma { binder, first, second: second.rc() }
        }
        Term::Pair { first, second, annotation } => Term::Pair {
            first: subst_inner(first, x, replacement, fv).rc(),
            second: subst_inner(second, x, replacement, fv).rc(),
            annotation: subst_inner(annotation, x, replacement, fv).rc(),
        },
        Term::Fst(e) => Term::Fst(subst_inner(e, x, replacement, fv).rc()),
        Term::Snd(e) => Term::Snd(subst_inner(e, x, replacement, fv).rc()),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: subst_inner(scrutinee, x, replacement, fv).rc(),
            then_branch: subst_inner(then_branch, x, replacement, fv).rc(),
            else_branch: subst_inner(else_branch, x, replacement, fv).rc(),
        },
    }
}

/// Substitutes inside the body of a binder, freshening the binder when it
/// would capture a free variable of the replacement (or when it shadows `x`,
/// in which case substitution stops).
fn subst_under(
    binder: Symbol,
    body: &Term,
    x: Symbol,
    replacement: &Term,
    fv: &mut FvCache<'_>,
) -> (Symbol, Term) {
    if binder == x {
        // The binder shadows `x`; the substitution does not reach the body.
        return (binder, body.clone());
    }
    if fv.contains(binder) {
        // The binder would capture a free variable of the replacement;
        // rename it first.
        let fresh = binder.freshen();
        let renamed = rename(body, binder, fresh);
        (fresh, subst_inner(&renamed, x, replacement, fv))
    } else {
        (binder, subst_inner(body, x, replacement, fv))
    }
}

/// Renames every free occurrence of `from` in `term` to `to`. `to` is
/// assumed not to be captured by any binder of `term` (guaranteed when `to`
/// is a freshly generated symbol).
pub fn rename(term: &Term, from: Symbol, to: Symbol) -> Term {
    subst(term, from, &Term::Var(to))
}

/// α-equivalence of two terms: structural equality up to consistent renaming
/// of bound variables. Pair annotations are compared as well, since they are
/// part of the syntax.
pub fn alpha_eq(left: &Term, right: &Term) -> bool {
    alpha_eq_inner(left, right, &mut HashMap::new(), &mut HashMap::new())
}

fn alpha_eq_inner(
    left: &Term,
    right: &Term,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    match (left, right) {
        (Term::Var(x), Term::Var(y)) => match (l2r.get(x), r2l.get(y)) {
            (Some(mapped_x), Some(mapped_y)) => mapped_x == y && mapped_y == x,
            (None, None) => x == y,
            _ => false,
        },
        (Term::Sort(u), Term::Sort(v)) => u == v,
        (Term::BoolTy, Term::BoolTy) => true,
        (Term::BoolLit(a), Term::BoolLit(b)) => a == b,
        (
            Term::Pi { binder: x, domain: a1, codomain: b1 },
            Term::Pi { binder: y, domain: a2, codomain: b2 },
        )
        | (
            Term::Lam { binder: x, domain: a1, body: b1 },
            Term::Lam { binder: y, domain: a2, body: b2 },
        )
        | (
            Term::Sigma { binder: x, first: a1, second: b1 },
            Term::Sigma { binder: y, first: a2, second: b2 },
        ) => alpha_eq_inner(a1, a2, l2r, r2l) && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l),
        (Term::App { func: f1, arg: a1 }, Term::App { func: f2, arg: a2 }) => {
            alpha_eq_inner(f1, f2, l2r, r2l) && alpha_eq_inner(a1, a2, l2r, r2l)
        }
        (
            Term::Let { binder: x, annotation: t1, bound: e1, body: b1 },
            Term::Let { binder: y, annotation: t2, bound: e2, body: b2 },
        ) => {
            alpha_eq_inner(t1, t2, l2r, r2l)
                && alpha_eq_inner(e1, e2, l2r, r2l)
                && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l)
        }
        (
            Term::Pair { first: a1, second: b1, annotation: t1 },
            Term::Pair { first: a2, second: b2, annotation: t2 },
        ) => {
            alpha_eq_inner(a1, a2, l2r, r2l)
                && alpha_eq_inner(b1, b2, l2r, r2l)
                && alpha_eq_inner(t1, t2, l2r, r2l)
        }
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => {
            alpha_eq_inner(a, b, l2r, r2l)
        }
        (
            Term::If { scrutinee: s1, then_branch: t1, else_branch: e1 },
            Term::If { scrutinee: s2, then_branch: t2, else_branch: e2 },
        ) => {
            alpha_eq_inner(s1, s2, l2r, r2l)
                && alpha_eq_inner(t1, t2, l2r, r2l)
                && alpha_eq_inner(e1, e2, l2r, r2l)
        }
        _ => false,
    }
}

fn alpha_eq_binder(
    x: Symbol,
    left: &RcTerm,
    y: Symbol,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    let old_l = l2r.insert(x, y);
    let old_r = r2l.insert(y, x);
    let result = alpha_eq_inner(left, right, l2r, r2l);
    match old_l {
        Some(prev) => {
            l2r.insert(x, prev);
        }
        None => {
            l2r.remove(&x);
        }
    }
    match old_r {
        Some(prev) => {
            r2l.insert(y, prev);
        }
        None => {
            r2l.remove(&y);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn free_vars_of_open_term() {
        let t = app(var("f"), lam("x", var("A"), app(var("x"), var("y"))));
        assert_eq!(free_vars(&t), vec![sym("f"), sym("A"), sym("y")]);
    }

    #[test]
    fn bound_variables_are_not_free() {
        let t = lam("x", bool_ty(), var("x"));
        assert!(free_vars(&t).is_empty());
        assert!(!occurs_free(sym("x"), &t));
    }

    #[test]
    fn pi_binder_scopes_only_codomain() {
        // Π x : x. x — the domain occurrence of x is free, the codomain one is bound.
        let t = pi("x", var("x"), var("x"));
        assert_eq!(free_vars(&t), vec![sym("x")]);
    }

    #[test]
    fn let_binder_scopes_only_body() {
        let t = let_("x", bool_ty(), var("x"), var("x"));
        assert_eq!(free_vars(&t), vec![sym("x")]);
    }

    #[test]
    fn simple_substitution() {
        let t = app(var("f"), var("x"));
        let s = subst(&t, sym("x"), &tt());
        assert!(alpha_eq(&s, &app(var("f"), tt())));
    }

    #[test]
    fn substitution_stops_at_shadowing_binder() {
        let t = lam("x", bool_ty(), var("x"));
        let s = subst(&t, sym("x"), &tt());
        assert!(alpha_eq(&s, &t));
    }

    #[test]
    fn substitution_avoids_capture() {
        // (λ y : Bool. x)[y/x]  must not become  λ y : Bool. y
        let t = lam("y", bool_ty(), var("x"));
        let s = subst(&t, sym("x"), &var("y"));
        match &s {
            Term::Lam { binder, body, .. } => {
                assert_ne!(*binder, sym("y"), "binder should have been freshened");
                assert!(alpha_eq(body, &var("y")));
            }
            _ => panic!("expected lambda"),
        }
        // And the result is *not* alpha-equal to the capturing term.
        assert!(!alpha_eq(&s, &lam("y", bool_ty(), var("y"))));
    }

    #[test]
    fn substitution_in_annotation_and_bound() {
        let t = let_("z", var("x"), var("x"), var("z"));
        let s = subst(&t, sym("x"), &bool_ty());
        assert!(alpha_eq(&s, &let_("z", bool_ty(), bool_ty(), var("z"))));
    }

    #[test]
    fn subst_all_applies_in_order() {
        let t = app(var("x"), var("y"));
        let s = subst_all(&t, &[(sym("x"), var("y")), (sym("y"), tt())]);
        // x ↦ y first, then y ↦ true turns both into true.
        assert!(alpha_eq(&s, &app(tt(), tt())));
    }

    #[test]
    fn alpha_equivalence_of_renamed_lambdas() {
        let a = lam("x", bool_ty(), var("x"));
        let b = lam("y", bool_ty(), var("y"));
        assert!(alpha_eq(&a, &b));
    }

    #[test]
    fn alpha_distinguishes_free_variables() {
        assert!(!alpha_eq(&var("x"), &var("y")));
        assert!(alpha_eq(&var("x"), &var("x")));
    }

    #[test]
    fn alpha_distinguishes_structures() {
        assert!(!alpha_eq(&lam("x", bool_ty(), var("x")), &pi("x", bool_ty(), var("x"))));
        assert!(!alpha_eq(&tt(), &ff()));
        assert!(!alpha_eq(&star(), &boxu()));
    }

    #[test]
    fn alpha_nested_binders() {
        let a = lam("x", star(), lam("y", var("x"), var("y")));
        let b = lam("u", star(), lam("v", var("u"), var("v")));
        let c = lam("u", star(), lam("v", var("u"), var("u")));
        assert!(alpha_eq(&a, &b));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn alpha_requires_consistent_renaming() {
        // λ x. λ y. x  vs  λ x. λ y. y
        let a = lam("x", bool_ty(), lam("y", bool_ty(), var("x")));
        let b = lam("x", bool_ty(), lam("y", bool_ty(), var("y")));
        assert!(!alpha_eq(&a, &b));
    }

    #[test]
    fn rename_changes_free_occurrences_only() {
        let t = app(var("x"), lam("x", bool_ty(), var("x")));
        let r = rename(&t, sym("x"), sym("z"));
        assert!(alpha_eq(&r, &app(var("z"), lam("x", bool_ty(), var("x")))));
    }

    #[test]
    fn free_vars_deduplicates() {
        let t = app(var("x"), var("x"));
        assert_eq!(free_vars(&t), vec![sym("x")]);
    }

    #[test]
    fn pair_annotation_counts_for_free_vars() {
        let t = pair(tt(), ff(), sigma("p", var("A"), bool_ty()));
        assert_eq!(free_vars(&t), vec![sym("A")]);
    }

    #[test]
    fn substitution_under_sigma_avoids_capture() {
        // (Σ y : Bool. x)[⟨uses y⟩/x]
        let t = sigma("y", bool_ty(), var("x"));
        let s = subst(&t, sym("x"), &var("y"));
        match &s {
            Term::Sigma { binder, second, .. } => {
                assert_ne!(*binder, sym("y"));
                assert!(alpha_eq(second, &var("y")));
            }
            _ => panic!("expected sigma"),
        }
    }
}
