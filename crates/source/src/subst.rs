//! Free variables, capture-avoiding substitution, renaming, and
//! α-equivalence for CC terms.
//!
//! CC uses a named representation of binders, so substitution must freshen
//! binders that would capture free variables of the substituted term.
//! α-equivalence compares terms up to a consistent renaming of binders.

use crate::ast::{RcTerm, Term};
use cccc_util::binder::subst_under;
use cccc_util::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// The free variables of `term`, in order of first occurrence (left to
/// right, outside in). Duplicates are removed.
pub fn free_vars(term: &Term) -> Vec<Symbol> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_free(term, &mut HashSet::new(), &mut seen, &mut out);
    out
}

/// The free variables of `term` as a set — this used to traverse the term;
/// it now assembles the answer from the children's metadata cached by the
/// hash-consing kernel, so the cost is O(free variables), not O(term).
pub fn free_var_set(term: &Term) -> HashSet<Symbol> {
    match term {
        Term::Var(x) => std::iter::once(*x).collect(),
        _ => {
            let mut out = HashSet::new();
            head_free_vars(term, |v| {
                out.insert(v);
            });
            out
        }
    }
}

/// Feeds every free variable of the head (children read from cached
/// metadata, the head's own binders subtracted) to `f`, with duplicates.
fn head_free_vars(term: &Term, mut f: impl FnMut(Symbol)) {
    match term {
        Term::Var(x) => f(*x),
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain: body }
        | Term::Lam { binder, domain, body }
        | Term::Sigma { binder, first: domain, second: body } => {
            domain.free_vars().iter().for_each(&mut f);
            body.free_vars().iter().filter(|v| v != binder).for_each(&mut f);
        }
        Term::Let { binder, annotation, bound, body } => {
            annotation.free_vars().iter().for_each(&mut f);
            bound.free_vars().iter().for_each(&mut f);
            body.free_vars().iter().filter(|v| v != binder).for_each(&mut f);
        }
        _ => term.for_each_child(|c| c.free_vars().iter().for_each(&mut f)),
    }
}

/// Whether `x` occurs free in `term`. O(1) in the size of the term: the
/// children's cached free-variable sets answer the membership query, only
/// the head's binders are inspected.
pub fn occurs_free(x: Symbol, term: &Term) -> bool {
    match term {
        Term::Var(y) => *y == x,
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => false,
        Term::Pi { binder, domain, codomain: body }
        | Term::Lam { binder, domain, body }
        | Term::Sigma { binder, first: domain, second: body } => {
            domain.free_vars().contains(x) || (*binder != x && body.free_vars().contains(x))
        }
        Term::Let { binder, annotation, bound, body } => {
            annotation.free_vars().contains(x)
                || bound.free_vars().contains(x)
                || (*binder != x && body.free_vars().contains(x))
        }
        _ => {
            let mut found = false;
            term.for_each_child(|c| found = found || c.free_vars().contains(x));
            found
        }
    }
}

fn collect_free(
    term: &Term,
    bound: &mut HashSet<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) && seen.insert(*x) {
                out.push(*x);
            }
        }
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain } => {
            collect_free(domain, bound, seen, out);
            collect_under(*binder, codomain, bound, seen, out);
        }
        Term::Lam { binder, domain, body } => {
            collect_free(domain, bound, seen, out);
            collect_under(*binder, body, bound, seen, out);
        }
        Term::App { func, arg } => {
            collect_free(func, bound, seen, out);
            collect_free(arg, bound, seen, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            collect_free(annotation, bound, seen, out);
            collect_free(bound_term, bound, seen, out);
            collect_under(*binder, body, bound, seen, out);
        }
        Term::Sigma { binder, first, second } => {
            collect_free(first, bound, seen, out);
            collect_under(*binder, second, bound, seen, out);
        }
        Term::Pair { first, second, annotation } => {
            collect_free(first, bound, seen, out);
            collect_free(second, bound, seen, out);
            collect_free(annotation, bound, seen, out);
        }
        Term::Fst(e) | Term::Snd(e) => collect_free(e, bound, seen, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            collect_free(scrutinee, bound, seen, out);
            collect_free(then_branch, bound, seen, out);
            collect_free(else_branch, bound, seen, out);
        }
    }
}

fn collect_under(
    binder: Symbol,
    body: &Term,
    bound: &mut HashSet<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    let newly_bound = bound.insert(binder);
    collect_free(body, bound, seen, out);
    if newly_bound {
        bound.remove(&binder);
    }
}

/// Capture-avoiding substitution `term[replacement/x]`.
///
/// Binders that shadow `x` stop the substitution; binders whose name occurs
/// free in `replacement` are renamed to fresh symbols before descending
/// (the shared skeleton of [`cccc_util::binder`]).
///
/// Every capture check and every "does `x` even occur here?" test is an
/// O(1) lookup against the metadata cached by the hash-consing kernel:
/// subtrees that do not mention `x` are returned as shared handles without
/// being visited at all.
pub fn subst(term: &Term, x: Symbol, replacement: &Term) -> Term {
    if !occurs_free(x, term) {
        return term.clone();
    }
    let replacement = replacement.clone().rc();
    subst_inner(term, x, &replacement)
}

/// [`subst`] on interned handles: returns the input handle unchanged (a
/// reference-count bump) when `x` does not occur.
pub fn subst_rc(term: &RcTerm, x: Symbol, replacement: &RcTerm) -> RcTerm {
    if !term.free_vars().contains(x) {
        return term.clone();
    }
    subst_inner(term, x, replacement).rc()
}

/// Applies several substitutions in sequence (left to right). Later
/// substitutions see the result of earlier ones.
pub fn subst_all(term: &Term, substitutions: &[(Symbol, Term)]) -> Term {
    let mut out = term.clone();
    for (x, replacement) in substitutions {
        out = subst(&out, *x, replacement);
    }
    out
}

fn subst_inner(term: &Term, x: Symbol, replacement: &RcTerm) -> Term {
    // Recursion into a child handle: skipped outright (shared, not
    // copied) when the child does not mention `x`.
    let sub = |child: &RcTerm| subst_rc(child, x, replacement);
    // The rename/subst closures handed to the shared binder skeleton.
    let ren = |child: &RcTerm, from: Symbol, to: Symbol| rename_rc(child, from, to);
    let fv = replacement.free_vars();
    match term {
        Term::Var(y) => {
            if *y == x {
                (**replacement).clone()
            } else {
                term.clone()
            }
        }
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => term.clone(),
        Term::Pi { binder, domain, codomain } => {
            let domain = sub(domain);
            let (binder, codomain) = subst_under(*binder, codomain, x, fv, ren, sub);
            Term::Pi { binder, domain, codomain }
        }
        Term::Lam { binder, domain, body } => {
            let domain = sub(domain);
            let (binder, body) = subst_under(*binder, body, x, fv, ren, sub);
            Term::Lam { binder, domain, body }
        }
        Term::App { func, arg } => Term::App { func: sub(func), arg: sub(arg) },
        Term::Let { binder, annotation, bound, body } => {
            let annotation = sub(annotation);
            let bound = sub(bound);
            let (binder, body) = subst_under(*binder, body, x, fv, ren, sub);
            Term::Let { binder, annotation, bound, body }
        }
        Term::Sigma { binder, first, second } => {
            let first = sub(first);
            let (binder, second) = subst_under(*binder, second, x, fv, ren, sub);
            Term::Sigma { binder, first, second }
        }
        Term::Pair { first, second, annotation } => {
            Term::Pair { first: sub(first), second: sub(second), annotation: sub(annotation) }
        }
        Term::Fst(e) => Term::Fst(sub(e)),
        Term::Snd(e) => Term::Snd(sub(e)),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: sub(scrutinee),
            then_branch: sub(then_branch),
            else_branch: sub(else_branch),
        },
    }
}

/// Renames every free occurrence of `from` in `term` to `to`. `to` is
/// assumed not to be captured by any binder of `term` (guaranteed when `to`
/// is a freshly generated symbol).
pub fn rename(term: &Term, from: Symbol, to: Symbol) -> Term {
    subst(term, from, &Term::Var(to))
}

/// [`rename`] on interned handles, sharing untouched subtrees.
fn rename_rc(term: &RcTerm, from: Symbol, to: Symbol) -> RcTerm {
    if !term.free_vars().contains(from) {
        return term.clone();
    }
    subst_inner(term, from, &Term::Var(to).rc()).rc()
}

/// α-equivalence of two terms: structural equality up to consistent renaming
/// of bound variables. Pair annotations are compared as well, since they are
/// part of the syntax.
///
/// Hash-consing gives the traversal an identity fast path: two handles to
/// the *same* node are α-equivalent whenever no active binder pairing can
/// touch their free variables — in particular always at the top level.
pub fn alpha_eq(left: &Term, right: &Term) -> bool {
    alpha_eq_inner(left, right, &mut HashMap::new(), &mut HashMap::new())
}

/// [`alpha_eq_inner`] on child handles, short-circuiting on node identity.
///
/// Identical nodes are α-equal outright when none of their free variables
/// is remapped by an active binder pairing (a free variable outside both
/// maps must satisfy `x == y`, which identity guarantees; bound-variable
/// structure is literally the same). A closed node trivially satisfies the
/// condition.
fn alpha_eq_child(
    left: &RcTerm,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    if left.same(right) {
        let unaffected = (l2r.is_empty() && r2l.is_empty())
            || left.free_vars().iter().all(|v| !l2r.contains_key(&v) && !r2l.contains_key(&v));
        if unaffected {
            return true;
        }
    }
    alpha_eq_inner(left, right, l2r, r2l)
}

fn alpha_eq_inner(
    left: &Term,
    right: &Term,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    match (left, right) {
        (Term::Var(x), Term::Var(y)) => match (l2r.get(x), r2l.get(y)) {
            (Some(mapped_x), Some(mapped_y)) => mapped_x == y && mapped_y == x,
            (None, None) => x == y,
            _ => false,
        },
        (Term::Sort(u), Term::Sort(v)) => u == v,
        (Term::BoolTy, Term::BoolTy) => true,
        (Term::BoolLit(a), Term::BoolLit(b)) => a == b,
        (
            Term::Pi { binder: x, domain: a1, codomain: b1 },
            Term::Pi { binder: y, domain: a2, codomain: b2 },
        )
        | (
            Term::Lam { binder: x, domain: a1, body: b1 },
            Term::Lam { binder: y, domain: a2, body: b2 },
        )
        | (
            Term::Sigma { binder: x, first: a1, second: b1 },
            Term::Sigma { binder: y, first: a2, second: b2 },
        ) => alpha_eq_child(a1, a2, l2r, r2l) && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l),
        (Term::App { func: f1, arg: a1 }, Term::App { func: f2, arg: a2 }) => {
            alpha_eq_child(f1, f2, l2r, r2l) && alpha_eq_child(a1, a2, l2r, r2l)
        }
        (
            Term::Let { binder: x, annotation: t1, bound: e1, body: b1 },
            Term::Let { binder: y, annotation: t2, bound: e2, body: b2 },
        ) => {
            alpha_eq_child(t1, t2, l2r, r2l)
                && alpha_eq_child(e1, e2, l2r, r2l)
                && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l)
        }
        (
            Term::Pair { first: a1, second: b1, annotation: t1 },
            Term::Pair { first: a2, second: b2, annotation: t2 },
        ) => {
            alpha_eq_child(a1, a2, l2r, r2l)
                && alpha_eq_child(b1, b2, l2r, r2l)
                && alpha_eq_child(t1, t2, l2r, r2l)
        }
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => {
            alpha_eq_child(a, b, l2r, r2l)
        }
        (
            Term::If { scrutinee: s1, then_branch: t1, else_branch: e1 },
            Term::If { scrutinee: s2, then_branch: t2, else_branch: e2 },
        ) => {
            alpha_eq_child(s1, s2, l2r, r2l)
                && alpha_eq_child(t1, t2, l2r, r2l)
                && alpha_eq_child(e1, e2, l2r, r2l)
        }
        _ => false,
    }
}

fn alpha_eq_binder(
    x: Symbol,
    left: &RcTerm,
    y: Symbol,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    let old_l = l2r.insert(x, y);
    let old_r = r2l.insert(y, x);
    let result = alpha_eq_child(left, right, l2r, r2l);
    match old_l {
        Some(prev) => {
            l2r.insert(x, prev);
        }
        None => {
            l2r.remove(&x);
        }
    }
    match old_r {
        Some(prev) => {
            r2l.insert(y, prev);
        }
        None => {
            r2l.remove(&y);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn free_vars_of_open_term() {
        let t = app(var("f"), lam("x", var("A"), app(var("x"), var("y"))));
        assert_eq!(free_vars(&t), vec![sym("f"), sym("A"), sym("y")]);
    }

    #[test]
    fn bound_variables_are_not_free() {
        let t = lam("x", bool_ty(), var("x"));
        assert!(free_vars(&t).is_empty());
        assert!(!occurs_free(sym("x"), &t));
    }

    #[test]
    fn pi_binder_scopes_only_codomain() {
        // Π x : x. x — the domain occurrence of x is free, the codomain one is bound.
        let t = pi("x", var("x"), var("x"));
        assert_eq!(free_vars(&t), vec![sym("x")]);
    }

    #[test]
    fn let_binder_scopes_only_body() {
        let t = let_("x", bool_ty(), var("x"), var("x"));
        assert_eq!(free_vars(&t), vec![sym("x")]);
    }

    #[test]
    fn simple_substitution() {
        let t = app(var("f"), var("x"));
        let s = subst(&t, sym("x"), &tt());
        assert!(alpha_eq(&s, &app(var("f"), tt())));
    }

    #[test]
    fn substitution_stops_at_shadowing_binder() {
        let t = lam("x", bool_ty(), var("x"));
        let s = subst(&t, sym("x"), &tt());
        assert!(alpha_eq(&s, &t));
    }

    #[test]
    fn substitution_avoids_capture() {
        // (λ y : Bool. x)[y/x]  must not become  λ y : Bool. y
        let t = lam("y", bool_ty(), var("x"));
        let s = subst(&t, sym("x"), &var("y"));
        match &s {
            Term::Lam { binder, body, .. } => {
                assert_ne!(*binder, sym("y"), "binder should have been freshened");
                assert!(alpha_eq(body, &var("y")));
            }
            _ => panic!("expected lambda"),
        }
        // And the result is *not* alpha-equal to the capturing term.
        assert!(!alpha_eq(&s, &lam("y", bool_ty(), var("y"))));
    }

    #[test]
    fn substitution_in_annotation_and_bound() {
        let t = let_("z", var("x"), var("x"), var("z"));
        let s = subst(&t, sym("x"), &bool_ty());
        assert!(alpha_eq(&s, &let_("z", bool_ty(), bool_ty(), var("z"))));
    }

    #[test]
    fn subst_all_applies_in_order() {
        let t = app(var("x"), var("y"));
        let s = subst_all(&t, &[(sym("x"), var("y")), (sym("y"), tt())]);
        // x ↦ y first, then y ↦ true turns both into true.
        assert!(alpha_eq(&s, &app(tt(), tt())));
    }

    #[test]
    fn alpha_equivalence_of_renamed_lambdas() {
        let a = lam("x", bool_ty(), var("x"));
        let b = lam("y", bool_ty(), var("y"));
        assert!(alpha_eq(&a, &b));
    }

    #[test]
    fn alpha_distinguishes_free_variables() {
        assert!(!alpha_eq(&var("x"), &var("y")));
        assert!(alpha_eq(&var("x"), &var("x")));
    }

    #[test]
    fn alpha_distinguishes_structures() {
        assert!(!alpha_eq(&lam("x", bool_ty(), var("x")), &pi("x", bool_ty(), var("x"))));
        assert!(!alpha_eq(&tt(), &ff()));
        assert!(!alpha_eq(&star(), &boxu()));
    }

    #[test]
    fn alpha_nested_binders() {
        let a = lam("x", star(), lam("y", var("x"), var("y")));
        let b = lam("u", star(), lam("v", var("u"), var("v")));
        let c = lam("u", star(), lam("v", var("u"), var("u")));
        assert!(alpha_eq(&a, &b));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn alpha_requires_consistent_renaming() {
        // λ x. λ y. x  vs  λ x. λ y. y
        let a = lam("x", bool_ty(), lam("y", bool_ty(), var("x")));
        let b = lam("x", bool_ty(), lam("y", bool_ty(), var("y")));
        assert!(!alpha_eq(&a, &b));
    }

    #[test]
    fn rename_changes_free_occurrences_only() {
        let t = app(var("x"), lam("x", bool_ty(), var("x")));
        let r = rename(&t, sym("x"), sym("z"));
        assert!(alpha_eq(&r, &app(var("z"), lam("x", bool_ty(), var("x")))));
    }

    #[test]
    fn free_vars_deduplicates() {
        let t = app(var("x"), var("x"));
        assert_eq!(free_vars(&t), vec![sym("x")]);
    }

    #[test]
    fn pair_annotation_counts_for_free_vars() {
        let t = pair(tt(), ff(), sigma("p", var("A"), bool_ty()));
        assert_eq!(free_vars(&t), vec![sym("A")]);
    }

    #[test]
    fn substitution_under_sigma_avoids_capture() {
        // (Σ y : Bool. x)[⟨uses y⟩/x]
        let t = sigma("y", bool_ty(), var("x"));
        let s = subst(&t, sym("x"), &var("y"));
        match &s {
            Term::Sigma { binder, second, .. } => {
                assert_ne!(*binder, sym("y"));
                assert!(alpha_eq(second, &var("y")));
            }
            _ => panic!("expected sigma"),
        }
    }
}
