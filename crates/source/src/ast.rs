//! Abstract syntax of CC (Figure 1 of the paper).
//!
//! CC is the Calculus of Constructions extended with strong dependent pairs
//! (Σ types), dependent let, and η-equivalence for functions. Expressions
//! make no syntactic distinction between terms, types, and kinds; the
//! universe `⋆` (small types) is itself typed by `□` (large types), and `□`
//! has no type.
//!
//! Following §5.2 of the paper we also include the ground type `Bool` with
//! literals and a non-dependent `if`, which is what the correctness-of-
//! separate-compilation theorem observes.

use cccc_util::intern::{FreeVars, InternStats, Internable, Interner, Node, NodeMeta};
use cccc_util::symbol::Symbol;
use std::cell::RefCell;
use std::fmt;

/// The two universes of CC.
///
/// `⋆` ([`Universe::Star`]) is the impredicative universe of small types
/// (the types of programs); `□` ([`Universe::Box`]) is the predicative
/// universe of large types (the types of types). `□` is not a term: it never
/// appears in well-typed programs, only as the inferred type of `⋆` and of
/// kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Universe {
    /// The impredicative universe `⋆` of small types.
    Star,
    /// The predicative universe `□` of large types.
    Box,
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Universe::Star => write!(f, "*"),
            Universe::Box => write!(f, "□"),
        }
    }
}

/// A hash-consed, reference-counted CC term handle. Terms are immutable;
/// substitution and reduction build new terms, sharing unchanged subterms.
///
/// Handles are produced by [`Term::rc`], which routes through a
/// thread-local [`Interner`]: structurally identical subterms share one
/// allocation and one [`NodeId`](cccc_util::intern::NodeId), so `==` on
/// handles is an O(1) identity test that coincides with structural
/// equality, and every node carries cached metadata — free-variable set,
/// closedness, depth, size (see [`cccc_util::intern`]).
pub type RcTerm = Node<Term>;

/// CC expressions (Figure 1).
///
/// The meta-variables `e`, `A`, `B` of the paper all range over this single
/// syntactic category.
///
/// The derived `PartialEq`/`Eq`/`Hash` are *shallow-structural*: children
/// compare by node identity, which — thanks to hash-consing — is full
/// structural equality (not α-equivalence; use
/// [`crate::subst::alpha_eq`] for that).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable `x`.
    Var(Symbol),
    /// A universe `⋆` or `□`.
    Sort(Universe),
    /// Dependent function type `Π x : A. B`.
    Pi {
        /// The bound variable `x` (may occur in `codomain`).
        binder: Symbol,
        /// The domain `A`.
        domain: RcTerm,
        /// The codomain `B`, which may mention `binder`.
        codomain: RcTerm,
    },
    /// Function `λ x : A. e`.
    Lam {
        /// The bound variable `x`.
        binder: Symbol,
        /// The annotation `A` on the argument.
        domain: RcTerm,
        /// The body `e`.
        body: RcTerm,
    },
    /// Application `e1 e2`.
    App {
        /// The function position `e1`.
        func: RcTerm,
        /// The argument position `e2`.
        arg: RcTerm,
    },
    /// Dependent let `let x = e : A in e'`.
    Let {
        /// The bound variable `x`.
        binder: Symbol,
        /// The annotation `A` on the definition.
        annotation: RcTerm,
        /// The definition `e`.
        bound: RcTerm,
        /// The body `e'`, which may mention `binder`.
        body: RcTerm,
    },
    /// Strong dependent pair type `Σ x : A. B`.
    Sigma {
        /// The bound variable `x` (names the first component in `second`).
        binder: Symbol,
        /// The type `A` of the first component.
        first: RcTerm,
        /// The type `B` of the second component, which may mention `binder`.
        second: RcTerm,
    },
    /// Dependent pair `⟨e1, e2⟩ as Σ x : A. B`.
    Pair {
        /// The first component `e1`.
        first: RcTerm,
        /// The second component `e2`.
        second: RcTerm,
        /// The Σ-type annotation the pair is formed at.
        annotation: RcTerm,
    },
    /// First projection `fst e`.
    Fst(RcTerm),
    /// Second projection `snd e`.
    Snd(RcTerm),
    /// The ground type `Bool` (§5.2).
    BoolTy,
    /// A boolean literal `true` or `false`.
    BoolLit(bool),
    /// Non-dependent conditional `if e then e1 else e2`.
    If {
        /// The scrutinee, of type `Bool`.
        scrutinee: RcTerm,
        /// The branch taken when the scrutinee is `true`.
        then_branch: RcTerm,
        /// The branch taken when the scrutinee is `false`.
        else_branch: RcTerm,
    },
}

thread_local! {
    /// The per-thread CC term interner. All smart constructors route
    /// through it, so structurally identical terms built on the same
    /// thread always share one node.
    static INTERNER: RefCell<Interner<Term>> = RefCell::new(Interner::new());
}

/// A snapshot of the CC interner's hit/miss counters (for benchmarks and
/// smoke assertions).
pub fn intern_stats() -> InternStats {
    INTERNER.with(|i| i.borrow().stats())
}

/// Number of entries currently in the CC interner table (live nodes
/// plus not-yet-pruned dead ones).
pub fn intern_table_len() -> usize {
    INTERNER.with(|i| i.borrow().len())
}

impl Internable for Term {
    fn compute_meta(&self) -> NodeMeta {
        // All unions go through [`FreeVars::union`]/[`FreeVars::minus`],
        // which share an existing child allocation whenever one side
        // covers the other — most nodes allocate nothing here.
        match self {
            Term::Var(x) => NodeMeta::leaf(FreeVars::singleton(*x)),
            Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => NodeMeta::leaf(FreeVars::closed()),
            Term::Pi { binder, domain, codomain: body }
            | Term::Lam { binder, domain, body }
            | Term::Sigma { binder, first: domain, second: body } => {
                let fv = FreeVars::union(domain.free_vars(), &body.free_vars().minus(&[*binder]));
                NodeMeta::node(fv, [domain.meta(), body.meta()])
            }
            Term::App { func, arg } => {
                let fv = FreeVars::union(func.free_vars(), arg.free_vars());
                NodeMeta::node(fv, [func.meta(), arg.meta()])
            }
            Term::Let { binder, annotation, bound, body } => {
                let fv = FreeVars::union(
                    &FreeVars::union(annotation.free_vars(), bound.free_vars()),
                    &body.free_vars().minus(&[*binder]),
                );
                NodeMeta::node(fv, [annotation.meta(), bound.meta(), body.meta()])
            }
            Term::Pair { first, second, annotation } => {
                let fv = FreeVars::union(
                    &FreeVars::union(first.free_vars(), second.free_vars()),
                    annotation.free_vars(),
                );
                NodeMeta::node(fv, [first.meta(), second.meta(), annotation.meta()])
            }
            // Single-child nodes share the child's set outright.
            Term::Fst(e) | Term::Snd(e) => NodeMeta::node(e.free_vars().clone(), [e.meta()]),
            Term::If { scrutinee, then_branch, else_branch } => {
                let fv = FreeVars::union(
                    &FreeVars::union(scrutinee.free_vars(), then_branch.free_vars()),
                    else_branch.free_vars(),
                );
                NodeMeta::node(fv, [scrutinee.meta(), then_branch.meta(), else_branch.meta()])
            }
        }
    }
}

impl Term {
    /// Interns the term, returning its hash-consed handle. O(1) in the
    /// size of the term: children are already interned, so only the head
    /// is hashed and, on a miss, only the head's metadata is derived.
    pub fn rc(self) -> RcTerm {
        INTERNER.with(|i| i.borrow_mut().intern(self))
    }

    /// Returns `true` for the universe `⋆`.
    pub fn is_star(&self) -> bool {
        matches!(self, Term::Sort(Universe::Star))
    }

    /// Returns `true` for the universe `□`.
    pub fn is_box(&self) -> bool {
        matches!(self, Term::Sort(Universe::Box))
    }

    /// Returns the universe if the term is a sort.
    pub fn as_sort(&self) -> Option<Universe> {
        match self {
            Term::Sort(u) => Some(*u),
            _ => None,
        }
    }

    /// Returns the variable name if the term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns `true` when the term is a *value* in the sense of Theorem 4.8:
    /// a universe, a function, a pair, a type constructor, or a boolean
    /// literal.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Term::Sort(_)
                | Term::Lam { .. }
                | Term::Pi { .. }
                | Term::Sigma { .. }
                | Term::Pair { .. }
                | Term::BoolTy
                | Term::BoolLit(_)
        )
    }

    /// Calls `f` on each *direct* child handle, left to right.
    pub fn for_each_child(&self, mut f: impl FnMut(&RcTerm)) {
        match self {
            Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
            Term::Pi { domain: a, codomain: b, .. }
            | Term::Lam { domain: a, body: b, .. }
            | Term::Sigma { first: a, second: b, .. }
            | Term::App { func: a, arg: b } => {
                f(a);
                f(b);
            }
            Term::Let { annotation: a, bound: b, body: c, .. }
            | Term::Pair { first: a, second: b, annotation: c }
            | Term::If { scrutinee: a, then_branch: b, else_branch: c } => {
                f(a);
                f(b);
                f(c);
            }
            Term::Fst(e) | Term::Snd(e) => f(e),
        }
    }

    /// The number of AST nodes in the term, counted *as a tree* (shared
    /// subterms count once per occurrence). Used by the benchmarks to
    /// report code-size blow-up of the translation. O(1): summed from the
    /// children's cached metadata rather than traversed.
    pub fn size(&self) -> usize {
        let mut total: u64 = 1;
        self.for_each_child(|c| total = total.saturating_add(c.meta().size));
        total.try_into().unwrap_or(usize::MAX)
    }

    /// The maximum depth of the AST. O(1) via cached metadata.
    pub fn depth(&self) -> usize {
        let mut deepest: u32 = 0;
        self.for_each_child(|c| deepest = deepest.max(c.meta().depth));
        (deepest + 1) as usize
    }

    /// Counts the number of λ-abstractions in the term; every one of them
    /// becomes a closure after closure conversion.
    pub fn lambda_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |t| {
            if matches!(t, Term::Lam { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Calls `f` on this term and every subterm, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
            Term::Pi { domain, codomain, .. } => {
                domain.visit(f);
                codomain.visit(f);
            }
            Term::Lam { domain, body, .. } => {
                domain.visit(f);
                body.visit(f);
            }
            Term::App { func, arg } => {
                func.visit(f);
                arg.visit(f);
            }
            Term::Let { annotation, bound, body, .. } => {
                annotation.visit(f);
                bound.visit(f);
                body.visit(f);
            }
            Term::Sigma { first, second, .. } => {
                first.visit(f);
                second.visit(f);
            }
            Term::Pair { first, second, annotation } => {
                first.visit(f);
                second.visit(f);
                annotation.visit(f);
            }
            Term::Fst(e) | Term::Snd(e) => e.visit(f),
            Term::If { scrutinee, then_branch, else_branch } => {
                scrutinee.visit(f);
                then_branch.visit(f);
                else_branch.visit(f);
            }
        }
    }

    /// Splits an application spine: `f a b c` becomes `(f, [a, b, c])`.
    pub fn spine(&self) -> (&Term, Vec<&RcTerm>) {
        let mut args = Vec::new();
        let mut head = self;
        while let Term::App { func, arg } = head {
            args.push(arg);
            head = func;
        }
        args.reverse();
        (head, args)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::term_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn universe_display() {
        assert_eq!(Universe::Star.to_string(), "*");
        assert_eq!(Universe::Box.to_string(), "□");
    }

    #[test]
    fn size_counts_nodes() {
        // λ x : Bool. x  has 3 nodes: Lam, BoolTy, Var.
        let t = lam("x", bool_ty(), var("x"));
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn lambda_count_counts_abstractions() {
        let t = lam("a", star(), lam("x", var("a"), var("x")));
        assert_eq!(t.lambda_count(), 2);
        assert_eq!(star().lambda_count(), 0);
    }

    #[test]
    fn values_are_recognized() {
        assert!(star().is_value());
        assert!(lam("x", bool_ty(), var("x")).is_value());
        assert!(bool_lit(true).is_value());
        assert!(!app(lam("x", bool_ty(), var("x")), bool_lit(true)).is_value());
        assert!(!var("x").is_value());
    }

    #[test]
    fn as_sort_and_as_var() {
        assert_eq!(star().as_sort(), Some(Universe::Star));
        assert_eq!(var("q").as_var().map(|s| s.base_name()), Some("q"));
        assert_eq!(var("q").as_sort(), None);
        assert!(star().is_star());
        assert!(boxu().is_box());
    }

    #[test]
    fn spine_splits_applications() {
        let t = app(app(var("f"), var("a")), var("b"));
        let (head, args) = t.spine();
        assert!(matches!(head, Term::Var(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn visit_reaches_every_node() {
        let t = pair(bool_lit(true), bool_lit(false), sigma("x", bool_ty(), bool_ty()));
        let mut n = 0;
        t.visit(&mut |_| n += 1);
        assert_eq!(n, t.size());
    }
}
