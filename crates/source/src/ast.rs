//! Abstract syntax of CC (Figure 1 of the paper).
//!
//! CC is the Calculus of Constructions extended with strong dependent pairs
//! (Σ types), dependent let, and η-equivalence for functions. Expressions
//! make no syntactic distinction between terms, types, and kinds; the
//! universe `⋆` (small types) is itself typed by `□` (large types), and `□`
//! has no type.
//!
//! Following §5.2 of the paper we also include the ground type `Bool` with
//! literals and a non-dependent `if`, which is what the correctness-of-
//! separate-compilation theorem observes.

use cccc_util::symbol::Symbol;
use std::fmt;
use std::rc::Rc;

/// The two universes of CC.
///
/// `⋆` ([`Universe::Star`]) is the impredicative universe of small types
/// (the types of programs); `□` ([`Universe::Box`]) is the predicative
/// universe of large types (the types of types). `□` is not a term: it never
/// appears in well-typed programs, only as the inferred type of `⋆` and of
/// kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Universe {
    /// The impredicative universe `⋆` of small types.
    Star,
    /// The predicative universe `□` of large types.
    Box,
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Universe::Star => write!(f, "*"),
            Universe::Box => write!(f, "□"),
        }
    }
}

/// A reference-counted CC term. Terms are immutable; substitution and
/// reduction build new terms, sharing unchanged subterms.
pub type RcTerm = Rc<Term>;

/// CC expressions (Figure 1).
///
/// The meta-variables `e`, `A`, `B` of the paper all range over this single
/// syntactic category.
#[derive(Clone, Debug)]
pub enum Term {
    /// A variable `x`.
    Var(Symbol),
    /// A universe `⋆` or `□`.
    Sort(Universe),
    /// Dependent function type `Π x : A. B`.
    Pi {
        /// The bound variable `x` (may occur in `codomain`).
        binder: Symbol,
        /// The domain `A`.
        domain: RcTerm,
        /// The codomain `B`, which may mention `binder`.
        codomain: RcTerm,
    },
    /// Function `λ x : A. e`.
    Lam {
        /// The bound variable `x`.
        binder: Symbol,
        /// The annotation `A` on the argument.
        domain: RcTerm,
        /// The body `e`.
        body: RcTerm,
    },
    /// Application `e1 e2`.
    App {
        /// The function position `e1`.
        func: RcTerm,
        /// The argument position `e2`.
        arg: RcTerm,
    },
    /// Dependent let `let x = e : A in e'`.
    Let {
        /// The bound variable `x`.
        binder: Symbol,
        /// The annotation `A` on the definition.
        annotation: RcTerm,
        /// The definition `e`.
        bound: RcTerm,
        /// The body `e'`, which may mention `binder`.
        body: RcTerm,
    },
    /// Strong dependent pair type `Σ x : A. B`.
    Sigma {
        /// The bound variable `x` (names the first component in `second`).
        binder: Symbol,
        /// The type `A` of the first component.
        first: RcTerm,
        /// The type `B` of the second component, which may mention `binder`.
        second: RcTerm,
    },
    /// Dependent pair `⟨e1, e2⟩ as Σ x : A. B`.
    Pair {
        /// The first component `e1`.
        first: RcTerm,
        /// The second component `e2`.
        second: RcTerm,
        /// The Σ-type annotation the pair is formed at.
        annotation: RcTerm,
    },
    /// First projection `fst e`.
    Fst(RcTerm),
    /// Second projection `snd e`.
    Snd(RcTerm),
    /// The ground type `Bool` (§5.2).
    BoolTy,
    /// A boolean literal `true` or `false`.
    BoolLit(bool),
    /// Non-dependent conditional `if e then e1 else e2`.
    If {
        /// The scrutinee, of type `Bool`.
        scrutinee: RcTerm,
        /// The branch taken when the scrutinee is `true`.
        then_branch: RcTerm,
        /// The branch taken when the scrutinee is `false`.
        else_branch: RcTerm,
    },
}

impl Term {
    /// Wraps the term in an [`Rc`].
    pub fn rc(self) -> RcTerm {
        Rc::new(self)
    }

    /// Returns `true` for the universe `⋆`.
    pub fn is_star(&self) -> bool {
        matches!(self, Term::Sort(Universe::Star))
    }

    /// Returns `true` for the universe `□`.
    pub fn is_box(&self) -> bool {
        matches!(self, Term::Sort(Universe::Box))
    }

    /// Returns the universe if the term is a sort.
    pub fn as_sort(&self) -> Option<Universe> {
        match self {
            Term::Sort(u) => Some(*u),
            _ => None,
        }
    }

    /// Returns the variable name if the term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns `true` when the term is a *value* in the sense of Theorem 4.8:
    /// a universe, a function, a pair, a type constructor, or a boolean
    /// literal.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Term::Sort(_)
                | Term::Lam { .. }
                | Term::Pi { .. }
                | Term::Sigma { .. }
                | Term::Pair { .. }
                | Term::BoolTy
                | Term::BoolLit(_)
        )
    }

    /// The number of AST nodes in the term. Used by the benchmarks to report
    /// code-size blow-up of the translation.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => 1,
            Term::Pi { domain, codomain, .. } => 1 + domain.size() + codomain.size(),
            Term::Lam { domain, body, .. } => 1 + domain.size() + body.size(),
            Term::App { func, arg } => 1 + func.size() + arg.size(),
            Term::Let { annotation, bound, body, .. } => {
                1 + annotation.size() + bound.size() + body.size()
            }
            Term::Sigma { first, second, .. } => 1 + first.size() + second.size(),
            Term::Pair { first, second, annotation } => {
                1 + first.size() + second.size() + annotation.size()
            }
            Term::Fst(e) | Term::Snd(e) => 1 + e.size(),
            Term::If { scrutinee, then_branch, else_branch } => {
                1 + scrutinee.size() + then_branch.size() + else_branch.size()
            }
        }
    }

    /// The maximum depth of the AST.
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => 1,
            Term::Pi { domain, codomain, .. } => 1 + domain.depth().max(codomain.depth()),
            Term::Lam { domain, body, .. } => 1 + domain.depth().max(body.depth()),
            Term::App { func, arg } => 1 + func.depth().max(arg.depth()),
            Term::Let { annotation, bound, body, .. } => {
                1 + annotation.depth().max(bound.depth()).max(body.depth())
            }
            Term::Sigma { first, second, .. } => 1 + first.depth().max(second.depth()),
            Term::Pair { first, second, annotation } => {
                1 + first.depth().max(second.depth()).max(annotation.depth())
            }
            Term::Fst(e) | Term::Snd(e) => 1 + e.depth(),
            Term::If { scrutinee, then_branch, else_branch } => {
                1 + scrutinee.depth().max(then_branch.depth()).max(else_branch.depth())
            }
        }
    }

    /// Counts the number of λ-abstractions in the term; every one of them
    /// becomes a closure after closure conversion.
    pub fn lambda_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |t| {
            if matches!(t, Term::Lam { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Calls `f` on this term and every subterm, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => {}
            Term::Pi { domain, codomain, .. } => {
                domain.visit(f);
                codomain.visit(f);
            }
            Term::Lam { domain, body, .. } => {
                domain.visit(f);
                body.visit(f);
            }
            Term::App { func, arg } => {
                func.visit(f);
                arg.visit(f);
            }
            Term::Let { annotation, bound, body, .. } => {
                annotation.visit(f);
                bound.visit(f);
                body.visit(f);
            }
            Term::Sigma { first, second, .. } => {
                first.visit(f);
                second.visit(f);
            }
            Term::Pair { first, second, annotation } => {
                first.visit(f);
                second.visit(f);
                annotation.visit(f);
            }
            Term::Fst(e) | Term::Snd(e) => e.visit(f),
            Term::If { scrutinee, then_branch, else_branch } => {
                scrutinee.visit(f);
                then_branch.visit(f);
                else_branch.visit(f);
            }
        }
    }

    /// Splits an application spine: `f a b c` becomes `(f, [a, b, c])`.
    pub fn spine(&self) -> (&Term, Vec<&RcTerm>) {
        let mut args = Vec::new();
        let mut head = self;
        while let Term::App { func, arg } = head {
            args.push(arg);
            head = func;
        }
        args.reverse();
        (head, args)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::term_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn universe_display() {
        assert_eq!(Universe::Star.to_string(), "*");
        assert_eq!(Universe::Box.to_string(), "□");
    }

    #[test]
    fn size_counts_nodes() {
        // λ x : Bool. x  has 3 nodes: Lam, BoolTy, Var.
        let t = lam("x", bool_ty(), var("x"));
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn lambda_count_counts_abstractions() {
        let t = lam("a", star(), lam("x", var("a"), var("x")));
        assert_eq!(t.lambda_count(), 2);
        assert_eq!(star().lambda_count(), 0);
    }

    #[test]
    fn values_are_recognized() {
        assert!(star().is_value());
        assert!(lam("x", bool_ty(), var("x")).is_value());
        assert!(bool_lit(true).is_value());
        assert!(!app(lam("x", bool_ty(), var("x")), bool_lit(true)).is_value());
        assert!(!var("x").is_value());
    }

    #[test]
    fn as_sort_and_as_var() {
        assert_eq!(star().as_sort(), Some(Universe::Star));
        assert_eq!(var("q").as_var().map(|s| s.base_name()), Some("q".to_owned()));
        assert_eq!(var("q").as_sort(), None);
        assert!(star().is_star());
        assert!(boxu().is_box());
    }

    #[test]
    fn spine_splits_applications() {
        let t = app(app(var("f"), var("a")), var("b"));
        let (head, args) = t.spine();
        assert!(matches!(head, Term::Var(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn visit_reaches_every_node() {
        let t = pair(bool_lit(true), bool_lit(false), sigma("x", bool_ty(), bool_ty()));
        let mut n = 0;
        t.visit(&mut |_| n += 1);
        assert_eq!(n, t.size());
    }
}
