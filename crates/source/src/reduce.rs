//! Reduction for CC (Figure 2).
//!
//! The paper defines a small-step relation `Γ ⊢ e ⊲ e'` with five rules —
//! δ (unfold a defined variable), ζ (dependent let), β (application), π1 and
//! π2 (projections) — plus its reflexive, transitive, contextual closure
//! `⊲*`. We additionally reduce `if` on boolean literals, matching the ground
//! types added in §5.2.
//!
//! This module provides:
//!
//! * [`step`] — one leftmost-outermost reduction step (the `⊲` relation),
//! * [`reduce_steps`] — iterated stepping with a step bound,
//! * [`whnf`] — weak-head normalization (what the equivalence checker and
//!   type checker need),
//! * [`normalize`] — full normalization to β/δ/ζ/π-normal form,
//! * [`eval`] — evaluation of closed programs to values (Theorem 4.8 / 5.7
//!   use this to observe results).

use crate::ast::{RcTerm, Term};
use crate::env::Env;
use crate::subst::subst;
use cccc_util::fuel::Fuel;
use std::fmt;

/// Errors produced by the reduction engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceError {
    /// The fuel budget was exhausted before a normal form was reached.
    /// On well-typed terms this indicates the budget was too small; on
    /// ill-typed terms it may indicate divergence.
    OutOfFuel,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::OutOfFuel => write!(f, "reduction fuel exhausted"),
        }
    }
}

impl std::error::Error for ReduceError {}

/// Performs one reduction step in leftmost-outermost order, or returns
/// `None` if the term is in normal form with respect to `env`.
pub fn step(env: &Env, term: &Term) -> Option<Term> {
    step_rc(env, term).map(|rc| (*rc).clone())
}

/// [`step`] returning a shared [`RcTerm`]: a δ-unfold returns the
/// environment's own `Rc` instead of copying the definition, and iterated
/// callers ([`reduce_steps`]) avoid re-cloning the current term each step.
pub fn step_rc(env: &Env, term: &Term) -> Option<RcTerm> {
    match term {
        // ⊲δ: unfold a variable that has a definition in Γ. The Rc is
        // shared with the environment entry — no copy per unfold.
        Term::Var(x) => env.lookup_definition(*x).cloned(),
        Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => None,
        // ⊲ζ: let x = e : A in e1  ⊲  e1[e/x]
        Term::Let { binder, bound, body, .. } => Some(subst(body, *binder, bound).rc()),
        Term::App { func, arg } => {
            if let Term::Lam { binder, body, .. } = &**func {
                // ⊲β
                return Some(subst(body, *binder, arg).rc());
            }
            if let Some(stepped) = step_rc(env, func) {
                return Some(Term::App { func: stepped, arg: arg.clone() }.rc());
            }
            step_rc(env, arg).map(|stepped| Term::App { func: func.clone(), arg: stepped }.rc())
        }
        Term::Fst(e) => {
            if let Term::Pair { first, .. } = &**e {
                // ⊲π1 — shares the component.
                return Some(first.clone());
            }
            step_rc(env, e).map(|stepped| Term::Fst(stepped).rc())
        }
        Term::Snd(e) => {
            if let Term::Pair { second, .. } = &**e {
                // ⊲π2
                return Some(second.clone());
            }
            step_rc(env, e).map(|stepped| Term::Snd(stepped).rc())
        }
        Term::If { scrutinee, then_branch, else_branch } => {
            if let Term::BoolLit(b) = &**scrutinee {
                return Some(if *b { then_branch.clone() } else { else_branch.clone() });
            }
            if let Some(s) = step_rc(env, scrutinee) {
                return Some(
                    Term::If {
                        scrutinee: s,
                        then_branch: then_branch.clone(),
                        else_branch: else_branch.clone(),
                    }
                    .rc(),
                );
            }
            if let Some(t) = step_rc(env, then_branch) {
                return Some(
                    Term::If {
                        scrutinee: scrutinee.clone(),
                        then_branch: t,
                        else_branch: else_branch.clone(),
                    }
                    .rc(),
                );
            }
            step_rc(env, else_branch).map(|e| {
                Term::If {
                    scrutinee: scrutinee.clone(),
                    then_branch: then_branch.clone(),
                    else_branch: e,
                }
                .rc()
            })
        }
        Term::Lam { binder, domain, body } => {
            if let Some(d) = step_rc(env, domain) {
                return Some(Term::Lam { binder: *binder, domain: d, body: body.clone() }.rc());
            }
            step_rc(env, body)
                .map(|b| Term::Lam { binder: *binder, domain: domain.clone(), body: b }.rc())
        }
        Term::Pi { binder, domain, codomain } => {
            if let Some(d) = step_rc(env, domain) {
                return Some(
                    Term::Pi { binder: *binder, domain: d, codomain: codomain.clone() }.rc(),
                );
            }
            step_rc(env, codomain)
                .map(|c| Term::Pi { binder: *binder, domain: domain.clone(), codomain: c }.rc())
        }
        Term::Sigma { binder, first, second } => {
            if let Some(a) = step_rc(env, first) {
                return Some(
                    Term::Sigma { binder: *binder, first: a, second: second.clone() }.rc(),
                );
            }
            step_rc(env, second)
                .map(|b| Term::Sigma { binder: *binder, first: first.clone(), second: b }.rc())
        }
        Term::Pair { first, second, annotation } => {
            if let Some(a) = step_rc(env, first) {
                return Some(
                    Term::Pair { first: a, second: second.clone(), annotation: annotation.clone() }
                        .rc(),
                );
            }
            if let Some(b) = step_rc(env, second) {
                return Some(
                    Term::Pair { first: first.clone(), second: b, annotation: annotation.clone() }
                        .rc(),
                );
            }
            step_rc(env, annotation).map(|t| {
                Term::Pair { first: first.clone(), second: second.clone(), annotation: t }.rc()
            })
        }
    }
}

/// Repeatedly applies [`step_rc`] at most `max_steps` times; returns the
/// final term and the number of steps actually taken.
pub fn reduce_steps(env: &Env, term: &Term, max_steps: usize) -> (Term, usize) {
    let mut current: Option<RcTerm> = None;
    for taken in 0..max_steps {
        let view: &Term = current.as_deref().unwrap_or(term);
        match step_rc(env, view) {
            Some(next) => current = Some(next),
            None => {
                return (current.map_or_else(|| term.clone(), |rc| (*rc).clone()), taken);
            }
        }
    }
    (current.map_or_else(|| term.clone(), |rc| (*rc).clone()), max_steps)
}

/// Reduces `term` to weak-head normal form under `env`.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn whnf(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    // Canonical heads and definition-free variables are already weak-head
    // normal: return a (shallow, handle-sharing) clone without interning
    // the head or spending fuel. This is the dominant case on the
    // type-checking path, where inferred types are usually literal
    // `Π`/`Σ`/sorts.
    match term {
        Term::Sort(_)
        | Term::BoolTy
        | Term::BoolLit(_)
        | Term::Pi { .. }
        | Term::Lam { .. }
        | Term::Sigma { .. }
        | Term::Pair { .. } => return Ok(term.clone()),
        Term::Var(x) if env.lookup_definition(*x).is_none() => return Ok(term.clone()),
        _ => {}
    }
    // `current` holds a shared handle so that δ-unfolds and head
    // eliminations share subterms instead of copying them.
    let mut current: RcTerm = term.clone().rc();
    loop {
        if !fuel.tick() {
            return Err(ReduceError::OutOfFuel);
        }
        match &*current {
            Term::Var(x) => match env.lookup_definition(*x) {
                Some(def) => current = def.clone(),
                None => return Ok((*current).clone()),
            },
            Term::Let { binder, bound, body, .. } => {
                current = subst(body, *binder, bound).rc();
            }
            Term::App { func, arg } => {
                let func_whnf = whnf(env, func, fuel)?;
                match func_whnf {
                    Term::Lam { binder, body, .. } => {
                        current = subst(&body, binder, arg).rc();
                    }
                    other => {
                        return Ok(Term::App { func: other.rc(), arg: arg.clone() });
                    }
                }
            }
            Term::Fst(e) => {
                let inner = whnf(env, e, fuel)?;
                match inner {
                    Term::Pair { first, .. } => current = first,
                    other => return Ok(Term::Fst(other.rc())),
                }
            }
            Term::Snd(e) => {
                let inner = whnf(env, e, fuel)?;
                match inner {
                    Term::Pair { second, .. } => current = second,
                    other => return Ok(Term::Snd(other.rc())),
                }
            }
            Term::If { scrutinee, then_branch, else_branch } => {
                let s = whnf(env, scrutinee, fuel)?;
                match s {
                    Term::BoolLit(true) => current = then_branch.clone(),
                    Term::BoolLit(false) => current = else_branch.clone(),
                    other => {
                        return Ok(Term::If {
                            scrutinee: other.rc(),
                            then_branch: then_branch.clone(),
                            else_branch: else_branch.clone(),
                        })
                    }
                }
            }
            _ => return Ok((*current).clone()),
        }
    }
}

/// Fully normalizes `term` under `env`: weak-head normalizes, then recurses
/// into all remaining subterms (including under binders).
///
/// Subterms that [`whnf`] already left head-normal — the function of a
/// stuck application, the target of a stuck projection, the scrutinee of a
/// stuck `if` — are *not* re-weak-head-normalized on the way down. Without
/// this, normalizing a neutral spine `f a1 … an` re-ran `whnf` from each
/// spine prefix, making the legacy engine accidentally quadratic in spine
/// length.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn normalize(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let head = whnf(env, term, fuel)?;
    normalize_head(env, head, fuel)
}

/// Normalizes the subterms of a term already in weak-head normal form.
fn normalize_head(env: &Env, head: Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let norm = |e: &RcTerm, fuel: &mut Fuel| -> Result<RcTerm, ReduceError> {
        Ok(normalize(env, e, fuel)?.rc())
    };
    // Re-enters `normalize_head` (no `whnf`) on positions the enclosing
    // `whnf` already head-normalized.
    let norm_whnf = |e: &RcTerm, fuel: &mut Fuel| -> Result<RcTerm, ReduceError> {
        Ok(normalize_head(env, (**e).clone(), fuel)?.rc())
    };
    Ok(match head {
        Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => head,
        Term::Pi { binder, domain, codomain } => {
            Term::Pi { binder, domain: norm(&domain, fuel)?, codomain: norm(&codomain, fuel)? }
        }
        Term::Lam { binder, domain, body } => {
            Term::Lam { binder, domain: norm(&domain, fuel)?, body: norm(&body, fuel)? }
        }
        Term::App { func, arg } => {
            Term::App { func: norm_whnf(&func, fuel)?, arg: norm(&arg, fuel)? }
        }
        Term::Let { .. } => unreachable!("whnf eliminates let"),
        Term::Sigma { binder, first, second } => {
            Term::Sigma { binder, first: norm(&first, fuel)?, second: norm(&second, fuel)? }
        }
        Term::Pair { first, second, annotation } => Term::Pair {
            first: norm(&first, fuel)?,
            second: norm(&second, fuel)?,
            annotation: norm(&annotation, fuel)?,
        },
        Term::Fst(e) => Term::Fst(norm_whnf(&e, fuel)?),
        Term::Snd(e) => Term::Snd(norm_whnf(&e, fuel)?),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: norm_whnf(&scrutinee, fuel)?,
            then_branch: norm(&then_branch, fuel)?,
            else_branch: norm(&else_branch, fuel)?,
        },
    })
}

/// Normalizes with the default fuel budget.
///
/// # Panics
///
/// Panics if the default budget is exhausted; intended for tests and
/// examples operating on well-typed terms.
pub fn normalize_default(env: &Env, term: &Term) -> Term {
    let mut fuel = Fuel::default();
    normalize(env, term, &mut fuel).expect("normalization exhausted default fuel")
}

/// Evaluates a closed program to a value (Theorem 4.8's `e ⊲* v`).
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn eval(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    normalize(env, term, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::subst::alpha_eq;
    use cccc_util::symbol::Symbol;

    fn nf(t: &Term) -> Term {
        normalize_default(&Env::new(), t)
    }

    #[test]
    fn beta_reduction() {
        let t = app(lam("x", bool_ty(), var("x")), tt());
        assert!(alpha_eq(&nf(&t), &tt()));
    }

    #[test]
    fn zeta_reduction() {
        let t = let_("x", bool_ty(), tt(), ite(var("x"), ff(), tt()));
        assert!(alpha_eq(&nf(&t), &ff()));
    }

    #[test]
    fn delta_reduction_uses_environment() {
        let env = Env::new().with_definition(Symbol::intern("b"), tt(), bool_ty());
        let mut fuel = Fuel::default();
        let result = normalize(&env, &var("b"), &mut fuel).unwrap();
        assert!(alpha_eq(&result, &tt()));
    }

    #[test]
    fn projections_reduce() {
        let p = pair(tt(), ff(), sigma("x", bool_ty(), bool_ty()));
        assert!(alpha_eq(&nf(&fst(p.clone())), &tt()));
        assert!(alpha_eq(&nf(&snd(p)), &ff()));
    }

    #[test]
    fn if_reduces_on_literals() {
        assert!(alpha_eq(&nf(&ite(tt(), ff(), tt())), &ff()));
        assert!(alpha_eq(&nf(&ite(ff(), ff(), tt())), &tt()));
    }

    #[test]
    fn nested_beta_normalizes_under_binders() {
        // λ y : Bool. (λ x : Bool. x) y  normalizes to  λ y : Bool. y
        let t = lam("y", bool_ty(), app(lam("x", bool_ty(), var("x")), var("y")));
        assert!(alpha_eq(&nf(&t), &lam("y", bool_ty(), var("y"))));
    }

    #[test]
    fn whnf_stops_at_head() {
        // whnf of  λ y. (λ x. x) true  is the lambda itself (body untouched).
        let body = app(lam("x", bool_ty(), var("x")), tt());
        let t = lam("y", bool_ty(), body.clone());
        let mut fuel = Fuel::default();
        let w = whnf(&Env::new(), &t, &mut fuel).unwrap();
        match w {
            Term::Lam { body: b, .. } => assert!(alpha_eq(&b, &body)),
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn step_counts_single_steps() {
        // (λ x. x) ((λ y. y) true) needs two β steps and nothing more.
        let t = app(lam("x", bool_ty(), var("x")), app(lam("y", bool_ty(), var("y")), tt()));
        let (v, steps) = reduce_steps(&Env::new(), &t, 100);
        assert!(alpha_eq(&v, &tt()));
        assert_eq!(steps, 2);
    }

    #[test]
    fn step_on_normal_form_is_none() {
        assert!(step(&Env::new(), &tt()).is_none());
        assert!(step(&Env::new(), &lam("x", bool_ty(), var("x"))).is_none());
        assert!(step(&Env::new(), &var("free")).is_none());
    }

    #[test]
    fn out_of_fuel_is_reported() {
        // Ω = (λ x : Bool. x x) (λ x : Bool. x x) — ill-typed but a good
        // divergence witness for the fuel mechanism.
        let omega_half = lam("x", bool_ty(), app(var("x"), var("x")));
        let omega = app(omega_half.clone(), omega_half);
        let mut fuel = Fuel::new(1000);
        assert!(matches!(normalize(&Env::new(), &omega, &mut fuel), Err(ReduceError::OutOfFuel)));
    }

    #[test]
    fn values_evaluate_to_themselves() {
        let v = pair(tt(), ff(), sigma("x", bool_ty(), bool_ty()));
        assert!(alpha_eq(&nf(&v), &v));
    }

    #[test]
    fn eval_polymorphic_identity_applied() {
        // (λ A : ⋆. λ x : A. x) Bool true  ⊲*  true
        let id = lam("A", star(), lam("x", var("A"), var("x")));
        let t = app(app(id, bool_ty()), tt());
        assert!(alpha_eq(&nf(&t), &tt()));
    }

    #[test]
    fn reduce_error_displays() {
        assert_eq!(ReduceError::OutOfFuel.to_string(), "reduction fuel exhausted");
    }
}
