//! A side-table from interned term nodes to source spans.
//!
//! Hash-consed terms cannot carry spans in the nodes themselves — a span
//! field would break structural sharing (the two occurrences of `x` in
//! `\(x : Bool). f x x` are the *same* node). Instead the parser records
//! spans out-of-band, keyed by [`NodeId`]: interning is idempotent and O(1),
//! so looking up a term's span costs one intern plus one hash probe, and the
//! kernel is entirely unaware of the table.
//!
//! Consequences of keying by identity, documented rather than hidden:
//!
//! - spans are **best-effort**: a node shared between several source
//!   positions keeps the span recorded *first* (the parser records
//!   bottom-up, left-to-right, so that is the leftmost occurrence);
//! - terms built programmatically (builders, substitution, the wire codec)
//!   have no span — [`span_of`] returns `None` and diagnostics degrade to
//!   span-free messages;
//! - the table is thread-local, like the interner it shadows.
//!
//! The table is cleared at the start of every top-level parse, so it holds
//! spans for the most recently parsed program only and cannot grow without
//! bound across a long-lived session.

use crate::ast::{RcTerm, Term};
use cccc_util::intern::{FxHashMap, NodeId};
use cccc_util::span::Span;
use std::cell::RefCell;

thread_local! {
    // The entry keeps the node alive: the interner holds only weak
    // references, so without the strong `RcTerm` here a recorded node could
    // be collected and re-interned under a fresh `NodeId`, orphaning its
    // span.
    static SPANS: RefCell<FxHashMap<NodeId, (Span, RcTerm)>> =
        RefCell::new(FxHashMap::default());
}

/// Clears the table. Called by the parser at the start of each top-level
/// parse so spans always describe the most recently parsed program.
pub fn reset() {
    SPANS.with(|table| table.borrow_mut().clear());
}

/// Records `span` for `term`, keeping an existing entry if one is present
/// (first-write-wins: the parser records the leftmost occurrence).
pub fn record(term: &Term, span: Span) {
    if span.is_dummy() {
        return;
    }
    let node = term.clone().rc();
    let id = node.id();
    SPANS.with(|table| {
        table.borrow_mut().entry(id).or_insert((span, node));
    });
}

/// Looks up the recorded span for `term`, if the parser saw it.
pub fn span_of(term: &Term) -> Option<Span> {
    let id = term.clone().rc().id();
    SPANS.with(|table| table.borrow().get(&id).map(|(span, _)| *span))
}

/// Number of recorded spans (diagnostic aid for tests).
pub fn len() -> usize {
    SPANS.with(|table| table.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn record_and_lookup_round_trip() {
        reset();
        let t = app(var("f"), var("x"));
        record(&t, Span::new(0, 3));
        assert_eq!(span_of(&t), Some(Span::new(0, 3)));
        assert_eq!(span_of(&var("f")), None);
    }

    #[test]
    fn first_write_wins() {
        reset();
        let t = var("shared$span$probe");
        record(&t, Span::new(1, 2));
        record(&t, Span::new(5, 9));
        assert_eq!(span_of(&t), Some(Span::new(1, 2)));
    }

    #[test]
    fn dummy_spans_are_not_recorded() {
        reset();
        let t = var("dummy$span$probe");
        record(&t, Span::DUMMY);
        assert_eq!(span_of(&t), None);
        assert_eq!(len(), 0);
    }

    #[test]
    fn reset_empties_the_table() {
        reset();
        record(&var("reset$probe"), Span::new(0, 1));
        assert!(len() > 0);
        reset();
        assert_eq!(len(), 0);
    }
}
