//! Pretty-printing of CC terms.
//!
//! The printer produces a concrete syntax accepted by the parser in
//! [`crate::parse`], so printing and re-parsing a term yields an α-equivalent
//! term (round-tripping is tested in the parser module).

use crate::ast::{Term, Universe};
use crate::env::{Decl, Env};
use cccc_util::pretty::Doc;

/// Precedence levels used to decide where parentheses are required.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    /// Binders and `if`: lowest precedence.
    Binder,
    /// Application.
    App,
    /// Atoms: variables, sorts, parenthesized terms.
    Atom,
}

/// Renders a term to a string at 80 columns.
pub fn term_to_string(term: &Term) -> String {
    term_to_doc(term).render(80)
}

/// Renders a term to a string at the given width.
pub fn term_to_string_width(term: &Term, width: usize) -> String {
    term_to_doc(term).render(width)
}

/// Builds a pretty-printing document for a term.
pub fn term_to_doc(term: &Term) -> Doc {
    doc_at(term, Prec::Binder)
}

/// Renders an environment, e.g. for error messages.
pub fn env_to_string(env: &Env) -> String {
    if env.is_empty() {
        return "·".to_owned();
    }
    let entries: Vec<Doc> = env
        .iter()
        .map(|d| match d {
            Decl::Assumption { name, ty } => {
                Doc::text(format!("{} : {}", name, term_to_string(ty)))
            }
            Decl::Definition { name, ty, term } => {
                Doc::text(format!("{} = {} : {}", name, term_to_string(term), term_to_string(ty)))
            }
        })
        .collect();
    Doc::join(entries, Doc::text(", ")).render(100)
}

fn doc_at(term: &Term, prec: Prec) -> Doc {
    match term {
        Term::Var(x) => Doc::text(x.as_str()),
        Term::Sort(Universe::Star) => Doc::text("*"),
        Term::Sort(Universe::Box) => Doc::text("BOX"),
        Term::BoolTy => Doc::text("Bool"),
        Term::BoolLit(true) => Doc::text("true"),
        Term::BoolLit(false) => Doc::text("false"),
        Term::Pi { binder, domain, codomain } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("Pi ({} : ", binder)),
                doc_at(domain, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(codomain, Prec::Binder)])),
            ])),
        ),
        Term::Sigma { binder, first, second } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("Sigma ({} : ", binder)),
                doc_at(first, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(second, Prec::Binder)])),
            ])),
        ),
        Term::Lam { binder, domain, body } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("\\({} : ", binder)),
                doc_at(domain, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(body, Prec::Binder)])),
            ])),
        ),
        Term::Let { binder, annotation, bound, body } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("let {} = ", binder)),
                doc_at(bound, Prec::Binder),
                Doc::text(" : "),
                doc_at(annotation, Prec::Binder),
                Doc::text(" in"),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(body, Prec::Binder)])),
            ])),
        ),
        Term::App { func, arg } => parens_if(
            prec > Prec::App,
            Doc::group(Doc::concat(vec![
                doc_at(func, Prec::App),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(arg, Prec::Atom)])),
            ])),
        ),
        Term::Pair { first, second, annotation } => Doc::group(Doc::concat(vec![
            Doc::text("<"),
            doc_at(first, Prec::Binder),
            Doc::text(", "),
            doc_at(second, Prec::Binder),
            Doc::text("> as "),
            doc_at(annotation, Prec::Atom),
        ])),
        Term::Fst(e) => {
            parens_if(prec > Prec::App, Doc::concat(vec![Doc::text("fst "), doc_at(e, Prec::Atom)]))
        }
        Term::Snd(e) => {
            parens_if(prec > Prec::App, Doc::concat(vec![Doc::text("snd "), doc_at(e, Prec::Atom)]))
        }
        Term::If { scrutinee, then_branch, else_branch } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text("if "),
                doc_at(scrutinee, Prec::Binder),
                Doc::text(" then "),
                doc_at(then_branch, Prec::Binder),
                Doc::text(" else "),
                doc_at(else_branch, Prec::Binder),
            ])),
        ),
    }
}

fn parens_if(condition: bool, doc: Doc) -> Doc {
    if condition {
        Doc::concat(vec![Doc::text("("), doc, Doc::text(")")])
    } else {
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use cccc_util::symbol::Symbol;

    #[test]
    fn atoms_print_bare() {
        assert_eq!(term_to_string(&var("x")), "x");
        assert_eq!(term_to_string(&star()), "*");
        assert_eq!(term_to_string(&bool_ty()), "Bool");
        assert_eq!(term_to_string(&tt()), "true");
        assert_eq!(term_to_string(&ff()), "false");
    }

    #[test]
    fn lambda_prints_with_annotation() {
        let t = lam("x", bool_ty(), var("x"));
        assert_eq!(term_to_string(&t), "\\(x : Bool). x");
    }

    #[test]
    fn application_groups_left() {
        let t = app(app(var("f"), var("a")), var("b"));
        assert_eq!(term_to_string(&t), "f a b");
    }

    #[test]
    fn application_argument_parenthesized() {
        let t = app(var("f"), app(var("g"), var("a")));
        assert_eq!(term_to_string(&t), "f (g a)");
    }

    #[test]
    fn pi_and_sigma_print_binders() {
        assert_eq!(term_to_string(&pi("A", star(), var("A"))), "Pi (A : *). A");
        assert_eq!(term_to_string(&sigma("x", bool_ty(), bool_ty())), "Sigma (x : Bool). Bool");
    }

    #[test]
    fn let_and_if_print() {
        let t = let_("x", bool_ty(), tt(), ite(var("x"), ff(), tt()));
        assert_eq!(term_to_string(&t), "let x = true : Bool in if x then false else true");
    }

    #[test]
    fn pair_and_projections_print() {
        let p = pair(tt(), ff(), sigma("x", bool_ty(), bool_ty()));
        assert_eq!(term_to_string(&p), "<true, false> as (Sigma (x : Bool). Bool)");
        assert_eq!(term_to_string(&fst(var("p"))), "fst p");
        assert_eq!(term_to_string(&snd(var("p"))), "snd p");
    }

    #[test]
    fn narrow_width_breaks_lines() {
        let t = lam("argument", bool_ty(), app(var("function"), var("argument")));
        let s = term_to_string_width(&t, 10);
        assert!(s.contains('\n'));
    }

    #[test]
    fn env_rendering() {
        use crate::env::Env;
        assert_eq!(env_to_string(&Env::new()), "·");
        let env = Env::new().with_assumption(Symbol::intern("A"), star());
        assert_eq!(env_to_string(&env), "A : *");
    }

    #[test]
    fn display_impl_matches_pretty() {
        let t = lam("x", bool_ty(), var("x"));
        assert_eq!(format!("{t}"), term_to_string(&t));
    }
}
