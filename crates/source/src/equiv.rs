//! Definitional equivalence `Γ ⊢ e ≡ e'` for CC (Figure 2).
//!
//! Equivalence is reduction in `⊲*` up to η-equivalence for functions, as in
//! Coq. Two interchangeable deciders implement it:
//!
//! * [`equiv`] (the default, used by the type checker and everything built
//!   on it) runs the **NbE engine** of [`crate::nbe`]: both sides are
//!   evaluated into the semantic domain and compared with
//!   [`crate::nbe::conv`], which crosses binders at shared de Bruijn levels
//!   and implements the η rules without substitution;
//! * [`equiv_spec`] is the **paper-faithful specification**: both sides
//!   are reduced to weak-head normal form with the step-based engine and
//!   compared structurally, recursing under binders with a shared fresh
//!   variable; when exactly one side weak-head normalizes to a
//!   λ-abstraction, the η rules `[≡-η1]`/`[≡-η2]` compare its body against
//!   the other side applied to the bound variable.
//!
//! The property suites check that the two agree on generator-produced
//! well-typed terms; [`equiv_spec`] also serves as the differential-testing
//! oracle for the NbE engine.

use crate::ast::{RcTerm, Term};
use crate::builder::var_sym;
use crate::env::Env;
use crate::reduce::{whnf, ReduceError};
use crate::subst::subst;
use cccc_util::fuel::Fuel;
use cccc_util::intern::ConvCache;
use cccc_util::symbol::Symbol;
use std::cell::RefCell;

pub use cccc_util::intern::ConvCacheStats;

/// Which equivalence/normalization engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// The normalization-by-evaluation engine ([`crate::nbe`]); the
    /// default on every hot path.
    #[default]
    Nbe,
    /// The substitution-based step engine ([`crate::reduce`]); the
    /// paper-faithful specification and differential-testing oracle.
    Step,
}

thread_local! {
    /// Decided conversion pairs for CC, keyed by ordered node ids and the
    /// environment fingerprint (collapsed for closed pairs) — see
    /// [`ConvCache`].
    static CONV_CACHE: RefCell<ConvCache> = RefCell::new(ConvCache::new());
}

/// A snapshot of this thread's conversion-cache counters.
pub fn conv_cache_stats() -> ConvCacheStats {
    CONV_CACHE.with(|c| c.borrow().stats())
}

/// Clears this thread's conversion memo table and counters.
pub fn reset_conv_cache() {
    CONV_CACHE.with(|c| c.borrow_mut().reset());
}

/// Number of decided pairs currently in this thread's conversion memo.
pub fn conv_cache_len() -> usize {
    CONV_CACHE.with(|c| c.borrow().len())
}

/// Checks `Γ ⊢ e1 ≡ e2` with an explicit fuel budget, through the NbE
/// engine with identity and memo fast paths.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when normalization runs out of fuel
/// before the comparison can be decided.
pub fn equiv(env: &Env, e1: &Term, e2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    // Interning the heads is O(1) (children are already interned) and
    // buys node identities for the fast paths below.
    let n1 = e1.clone().rc();
    let n2 = e2.clone().rc();
    equiv_nodes(env, &n1, &n2, fuel)
}

/// [`equiv`] on interned handles.
///
/// Decision ladder: node identity (O(1), hash-consing makes structurally
/// identical terms the *same* node) → memo table of previously decided
/// `(id, id, env)` pairs → α-equivalence (linear, with its own identity
/// shortcuts) → the NbE engine. Decided answers are memoized; fuel
/// exhaustion is not (it depends on the budget, not the judgment).
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when normalization runs out of fuel
/// before the comparison can be decided.
pub fn equiv_nodes(
    env: &Env,
    n1: &RcTerm,
    n2: &RcTerm,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    if n1.same(n2) {
        CONV_CACHE.with(|c| c.borrow_mut().note_identity_hit());
        return Ok(true);
    }
    let key = ConvCache::key(n1, n2, env.fingerprint());
    if let Some(answer) = CONV_CACHE.with(|c| c.borrow_mut().lookup(key)) {
        return Ok(answer);
    }
    // α-equivalent terms are definitionally equal outright; the type
    // checker overwhelmingly compares a type against a near-identical
    // copy of itself, so this pre-check pays for itself many times over
    // before the engine ever evaluates anything.
    let answer = if crate::subst::alpha_eq(n1, n2) {
        true
    } else {
        crate::nbe::conv_terms(env, n1, n2, fuel)?
    };
    CONV_CACHE.with(|c| c.borrow_mut().insert(key, answer));
    Ok(answer)
}

/// Checks `Γ ⊢ e1 ≡ e2` with the step-based engine — the executable
/// specification [`equiv`] is differentially tested against.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when normalization runs out of fuel
/// before the comparison can be decided.
pub fn equiv_spec(env: &Env, e1: &Term, e2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    let n1 = whnf(env, e1, fuel)?;
    let n2 = whnf(env, e2, fuel)?;
    compare_whnf(env, &n1, &n2, fuel)
}

/// Checks `Γ ⊢ e1 ≡ e2` through the chosen engine.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when normalization runs out of fuel
/// before the comparison can be decided.
pub fn equiv_with_engine(
    env: &Env,
    e1: &Term,
    e2: &Term,
    fuel: &mut Fuel,
    engine: Engine,
) -> Result<bool, ReduceError> {
    match engine {
        Engine::Nbe => equiv(env, e1, e2, fuel),
        Engine::Step => equiv_spec(env, e1, e2, fuel),
    }
}

/// Checks `Γ ⊢ e1 ≡ e2` with the default fuel budget, treating fuel
/// exhaustion as "not equivalent".
pub fn definitionally_equal(env: &Env, e1: &Term, e2: &Term) -> bool {
    let mut fuel = Fuel::default();
    equiv(env, e1, e2, &mut fuel).unwrap_or(false)
}

/// [`definitionally_equal`] through the step-based specification.
pub fn definitionally_equal_spec(env: &Env, e1: &Term, e2: &Term) -> bool {
    let mut fuel = Fuel::default();
    equiv_spec(env, e1, e2, &mut fuel).unwrap_or(false)
}

fn compare_whnf(env: &Env, n1: &Term, n2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    match (n1, n2) {
        // η for functions: [≡-η1] / [≡-η2].
        (Term::Lam { binder, domain: _, body }, other) if !matches!(other, Term::Lam { .. }) => {
            eta_expand_compare(env, *binder, body, other, fuel)
        }
        (other, Term::Lam { binder, domain: _, body }) if !matches!(other, Term::Lam { .. }) => {
            eta_expand_compare(env, *binder, body, other, fuel)
        }
        (
            Term::Lam { binder: x, domain: a1, body: b1 },
            Term::Lam { binder: y, domain: a2, body: b2 },
        ) => {
            if !equiv_spec(env, a1, a2, fuel)? {
                return Ok(false);
            }
            compare_under_binder(env, *x, b1, *y, b2, fuel)
        }
        (
            Term::Pi { binder: x, domain: a1, codomain: b1 },
            Term::Pi { binder: y, domain: a2, codomain: b2 },
        )
        | (
            Term::Sigma { binder: x, first: a1, second: b1 },
            Term::Sigma { binder: y, first: a2, second: b2 },
        ) => {
            // Pi-with-Pi matches only the first pattern and Sigma-with-Sigma
            // only the second, so mixing Π and Σ is impossible here.
            if std::mem::discriminant(n1) != std::mem::discriminant(n2) {
                return Ok(false);
            }
            if !equiv_spec(env, a1, a2, fuel)? {
                return Ok(false);
            }
            compare_under_binder(env, *x, b1, *y, b2, fuel)
        }
        (Term::Var(x), Term::Var(y)) => Ok(x == y),
        (Term::Sort(u), Term::Sort(v)) => Ok(u == v),
        (Term::BoolTy, Term::BoolTy) => Ok(true),
        (Term::BoolLit(a), Term::BoolLit(b)) => Ok(a == b),
        (Term::App { func: f1, arg: a1 }, Term::App { func: f2, arg: a2 }) => {
            Ok(compare_whnf(env, f1, f2, fuel)? && equiv_spec(env, a1, a2, fuel)?)
        }
        // Pairs are compared componentwise; the annotation is a typing
        // artifact and does not affect the value.
        (Term::Pair { first: a1, second: b1, .. }, Term::Pair { first: a2, second: b2, .. }) => {
            Ok(equiv_spec(env, a1, a2, fuel)? && equiv_spec(env, b1, b2, fuel)?)
        }
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => equiv_spec(env, a, b, fuel),
        (
            Term::If { scrutinee: s1, then_branch: t1, else_branch: e1 },
            Term::If { scrutinee: s2, then_branch: t2, else_branch: e2 },
        ) => Ok(equiv_spec(env, s1, s2, fuel)?
            && equiv_spec(env, t1, t2, fuel)?
            && equiv_spec(env, e1, e2, fuel)?),
        _ => Ok(false),
    }
}

/// Compares `body` (the body of a λ with binder `binder`) against
/// `other x` for a fresh `x`, implementing the η rules.
fn eta_expand_compare(
    env: &Env,
    binder: Symbol,
    body: &Term,
    other: &Term,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    let fresh = binder.freshen();
    let body = subst(body, binder, &var_sym(fresh));
    let applied = Term::App { func: other.clone().rc(), arg: var_sym(fresh).rc() };
    equiv_spec(env, &body, &applied, fuel)
}

/// Compares two bodies under their respective binders by renaming both to a
/// shared fresh variable.
fn compare_under_binder(
    env: &Env,
    x: Symbol,
    left: &Term,
    y: Symbol,
    right: &Term,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    let fresh = x.freshen();
    let left = subst(left, x, &var_sym(fresh));
    let right = subst(right, y, &var_sym(fresh));
    equiv_spec(env, &left, &right, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use cccc_util::symbol::Symbol;

    fn eq(a: &Term, b: &Term) -> bool {
        definitionally_equal(&Env::new(), a, b)
    }

    #[test]
    fn alpha_renamed_terms_are_equivalent() {
        assert!(eq(&lam("x", bool_ty(), var("x")), &lam("y", bool_ty(), var("y"))));
        assert!(eq(&pi("x", star(), var("x")), &pi("y", star(), var("y"))));
    }

    #[test]
    fn beta_redex_is_equivalent_to_its_reduct() {
        let redex = app(lam("x", bool_ty(), var("x")), tt());
        assert!(eq(&redex, &tt()));
    }

    #[test]
    fn distinct_literals_are_not_equivalent() {
        assert!(!eq(&tt(), &ff()));
        assert!(!eq(&bool_ty(), &star()));
    }

    #[test]
    fn eta_equivalence_for_functions() {
        // λ x : Bool. f x  ≡  f   (for a free variable f)
        let expanded = lam("x", bool_ty(), app(var("f"), var("x")));
        assert!(eq(&expanded, &var("f")));
        assert!(eq(&var("f"), &expanded));
    }

    #[test]
    fn eta_does_not_conflate_different_functions() {
        let expanded = lam("x", bool_ty(), app(var("f"), var("x")));
        assert!(!eq(&expanded, &var("g")));
    }

    #[test]
    fn delta_definitions_unfold_during_comparison() {
        let env = Env::new().with_definition(Symbol::intern("two"), tt(), bool_ty());
        assert!(definitionally_equal(&env, &var("two"), &tt()));
    }

    #[test]
    fn equivalence_inside_types() {
        // Σ x : Bool. (if true then Bool else ⋆)  ≡  Σ x : Bool. Bool
        let a = sigma("x", bool_ty(), ite(tt(), bool_ty(), star()));
        let b = sigma("x", bool_ty(), bool_ty());
        assert!(eq(&a, &b));
    }

    #[test]
    fn pairs_compare_componentwise() {
        let ann = sigma("x", bool_ty(), bool_ty());
        let a = pair(tt(), app(lam("x", bool_ty(), var("x")), ff()), ann.clone());
        let b = pair(tt(), ff(), ann);
        assert!(eq(&a, &b));
    }

    #[test]
    fn projections_of_neutral_terms_compare_structurally() {
        assert!(eq(&fst(var("p")), &fst(var("p"))));
        assert!(!eq(&fst(var("p")), &snd(var("p"))));
    }

    #[test]
    fn pi_and_sigma_are_not_confused() {
        assert!(!eq(&pi("x", bool_ty(), bool_ty()), &sigma("x", bool_ty(), bool_ty())));
    }

    #[test]
    fn nested_redexes_in_codomain() {
        let a = pi("x", bool_ty(), app(lam("y", star(), var("y")), bool_ty()));
        let b = pi("z", bool_ty(), bool_ty());
        assert!(eq(&a, &b));
    }

    #[test]
    fn lam_vs_lam_checks_domains() {
        let a = lam("x", bool_ty(), var("x"));
        let b = lam("x", star(), var("x"));
        assert!(!eq(&a, &b));
    }

    #[test]
    fn neutral_application_spines() {
        let a = app(app(var("f"), tt()), ff());
        let b = app(app(var("f"), tt()), ff());
        let c = app(app(var("f"), ff()), ff());
        assert!(eq(&a, &b));
        assert!(!eq(&a, &c));
    }

    #[test]
    fn out_of_fuel_means_not_equivalent() {
        let omega_half = lam("x", bool_ty(), app(var("x"), var("x")));
        let omega = app(omega_half.clone(), omega_half);
        // definitionally_equal must not hang or panic on divergent input.
        assert!(!definitionally_equal(&Env::new(), &omega, &tt()));
    }
}
