//! The CC type system (Figures 3 and 4).
//!
//! The checker is a direct implementation of the paper's rules: types are
//! inferred structurally, and the conversion rule `[Conv]` is applied
//! whenever a term is checked against an expected type, using the
//! definitional-equivalence algorithm of [`crate::equiv`].
//!
//! ## Σ-formation
//!
//! The paper gives two Σ-formation rules: `[Sig-*]` (small over small) and
//! `[Sig-□]` (large second component). We additionally accept
//! `A : □, B : ⋆ ⟹ Σ x:A.B : □`, the predicative rule of ECC. This is
//! required to type the environment telescopes produced by closure
//! conversion when a closure captures a *type* variable (the paper's own
//! example uses the environment type `⋆ × 1`, which needs exactly this
//! rule), and it is sound: it never makes a large Σ small. The restriction
//! the paper highlights — no impredicative strong Σ — is still enforced:
//! `Σ x:A.B : ⋆` requires both `A : ⋆` and `B : ⋆`.

use crate::ast::{Term, Universe};
use crate::env::{Decl, Env};
use crate::equiv::{equiv_with_engine, Engine};
use crate::pretty::term_to_string;
use crate::reduce::{whnf, ReduceError};
use crate::subst::subst;
use cccc_util::fuel::Fuel;
use cccc_util::symbol::Symbol;
use std::fmt;

/// Errors produced by the CC type checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// A variable was used that is not bound in the environment.
    UnboundVariable(Symbol),
    /// The universe `□` was used as a term; it has no type.
    BoxHasNoType,
    /// A term in function position does not have a Π type.
    NotAFunction {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// A term in projection position does not have a Σ type.
    NotAPair {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// A term expected to be a type does not live in a universe.
    NotAUniverse {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// The annotation on a dependent pair is not a Σ type.
    PairAnnotationNotSigma {
        /// The annotation, pretty-printed.
        annotation: String,
    },
    /// A Σ type would be impredicative (small Σ over a large domain), which
    /// is unsound for strong dependent pairs.
    ImpredicativeSigma {
        /// The offending Σ type, pretty-printed.
        sigma: String,
    },
    /// The inferred type of a term does not match the expected type.
    Mismatch {
        /// What the context required, pretty-printed.
        expected: String,
        /// What was inferred, pretty-printed.
        found: String,
        /// The term being checked, pretty-printed.
        term: String,
    },
    /// Normalization ran out of fuel while deciding equivalence.
    Reduction(ReduceError),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::BoxHasNoType => write!(f, "the universe □ has no type"),
            TypeError::NotAFunction { term, ty } => {
                write!(f, "`{term}` is applied but has non-function type `{ty}`")
            }
            TypeError::NotAPair { term, ty } => {
                write!(f, "`{term}` is projected but has non-pair type `{ty}`")
            }
            TypeError::NotAUniverse { term, ty } => {
                write!(f, "`{term}` is used as a type but has type `{ty}`, not a universe")
            }
            TypeError::PairAnnotationNotSigma { annotation } => {
                write!(f, "pair annotation `{annotation}` is not a Σ type")
            }
            TypeError::ImpredicativeSigma { sigma } => {
                write!(f, "impredicative strong Σ type `{sigma}` is not allowed")
            }
            TypeError::Mismatch { expected, found, term } => {
                write!(
                    f,
                    "type mismatch: `{term}` has type `{found}` but `{expected}` was expected"
                )
            }
            TypeError::Reduction(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<ReduceError> for TypeError {
    fn from(e: ReduceError) -> TypeError {
        TypeError::Reduction(e)
    }
}

/// Result type for the CC type checker.
pub type Result<T> = std::result::Result<T, TypeError>;

/// Infers the type of `term` under `env` (the judgment `Γ ⊢ e : A`).
///
/// # Errors
///
/// Returns a [`TypeError`] when the term is ill-typed.
pub fn infer(env: &Env, term: &Term) -> Result<Term> {
    infer_with_engine(env, term, Engine::Nbe)
}

/// [`infer`] through an explicitly chosen equivalence/normalization
/// engine. [`Engine::Step`] runs the substitution-based step engine — the
/// paper-faithful specification — and exists for differential testing and
/// head-to-head benchmarking against [`Engine::Nbe`].
///
/// # Errors
///
/// Returns a [`TypeError`] when the term is ill-typed.
pub fn infer_with_engine(env: &Env, term: &Term, engine: Engine) -> Result<Term> {
    let mut fuel = Fuel::default();
    infer_with(env, term, &mut fuel, engine)
}

/// Checks `term` against `expected` under `env`, applying the conversion
/// rule `[Conv]`.
///
/// # Errors
///
/// Returns a [`TypeError`] when the term is ill-typed or its type is not
/// definitionally equal to `expected`.
pub fn check(env: &Env, term: &Term, expected: &Term) -> Result<()> {
    let mut fuel = Fuel::default();
    check_with(env, term, expected, &mut fuel, Engine::Nbe)
}

/// Infers the universe in which the type `term` lives.
///
/// # Errors
///
/// Returns [`TypeError::NotAUniverse`] when `term` is not a type.
pub fn infer_universe(env: &Env, term: &Term) -> Result<Universe> {
    let mut fuel = Fuel::default();
    infer_universe_with(env, term, &mut fuel, Engine::Nbe)
}

/// Checks well-formedness of an environment (`⊢ Γ`, Figure 4).
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered while checking entries in
/// order.
pub fn check_env(env: &Env) -> Result<()> {
    let mut prefix = Env::new();
    for decl in env.iter() {
        match decl {
            Decl::Assumption { name, ty } => {
                infer_universe(&prefix, ty)?;
                prefix.push_assumption(*name, (**ty).clone());
            }
            Decl::Definition { name, ty, term } => {
                infer_universe(&prefix, ty)?;
                check(&prefix, term, ty)?;
                prefix.push_definition(*name, (**term).clone(), (**ty).clone());
            }
        }
    }
    Ok(())
}

/// Returns `true` when `term` is well-typed under `env`.
pub fn is_well_typed(env: &Env, term: &Term) -> bool {
    infer(env, term).is_ok()
}

/// Weak-head normalizes through the chosen engine: NbE read-back or the
/// step-based `whnf`.
fn head_normal(env: &Env, term: &Term, fuel: &mut Fuel, engine: Engine) -> Result<Term> {
    let result = match engine {
        Engine::Nbe => crate::nbe::whnf_nbe(env, term, fuel),
        Engine::Step => whnf(env, term, fuel),
    };
    result.map_err(TypeError::from)
}

pub(crate) fn infer_with(env: &Env, term: &Term, fuel: &mut Fuel, engine: Engine) -> Result<Term> {
    match term {
        // [Var]
        Term::Var(x) => match env.lookup_type(*x) {
            Some(ty) => Ok((**ty).clone()),
            None => Err(TypeError::UnboundVariable(*x)),
        },
        // [Ax-*]
        Term::Sort(Universe::Star) => Ok(Term::Sort(Universe::Box)),
        Term::Sort(Universe::Box) => Err(TypeError::BoxHasNoType),
        // Ground types (§5.2).
        Term::BoolTy => Ok(Term::Sort(Universe::Star)),
        Term::BoolLit(_) => Ok(Term::BoolTy),
        Term::If { scrutinee, then_branch, else_branch } => {
            check_with(env, scrutinee, &Term::BoolTy, fuel, engine)?;
            let then_ty = infer_with(env, then_branch, fuel, engine)?;
            check_with(env, else_branch, &then_ty, fuel, engine)?;
            Ok(then_ty)
        }
        // [Prod-*] and [Prod-□]
        Term::Pi { binder, domain, codomain } => {
            infer_universe_with(env, domain, fuel, engine)?;
            let inner = env.with_assumption(*binder, (**domain).clone());
            let codomain_universe = infer_universe_with(&inner, codomain, fuel, engine)?;
            Ok(Term::Sort(codomain_universe))
        }
        // [Sig-*], [Sig-□], and the predicative large rule (see module docs).
        Term::Sigma { binder, first, second } => {
            let first_universe = infer_universe_with(env, first, fuel, engine)?;
            let inner = env.with_assumption(*binder, (**first).clone());
            let second_universe = infer_universe_with(&inner, second, fuel, engine)?;
            match (first_universe, second_universe) {
                (Universe::Star, Universe::Star) => Ok(Term::Sort(Universe::Star)),
                (_, Universe::Box) => Ok(Term::Sort(Universe::Box)),
                (Universe::Box, Universe::Star) => Ok(Term::Sort(Universe::Box)),
            }
        }
        // [Lam]
        Term::Lam { binder, domain, body } => {
            infer_universe_with(env, domain, fuel, engine)?;
            let inner = env.with_assumption(*binder, (**domain).clone());
            let body_ty = infer_with(&inner, body, fuel, engine)?;
            // Ensure the resulting Π type is itself well-formed.
            infer_universe_with(&inner, &body_ty, fuel, engine)?;
            Ok(Term::Pi { binder: *binder, domain: domain.clone(), codomain: body_ty.rc() })
        }
        // [App]
        Term::App { func, arg } => {
            let func_ty = infer_with(env, func, fuel, engine)?;
            let func_ty_whnf = head_normal(env, &func_ty, fuel, engine)?;
            match func_ty_whnf {
                Term::Pi { binder, domain, codomain } => {
                    check_with(env, arg, &domain, fuel, engine)?;
                    Ok(subst(&codomain, binder, arg))
                }
                other => Err(TypeError::NotAFunction {
                    term: term_to_string(func),
                    ty: term_to_string(&other),
                }),
            }
        }
        // [Let]
        Term::Let { binder, annotation, bound, body } => {
            infer_universe_with(env, annotation, fuel, engine)?;
            check_with(env, bound, annotation, fuel, engine)?;
            let inner = env.with_definition(*binder, (**bound).clone(), (**annotation).clone());
            let body_ty = infer_with(&inner, body, fuel, engine)?;
            Ok(subst(&body_ty, *binder, bound))
        }
        // [Pair]
        Term::Pair { first, second, annotation } => {
            infer_universe_with(env, annotation, fuel, engine)?;
            let annotation_whnf = head_normal(env, annotation, fuel, engine)?;
            match annotation_whnf {
                Term::Sigma { binder, first: first_ty, second: second_ty } => {
                    check_with(env, first, &first_ty, fuel, engine)?;
                    let expected_second = subst(&second_ty, binder, first);
                    check_with(env, second, &expected_second, fuel, engine)?;
                    Ok((**annotation).clone())
                }
                _ => Err(TypeError::PairAnnotationNotSigma {
                    annotation: term_to_string(annotation),
                }),
            }
        }
        // [Fst]
        Term::Fst(e) => {
            let e_ty = infer_with(env, e, fuel, engine)?;
            let e_ty_whnf = head_normal(env, &e_ty, fuel, engine)?;
            match e_ty_whnf {
                Term::Sigma { first, .. } => Ok((*first).clone()),
                other => {
                    Err(TypeError::NotAPair { term: term_to_string(e), ty: term_to_string(&other) })
                }
            }
        }
        // [Snd]
        Term::Snd(e) => {
            let e_ty = infer_with(env, e, fuel, engine)?;
            let e_ty_whnf = head_normal(env, &e_ty, fuel, engine)?;
            match e_ty_whnf {
                Term::Sigma { binder, second, .. } => {
                    Ok(subst(&second, binder, &Term::Fst(e.clone())))
                }
                other => {
                    Err(TypeError::NotAPair { term: term_to_string(e), ty: term_to_string(&other) })
                }
            }
        }
    }
}

pub(crate) fn check_with(
    env: &Env,
    term: &Term,
    expected: &Term,
    fuel: &mut Fuel,
    engine: Engine,
) -> Result<()> {
    let inferred = infer_with(env, term, fuel, engine)?;
    if equiv_with_engine(env, &inferred, expected, fuel, engine)? {
        Ok(())
    } else {
        Err(TypeError::Mismatch {
            expected: term_to_string(expected),
            found: term_to_string(&inferred),
            term: term_to_string(term),
        })
    }
}

pub(crate) fn infer_universe_with(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
    engine: Engine,
) -> Result<Universe> {
    // `□` itself is a valid classifier (it is the type of `⋆` and of kinds)
    // even though it is not a term; treat it as living "above" everything.
    if matches!(term, Term::Sort(Universe::Box)) {
        return Ok(Universe::Box);
    }
    let ty = infer_with(env, term, fuel, engine)?;
    let ty_whnf = head_normal(env, &ty, fuel, engine)?;
    match ty_whnf {
        Term::Sort(u) => Ok(u),
        other => {
            Err(TypeError::NotAUniverse { term: term_to_string(term), ty: term_to_string(&other) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::equiv::definitionally_equal;
    use crate::subst::alpha_eq;

    fn infer_closed(t: &Term) -> Result<Term> {
        infer(&Env::new(), t)
    }

    #[test]
    fn star_has_type_box() {
        assert!(alpha_eq(&infer_closed(&star()).unwrap(), &boxu()));
    }

    #[test]
    fn box_has_no_type() {
        assert!(matches!(infer_closed(&boxu()), Err(TypeError::BoxHasNoType)));
    }

    #[test]
    fn bool_literals() {
        assert!(alpha_eq(&infer_closed(&bool_ty()).unwrap(), &star()));
        assert!(alpha_eq(&infer_closed(&tt()).unwrap(), &bool_ty()));
        assert!(alpha_eq(&infer_closed(&ff()).unwrap(), &bool_ty()));
    }

    #[test]
    fn unbound_variable_is_rejected() {
        assert!(matches!(infer_closed(&var("nope")), Err(TypeError::UnboundVariable(_))));
    }

    #[test]
    fn polymorphic_identity_types() {
        // λ A : ⋆. λ x : A. x  :  Π A : ⋆. Π x : A. A
        let id = lam("A", star(), lam("x", var("A"), var("x")));
        let ty = infer_closed(&id).unwrap();
        let expected = pi("A", star(), pi("x", var("A"), var("A")));
        assert!(definitionally_equal(&Env::new(), &ty, &expected));
    }

    #[test]
    fn impredicative_pi_is_allowed() {
        // Π A : ⋆. A  :  ⋆   (quantifies over all small types, itself small)
        let false_ty = pi("A", star(), var("A"));
        assert!(alpha_eq(&infer_closed(&false_ty).unwrap(), &star()));
    }

    #[test]
    fn pi_over_kinds_is_large() {
        // Π A : ⋆. ⋆  :  □
        let t = pi("A", star(), star());
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &boxu()));
    }

    #[test]
    fn application_substitutes_argument_into_codomain() {
        // (λ A : ⋆. λ x : A. x) Bool : Π x : Bool. Bool
        let id = lam("A", star(), lam("x", var("A"), var("x")));
        let t = app(id, bool_ty());
        let ty = infer_closed(&t).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &pi("x", bool_ty(), bool_ty())));
    }

    #[test]
    fn application_of_non_function_is_rejected() {
        let t = app(tt(), ff());
        assert!(matches!(infer_closed(&t), Err(TypeError::NotAFunction { .. })));
    }

    #[test]
    fn application_with_wrong_argument_type_is_rejected() {
        let not = lam("b", bool_ty(), ite(var("b"), ff(), tt()));
        let t = app(not, star());
        assert!(matches!(infer_closed(&t), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn let_types_with_definition_substituted() {
        // let x = true : Bool in x   :  Bool
        let t = let_("x", bool_ty(), tt(), var("x"));
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &bool_ty()));
    }

    #[test]
    fn let_definition_is_visible_in_types() {
        // let A = Bool : ⋆ in (λ x : A. x) true   :  A[Bool/A] = Bool
        let t = let_("A", star(), bool_ty(), app(lam("x", var("A"), var("x")), tt()));
        let ty = infer_closed(&t).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &bool_ty()));
    }

    #[test]
    fn small_sigma_over_small_types() {
        let t = sigma("x", bool_ty(), bool_ty());
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &star()));
    }

    #[test]
    fn large_sigma_over_kinds() {
        // Σ A : ⋆. ⋆ : □
        let t = sigma("A", star(), star());
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &boxu()));
    }

    #[test]
    fn sigma_with_large_first_and_small_second_is_large() {
        // Σ A : ⋆. Bool : □ — the ECC-style rule needed for closure environments.
        let t = sigma("A", star(), bool_ty());
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &boxu()));
    }

    #[test]
    fn dependent_sigma_types() {
        // Σ A : ⋆. A : □ (first component is a type, second a value of it)
        let t = sigma("A", star(), var("A"));
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &boxu()));
    }

    #[test]
    fn pair_checks_both_components() {
        let ann = sigma("x", bool_ty(), bool_ty());
        let good = pair(tt(), ff(), ann.clone());
        assert!(alpha_eq(&infer_closed(&good).unwrap(), &ann));
        let bad = pair(tt(), star(), ann);
        assert!(matches!(infer_closed(&bad), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn dependent_pair_second_component_type_uses_first() {
        // ⟨Bool, true⟩ as Σ A : ⋆. A
        let ann = sigma("A", star(), var("A"));
        let p = pair(bool_ty(), tt(), ann.clone());
        assert!(alpha_eq(&infer_closed(&p).unwrap(), &ann));
        // ⟨Bool, ⋆⟩ as Σ A : ⋆. A is wrong: ⋆ is not a Bool.
        let bad = pair(bool_ty(), star(), ann);
        assert!(infer_closed(&bad).is_err());
    }

    #[test]
    fn projections_type_correctly() {
        let ann = sigma("A", star(), var("A"));
        let p = pair(bool_ty(), tt(), ann);
        assert!(alpha_eq(&infer_closed(&fst(p.clone())).unwrap(), &star()));
        // snd p : A[fst p/A] = fst p ≡ Bool
        let snd_ty = infer_closed(&snd(p.clone())).unwrap();
        assert!(definitionally_equal(&Env::new(), &snd_ty, &bool_ty()));
    }

    #[test]
    fn projection_of_non_pair_is_rejected() {
        assert!(matches!(infer_closed(&fst(tt())), Err(TypeError::NotAPair { .. })));
        assert!(matches!(infer_closed(&snd(tt())), Err(TypeError::NotAPair { .. })));
    }

    #[test]
    fn pair_annotation_must_be_sigma() {
        let p = pair(tt(), ff(), bool_ty());
        assert!(matches!(infer_closed(&p), Err(TypeError::PairAnnotationNotSigma { .. })));
    }

    #[test]
    fn if_requires_bool_scrutinee_and_agreeing_branches() {
        assert!(alpha_eq(&infer_closed(&ite(tt(), ff(), tt())).unwrap(), &bool_ty()));
        assert!(infer_closed(&ite(star(), ff(), tt())).is_err());
        assert!(infer_closed(&ite(tt(), ff(), bool_ty())).is_err());
    }

    #[test]
    fn conversion_rule_reduces_types() {
        // (λ x : (if true then Bool else (Π A:⋆. A)). x) true   is well-typed
        // because the domain reduces to Bool.
        let t = app(lam("x", ite(tt(), bool_ty(), pi("A", star(), var("A"))), var("x")), tt());
        let ty = infer_closed(&t).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &bool_ty()));
    }

    #[test]
    fn check_env_accepts_dependent_telescope() {
        use cccc_util::symbol::Symbol;
        let env = Env::new()
            .with_assumption(Symbol::intern("A"), star())
            .with_assumption(Symbol::intern("x"), var("A"))
            .with_definition(Symbol::intern("b"), tt(), bool_ty());
        assert!(check_env(&env).is_ok());
    }

    #[test]
    fn check_env_rejects_bad_definitions() {
        use cccc_util::symbol::Symbol;
        let env = Env::new().with_definition(Symbol::intern("b"), star(), bool_ty());
        assert!(check_env(&env).is_err());
    }

    #[test]
    fn check_env_rejects_out_of_scope_dependencies() {
        use cccc_util::symbol::Symbol;
        let env = Env::new()
            .with_assumption(Symbol::intern("x"), var("A"))
            .with_assumption(Symbol::intern("A"), star());
        assert!(check_env(&env).is_err());
    }

    #[test]
    fn is_well_typed_helper() {
        assert!(is_well_typed(&Env::new(), &tt()));
        assert!(!is_well_typed(&Env::new(), &var("ghost")));
    }

    #[test]
    fn error_display_is_informative() {
        let err = infer_closed(&app(tt(), ff())).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("true"));
        assert!(msg.contains("Bool"));
    }

    #[test]
    fn impredicative_instantiation_of_polymorphic_identity() {
        // id (Π A : ⋆. Π x : A. A) id — the classic impredicativity test.
        let id = lam("A", star(), lam("x", var("A"), var("x")));
        let id_ty = pi("A", star(), pi("x", var("A"), var("A")));
        let t = app(app(id.clone(), id_ty.clone()), id);
        let ty = infer_closed(&t).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &id_ty));
    }
}
