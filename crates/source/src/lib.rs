//! The source language **CC**: the Calculus of Constructions with strong
//! dependent pairs (Σ types), dependent let, ground booleans, and
//! η-equivalence for functions — the source of the typed closure-conversion
//! translation of Bowman & Ahmed (PLDI 2018).
//!
//! The crate provides:
//!
//! * [`ast`] — the abstract syntax (Figure 1 of the paper);
//! * [`builder`] — a DSL for constructing terms programmatically;
//! * [`mod@env`] — typing environments `Γ` and their well-formedness (Figure 4);
//! * [`subst`] — free variables, capture-avoiding substitution, α-equivalence;
//! * [`reduce`] — the reduction relation `⊲` and normalization (Figure 2);
//! * [`equiv`] — definitional equivalence with η (Figure 2);
//! * [`nbe`] — a normalization-by-evaluation engine (the algorithmic
//!   implementation of `⊲*`/`≡` used on every hot path);
//! * [`typecheck`] — the typing judgment `Γ ⊢ e : A` (Figure 3);
//! * [`parse`] — a surface-syntax parser;
//! * [`pretty`] — a pretty-printer whose output re-parses;
//! * [`prelude`] — standard terms (polymorphic identity, Church encodings,
//!   `False`, refinement-style pairs) and the program corpus used by tests
//!   and benchmarks;
//! * [`generate`] — a type-directed random generator of well-typed terms for
//!   property-based testing.
//!
//! # Example
//!
//! ```
//! use cccc_source::builder::*;
//! use cccc_source::{env::Env, typecheck, reduce, equiv};
//!
//! // λ A : ⋆. λ x : A. x   applied at Bool to true
//! let id = lam("A", star(), lam("x", var("A"), var("x")));
//! let program = app(app(id, bool_ty()), tt());
//!
//! let ty = typecheck::infer(&Env::new(), &program).unwrap();
//! assert!(equiv::definitionally_equal(&Env::new(), &ty, &bool_ty()));
//!
//! let value = reduce::normalize_default(&Env::new(), &program);
//! assert!(cccc_source::subst::alpha_eq(&value, &tt()));
//! ```

pub mod ast;
pub mod builder;
pub mod env;
pub mod equiv;
pub mod generate;
pub mod nbe;
pub mod parse;
pub mod prelude;
pub mod pretty;
pub mod profile;
pub mod reduce;
pub mod spans;
pub mod subst;
pub mod tolerant;
pub mod typecheck;
pub mod wire;

pub use ast::{RcTerm, Term, Universe};
pub use env::{Decl, Env};
pub use typecheck::TypeError;
