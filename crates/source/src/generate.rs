//! A type-directed random generator of well-typed CC terms.
//!
//! The metatheory of the paper consists of ∀-statements over well-typed
//! terms (type preservation, compositionality, coherence, …). The test
//! suite validates those statements both on the hand-written corpus in
//! [`crate::prelude`] and on randomly generated programs produced here.
//!
//! Generation is *type-directed*: we first generate a goal type, then build
//! a term of that type by construction, occasionally wrapping subterms in
//! β/ζ-redexes so that the generated programs actually exercise reduction
//! and the conversion rule. Every generated term type checks (this is itself
//! asserted by a test below).

use crate::ast::Term;
use crate::builder::*;
use crate::env::Env;
use crate::subst::{alpha_eq, subst};
use cccc_util::symbol::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the generator.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Maximum structural depth of generated types and terms.
    pub max_depth: usize,
    /// Probability of wrapping a generated term in a β- or ζ-redex.
    pub redex_probability: f64,
    /// Probability of using a context variable (when one of the right type
    /// is available) instead of generating a fresh literal.
    pub variable_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { max_depth: 4, redex_probability: 0.35, variable_probability: 0.6 }
    }
}

/// A deterministic, seedable generator of well-typed CC programs.
#[derive(Debug)]
pub struct TermGenerator {
    rng: StdRng,
    config: GeneratorConfig,
    counter: u64,
}

impl TermGenerator {
    /// Creates a generator from a seed, with the default configuration.
    pub fn new(seed: u64) -> TermGenerator {
        TermGenerator::with_config(seed, GeneratorConfig::default())
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(seed: u64, config: GeneratorConfig) -> TermGenerator {
        TermGenerator { rng: StdRng::seed_from_u64(seed), config, counter: 0 }
    }

    fn fresh(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        Symbol::fresh(&format!("{base}{}", self.counter))
    }

    /// Generates a closed *small* type (a type in universe `⋆`).
    pub fn gen_type(&mut self, depth: usize) -> Term {
        if depth == 0 {
            return bool_ty();
        }
        match self.rng.gen_range(0..6u32) {
            0 | 1 => bool_ty(),
            2 => arrow(self.gen_type(depth - 1), self.gen_type(depth - 1)),
            3 => product(self.gen_type(depth - 1), self.gen_type(depth - 1)),
            4 => {
                // A polymorphic template Π A : ⋆. A → A, always inhabited.
                let a = self.fresh("A");
                pi_sym(a, star(), arrow(var_sym(a), var_sym(a)))
            }
            _ => arrow(bool_ty(), self.gen_type(depth - 1)),
        }
    }

    /// Generates a term of type `ty` under `env`. The type must be one
    /// produced by [`TermGenerator::gen_type`] (possibly with abstract type
    /// variables bound in `env`).
    pub fn gen_term(&mut self, env: &Env, ty: &Term, depth: usize) -> Term {
        let core = self.gen_term_core(env, ty, depth);
        if depth > 0 && self.rng.gen_bool(self.config.redex_probability) {
            self.wrap_in_redex(env, core, depth - 1)
        } else {
            core
        }
    }

    fn gen_term_core(&mut self, env: &Env, ty: &Term, depth: usize) -> Term {
        match ty {
            Term::BoolTy => self.gen_bool(env, depth),
            Term::Pi { binder, domain, codomain } => {
                let fresh = self.fresh(binder.base_name());
                let codomain = subst(codomain, *binder, &var_sym(fresh));
                let inner = env.with_assumption(fresh, (**domain).clone());
                let body = self.gen_term(&inner, &codomain, depth.saturating_sub(1));
                lam_sym(fresh, (**domain).clone(), body)
            }
            Term::Sigma { binder, first, second } => {
                let first_component = self.gen_term(env, first, depth.saturating_sub(1));
                let second_ty = subst(second, *binder, &first_component);
                let second_component = self.gen_term(env, &second_ty, depth.saturating_sub(1));
                pair(first_component, second_component, ty.clone())
            }
            Term::Sort(_) => self.gen_type(depth.saturating_sub(1)),
            // An abstract type variable: the only way to inhabit it is to use
            // a context variable of that exact type (one always exists for
            // the templates produced by `gen_type`).
            Term::Var(_) => self
                .context_variable_of_type(env, ty)
                .expect("generator invariant: abstract types are only demanded when inhabited"),
            // Fallback: generate a boolean; callers only request the shapes
            // above.
            _ => self.gen_bool(env, depth),
        }
    }

    fn gen_bool(&mut self, env: &Env, depth: usize) -> Term {
        // Prefer using a context variable of type Bool occasionally, so that
        // generated open terms genuinely mention their free variables.
        if self.rng.gen_bool(self.config.variable_probability) {
            if let Some(v) = self.context_variable_of_type(env, &bool_ty()) {
                return v;
            }
        }
        if depth == 0 {
            return bool_lit(self.rng.gen_bool(0.5));
        }
        match self.rng.gen_range(0..6u32) {
            0 | 1 => bool_lit(self.rng.gen_bool(0.5)),
            2 => ite(
                self.gen_bool(env, depth - 1),
                self.gen_bool(env, depth - 1),
                self.gen_bool(env, depth - 1),
            ),
            3 => {
                // Project from a freshly built pair of booleans.
                let annotation = product(bool_ty(), bool_ty());
                let p =
                    pair(self.gen_bool(env, depth - 1), self.gen_bool(env, depth - 1), annotation);
                if self.rng.gen_bool(0.5) {
                    fst(p)
                } else {
                    snd(p)
                }
            }
            4 => {
                // Apply a freshly built boolean function.
                let x = self.fresh("b");
                let inner = env.with_assumption(x, bool_ty());
                let body = self.gen_bool(&inner, depth - 1);
                app(lam_sym(x, bool_ty(), body), self.gen_bool(env, depth - 1))
            }
            _ => {
                // Apply the polymorphic identity at Bool.
                let id = lam("A", star(), lam("x", var("A"), var("x")));
                app(app(id, bool_ty()), self.gen_bool(env, depth - 1))
            }
        }
    }

    fn wrap_in_redex(&mut self, env: &Env, term: Term, depth: usize) -> Term {
        let x = self.fresh("u");
        let bound = self.gen_bool(env, depth.min(1));
        if self.rng.gen_bool(0.5) {
            app(lam_sym(x, bool_ty(), term), bound)
        } else {
            let_sym(x, bool_ty(), bound, term)
        }
    }

    fn context_variable_of_type(&mut self, env: &Env, ty: &Term) -> Option<Term> {
        let candidates: Vec<Symbol> =
            env.iter().filter(|d| alpha_eq(d.ty(), ty)).map(|d| d.name()).collect();
        if candidates.is_empty() {
            return None;
        }
        let index = self.rng.gen_range(0..candidates.len());
        Some(var_sym(candidates[index]))
    }

    /// Generates a closed well-typed program together with its goal type.
    pub fn gen_program(&mut self) -> (Term, Term) {
        let ty = self.gen_type(self.config.max_depth);
        let term = self.gen_term(&Env::new(), &ty, self.config.max_depth);
        (term, ty)
    }

    /// Generates a closed program of the ground type `Bool`.
    pub fn gen_ground_program(&mut self) -> Term {
        self.gen_term(&Env::new(), &bool_ty(), self.config.max_depth)
    }

    /// Generates an open component: an environment `Γ` of assumptions, a
    /// term `e` with `Γ ⊢ e : Bool` that mentions (some of) them, and a
    /// closing substitution `γ` with `Γ ⊢ γ` (each `γ(x)` is closed and has
    /// type `γ(A)`). This is the setup of Theorem 5.7.
    pub fn gen_open_component(
        &mut self,
        free_variables: usize,
    ) -> (Env, Term, Vec<(Symbol, Term)>) {
        let mut env = Env::new();
        let mut substitution = Vec::new();
        for _ in 0..free_variables {
            if self.rng.gen_bool(0.3) {
                // A type variable instantiated with a concrete closed type.
                let a = self.fresh("A");
                let concrete = self.gen_type(1);
                env.push_assumption(a, star());
                substitution.push((a, concrete));
            } else {
                // A term variable of a closed small type.
                let x = self.fresh("x");
                let ty = self.gen_type(1);
                let value = self.gen_term(&Env::new(), &ty, 2);
                env.push_assumption(x, ty);
                substitution.push((x, value));
            }
        }
        let term = self.gen_term(&env, &bool_ty(), self.config.max_depth);
        (env, term, substitution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::normalize_default;
    use crate::subst::subst_all;
    use crate::typecheck::{check, infer};

    #[test]
    fn generated_closed_programs_type_check() {
        let mut generator = TermGenerator::new(0xCC);
        for i in 0..60 {
            let (term, ty) = generator.gen_program();
            check(&Env::new(), &term, &ty)
                .unwrap_or_else(|e| panic!("sample {i} ill-typed: {e}\nterm: {term}\ntype: {ty}"));
        }
    }

    #[test]
    fn generated_ground_programs_evaluate_to_booleans() {
        let mut generator = TermGenerator::new(7);
        for _ in 0..40 {
            let term = generator.gen_ground_program();
            infer(&Env::new(), &term).expect("ground program must type check");
            let value = normalize_default(&Env::new(), &term);
            assert!(matches!(value, Term::BoolLit(_)), "expected literal, got {value}");
        }
    }

    #[test]
    fn generated_open_components_close_correctly() {
        let mut generator = TermGenerator::new(42);
        for _ in 0..20 {
            let (env, term, gamma) = generator.gen_open_component(4);
            // The open term type checks under Γ.
            infer(&env, &term).expect("open component must type check under its environment");
            // Linking (substituting γ) produces a closed well-typed Bool.
            let closed = subst_all(&term, &gamma);
            infer(&Env::new(), &closed).expect("linked program must be closed and well-typed");
            let value = normalize_default(&Env::new(), &closed);
            assert!(matches!(value, Term::BoolLit(_)));
        }
    }

    #[test]
    fn generator_is_deterministic_for_a_fixed_seed() {
        let mut a = TermGenerator::new(123);
        let mut b = TermGenerator::new(123);
        for _ in 0..10 {
            let (ta, _) = a.gen_program();
            let (tb, _) = b.gen_program();
            assert!(alpha_eq(&ta, &tb));
        }
    }

    #[test]
    fn different_seeds_differ_eventually() {
        let mut a = TermGenerator::new(1);
        let mut b = TermGenerator::new(2);
        let differs = (0..10).any(|_| {
            let (ta, _) = a.gen_program();
            let (tb, _) = b.gen_program();
            !alpha_eq(&ta, &tb)
        });
        assert!(differs);
    }

    #[test]
    fn config_depth_bounds_term_depth() {
        let config = GeneratorConfig { max_depth: 2, ..GeneratorConfig::default() };
        let mut generator = TermGenerator::with_config(5, config);
        for _ in 0..20 {
            let (term, _) = generator.gen_program();
            assert!(term.depth() < 64, "depth runaway: {}", term.depth());
        }
    }
}
