//! A surface-syntax parser for CC.
//!
//! The concrete syntax is the one produced by [`crate::pretty`]:
//!
//! ```text
//! term  ::= \(x : term). term            (functions)
//!         | Pi (x : term). term          (dependent function types)
//!         | Sigma (x : term). term       (dependent pair types)
//!         | let x = term : term in term  (dependent let)
//!         | if term then term else term
//!         | app -> term                  (non-dependent function type)
//!         | app
//! app   ::= proj proj …                  (left-associative application)
//! proj  ::= fst proj | snd proj | atom
//! atom  ::= x | * | BOX | Bool | true | false
//!         | < term , term > as atom      (dependent pairs)
//!         | ( term )
//! ```
//!
//! Identifiers may contain `$`, so pretty-printed generated names re-parse.
//! Pretty-printing a term and parsing the output yields an α-equivalent
//! term; this round-trip property is exercised in the tests.
//!
//! Every parsed node is recorded in the [`crate::spans`] side-table, so the
//! type checkers can attach source locations to their diagnostics without
//! the hash-consed AST carrying spans.
//!
//! Two entry points are provided. [`parse_term`] is fail-fast and returns
//! the first [`ParseError`]. [`parse_term_tolerant`] keeps going: at each
//! recovery point it records the error, skips ahead to a synchronizing
//! token (`in`, `then`, `else`, `)`, …), patches the missing subterm with
//! the `<error>` hole ([`crate::tolerant::error_term`]) and continues, so a
//! single pass reports every parse error and still yields a term the
//! tolerant type checker can walk. `<error>` cannot lex as an identifier,
//! so holes never collide with user-written names.

use crate::ast::Term;
use crate::builder::*;
use crate::spans;
use cccc_util::diag::Diagnostic;
use cccc_util::span::Span;
use cccc_util::symbol::Symbol;
use std::fmt;

/// A parse error with a message and the span where it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
}

impl ParseError {
    fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError { message: message.into(), span }
    }

    /// Converts to a structured [`Diagnostic`] with the parse-error code.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(self.message.clone()).with_code("E0100").with_span(self.span)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result type for the parser.
pub type Result<T> = std::result::Result<T, ParseError>;

/// Tokens of the surface syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Ident(String),
    Lambda,
    Pi,
    Sigma,
    Let,
    In,
    As,
    Fst,
    Snd,
    If,
    Then,
    Else,
    True,
    False,
    BoolKw,
    Star,
    BoxKw,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Dot,
    Colon,
    Comma,
    Equals,
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Lambda => write!(f, "`\\`"),
            Token::Pi => write!(f, "`Pi`"),
            Token::Sigma => write!(f, "`Sigma`"),
            Token::Let => write!(f, "`let`"),
            Token::In => write!(f, "`in`"),
            Token::As => write!(f, "`as`"),
            Token::Fst => write!(f, "`fst`"),
            Token::Snd => write!(f, "`snd`"),
            Token::If => write!(f, "`if`"),
            Token::Then => write!(f, "`then`"),
            Token::Else => write!(f, "`else`"),
            Token::True => write!(f, "`true`"),
            Token::False => write!(f, "`false`"),
            Token::BoolKw => write!(f, "`Bool`"),
            Token::Star => write!(f, "`*`"),
            Token::BoxKw => write!(f, "`BOX`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LAngle => write!(f, "`<`"),
            Token::RAngle => write!(f, "`>`"),
            Token::Dot => write!(f, "`.`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Equals => write!(f, "`=`"),
            Token::Arrow => write!(f, "`->`"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$' || c == '\''
}

/// Tokenizes `input`. In tolerant mode, unknown characters are skipped and
/// recorded in `errors`; in strict mode the first one aborts the scan.
fn tokenize_inner(
    input: &str,
    tolerant: bool,
    errors: &mut Vec<ParseError>,
) -> Result<Vec<(Token, Span)>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let start = i as u32;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                tokens.push((Token::LParen, Span::new(start, start + 1)));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, Span::new(start, start + 1)));
                i += 1;
            }
            '<' => {
                tokens.push((Token::LAngle, Span::new(start, start + 1)));
                i += 1;
            }
            '>' => {
                tokens.push((Token::RAngle, Span::new(start, start + 1)));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, Span::new(start, start + 1)));
                i += 1;
            }
            ':' => {
                tokens.push((Token::Colon, Span::new(start, start + 1)));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, Span::new(start, start + 1)));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Equals, Span::new(start, start + 1)));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, Span::new(start, start + 1)));
                i += 1;
            }
            '\\' => {
                tokens.push((Token::Lambda, Span::new(start, start + 1)));
                i += 1;
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '>' => {
                tokens.push((Token::Arrow, Span::new(start, start + 2)));
                i += 2;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                let span = Span::new(start, j as u32);
                let token = match word.as_str() {
                    "Pi" | "forall" => Token::Pi,
                    "Sigma" | "exists" => Token::Sigma,
                    "lambda" | "fun" => Token::Lambda,
                    "let" => Token::Let,
                    "in" => Token::In,
                    "as" => Token::As,
                    "fst" => Token::Fst,
                    "snd" => Token::Snd,
                    "if" => Token::If,
                    "then" => Token::Then,
                    "else" => Token::Else,
                    "true" => Token::True,
                    "false" => Token::False,
                    "Bool" => Token::BoolKw,
                    "BOX" => Token::BoxKw,
                    _ => Token::Ident(word),
                };
                tokens.push((token, span));
                i = j;
            }
            other => {
                let error = ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span::new(start, start + 1),
                );
                if tolerant {
                    errors.push(error);
                    i += 1;
                } else {
                    return Err(error);
                }
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, Span)>,
    position: usize,
    input_len: u32,
    tolerant: bool,
    errors: Vec<ParseError>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|(t, _)| t)
    }

    fn current_span(&self) -> Span {
        self.tokens
            .get(self.position)
            .map(|(_, s)| *s)
            .unwrap_or(Span::new(self.input_len, self.input_len))
    }

    /// The span of the most recently consumed token (used to close the span
    /// of a composite node once its last constituent has been parsed).
    fn prev_span(&self) -> Span {
        if self.position == 0 {
            return self.current_span();
        }
        self.tokens
            .get(self.position - 1)
            .map(|(_, s)| *s)
            .unwrap_or(Span::new(self.input_len, self.input_len))
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.position).map(|(t, _)| t.clone());
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    /// Consumes `expected` or fails *without consuming* the offending token,
    /// so tolerant recovery can synchronize on it.
    fn expect(&mut self, expected: Token) -> Result<()> {
        let span = self.current_span();
        match self.peek() {
            Some(found) if *found == expected => {
                self.advance();
                Ok(())
            }
            Some(found) => {
                Err(ParseError::new(format!("expected {expected}, found {found}"), span))
            }
            None => Err(ParseError::new(format!("expected {expected}, found end of input"), span)),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        let span = self.current_span();
        match self.peek() {
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            Some(found) => {
                Err(ParseError::new(format!("expected identifier, found {found}"), span))
            }
            None => Err(ParseError::new("expected identifier, found end of input", span)),
        }
    }

    /// Records `span(start..last consumed token)` for `term` in the
    /// side-table and passes the term through.
    fn record(&self, term: Term, start: Span) -> Term {
        spans::record(&term, start.join(self.prev_span()));
        term
    }

    /// The `<error>` hole patched in where a subterm failed to parse.
    fn hole(&self, at: Span) -> Term {
        let hole = crate::tolerant::error_term();
        spans::record(&hole, at);
        hole
    }

    /// Skips tokens until one of `stops` (or end of input) is at the front.
    fn sync_to(&mut self, stops: &[Token]) {
        while let Some(token) = self.peek() {
            if stops.contains(token) {
                return;
            }
            self.advance();
        }
    }

    /// Parses a term; in tolerant mode a failure records the error, skips to
    /// a synchronizing token, and yields an `<error>` hole instead.
    fn term_or_recover(&mut self, sync: &[Token]) -> Result<Term> {
        match self.term() {
            Ok(term) => Ok(term),
            Err(error) if self.tolerant => {
                let at = error.span;
                self.errors.push(error);
                self.sync_to(sync);
                Ok(self.hole(at))
            }
            Err(error) => Err(error),
        }
    }

    /// Expects `expected`; in tolerant mode a mismatch records the error,
    /// skips to `expected` or one of `sync`, and consumes `expected` if that
    /// is what the skip stopped on.
    fn expect_or_recover(&mut self, expected: Token, sync: &[Token]) -> Result<()> {
        match self.expect(expected.clone()) {
            Ok(()) => Ok(()),
            Err(error) if self.tolerant => {
                self.errors.push(error);
                let mut stops = sync.to_vec();
                stops.push(expected.clone());
                self.sync_to(&stops);
                if self.peek() == Some(&expected) {
                    self.advance();
                }
                Ok(())
            }
            Err(error) => Err(error),
        }
    }

    /// Expects `expected`; in tolerant mode a mismatch records the error and
    /// continues without consuming anything (for punctuation like `(` or `.`
    /// whose absence does not call for skipping ahead).
    fn expect_soft(&mut self, expected: Token) -> Result<()> {
        match self.expect(expected) {
            Ok(()) => Ok(()),
            Err(error) if self.tolerant => {
                self.errors.push(error);
                Ok(())
            }
            Err(error) => Err(error),
        }
    }

    /// Expects an identifier; in tolerant mode a mismatch records the error
    /// and substitutes the `<error>` name without consuming anything.
    fn ident_or_recover(&mut self) -> Result<String> {
        match self.expect_ident() {
            Ok(name) => Ok(name),
            Err(error) if self.tolerant => {
                self.errors.push(error);
                Ok(crate::tolerant::ERROR_NAME.to_string())
            }
            Err(error) => Err(error),
        }
    }

    /// Parses a `(x : term)` binder group followed by `.` and a body.
    fn binder_body(&mut self) -> Result<(Symbol, Term, Term)> {
        self.expect_soft(Token::LParen)?;
        let name = self.ident_or_recover()?;
        self.expect_soft(Token::Colon)?;
        let annotation = self.term_or_recover(&[Token::RParen, Token::Dot])?;
        self.expect_or_recover(Token::RParen, &[Token::Dot])?;
        self.expect_soft(Token::Dot)?;
        let body = self.term()?;
        Ok((Symbol::intern(&name), annotation, body))
    }

    fn term(&mut self) -> Result<Term> {
        let start = self.current_span();
        match self.peek() {
            Some(Token::Lambda) => {
                self.advance();
                let (name, annotation, body) = self.binder_body()?;
                Ok(self.record(lam_sym(name, annotation, body), start))
            }
            Some(Token::Pi) => {
                self.advance();
                let (name, annotation, body) = self.binder_body()?;
                Ok(self.record(pi_sym(name, annotation, body), start))
            }
            Some(Token::Sigma) => {
                self.advance();
                let (name, annotation, body) = self.binder_body()?;
                Ok(self.record(sigma_sym(name, annotation, body), start))
            }
            Some(Token::Let) => {
                self.advance();
                let name = self.ident_or_recover()?;
                self.expect_or_recover(Token::Equals, &[Token::Colon, Token::In])?;
                let bound = self.term_or_recover(&[Token::Colon, Token::In])?;
                self.expect_or_recover(Token::Colon, &[Token::In])?;
                let annotation = self.term_or_recover(&[Token::In])?;
                self.expect_or_recover(Token::In, &[])?;
                let body = self.term()?;
                Ok(self.record(let_sym(Symbol::intern(&name), annotation, bound, body), start))
            }
            Some(Token::If) => {
                self.advance();
                let scrutinee = self.term_or_recover(&[Token::Then, Token::Else])?;
                self.expect_or_recover(Token::Then, &[Token::Else])?;
                let then_branch = self.term_or_recover(&[Token::Else])?;
                self.expect_or_recover(Token::Else, &[])?;
                let else_branch = self.term()?;
                Ok(self.record(ite(scrutinee, then_branch, else_branch), start))
            }
            _ => {
                let left = self.application()?;
                if matches!(self.peek(), Some(Token::Arrow)) {
                    self.advance();
                    let right = self.term()?;
                    Ok(self.record(arrow(left, right), start))
                } else {
                    Ok(left)
                }
            }
        }
    }

    fn application(&mut self) -> Result<Term> {
        let start = self.current_span();
        let mut result = self.projection()?;
        while self.starts_atom() {
            let argument = self.projection()?;
            result = self.record(app(result, argument), start);
        }
        Ok(result)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Ident(_)
                    | Token::Star
                    | Token::BoxKw
                    | Token::BoolKw
                    | Token::True
                    | Token::False
                    | Token::LParen
                    | Token::LAngle
                    | Token::Fst
                    | Token::Snd
            )
        )
    }

    fn projection(&mut self) -> Result<Term> {
        let start = self.current_span();
        match self.peek() {
            Some(Token::Fst) => {
                self.advance();
                let inner = self.projection()?;
                Ok(self.record(fst(inner), start))
            }
            Some(Token::Snd) => {
                self.advance();
                let inner = self.projection()?;
                Ok(self.record(snd(inner), start))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Term> {
        let span = self.current_span();
        match self.peek().cloned() {
            Some(Token::Ident(name)) => {
                self.advance();
                Ok(self.record(var(&name), span))
            }
            Some(Token::Star) => {
                self.advance();
                Ok(self.record(star(), span))
            }
            Some(Token::BoxKw) => {
                self.advance();
                Ok(self.record(boxu(), span))
            }
            Some(Token::BoolKw) => {
                self.advance();
                Ok(self.record(bool_ty(), span))
            }
            Some(Token::True) => {
                self.advance();
                Ok(self.record(tt(), span))
            }
            Some(Token::False) => {
                self.advance();
                Ok(self.record(ff(), span))
            }
            Some(Token::LParen) => {
                self.advance();
                let inner = self.term_or_recover(&[Token::RParen])?;
                self.expect_or_recover(Token::RParen, &[])?;
                Ok(inner)
            }
            Some(Token::LAngle) => {
                self.advance();
                let first = self.term_or_recover(&[Token::Comma, Token::RAngle])?;
                self.expect_or_recover(Token::Comma, &[Token::RAngle])?;
                let second = self.term_or_recover(&[Token::RAngle])?;
                self.expect_or_recover(Token::RAngle, &[Token::As])?;
                self.expect_soft(Token::As)?;
                let annotation = self.atom()?;
                Ok(self.record(pair(first, second, annotation), span))
            }
            Some(found) => Err(ParseError::new(format!("expected a term, found {found}"), span)),
            None => Err(ParseError::new("expected a term, found end of input", span)),
        }
    }
}

/// Parses a complete CC term from `input`, failing at the first error.
///
/// Spans for every parsed node are recorded in [`crate::spans`] (replacing
/// those of the previously parsed program).
///
/// # Errors
///
/// Returns a [`ParseError`] when the input does not conform to the grammar
/// or contains trailing tokens.
pub fn parse_term(input: &str) -> Result<Term> {
    spans::reset();
    let mut scan_errors = Vec::new();
    let tokens = tokenize_inner(input, false, &mut scan_errors)?;
    let mut parser = Parser {
        tokens,
        position: 0,
        input_len: input.len() as u32,
        tolerant: false,
        errors: Vec::new(),
    };
    let term = parser.term()?;
    if parser.position != parser.tokens.len() {
        return Err(ParseError::new("unexpected trailing input", parser.current_span()));
    }
    Ok(term)
}

/// Parses `input` with error recovery, returning a term (with `<error>`
/// holes where subterms were unparseable) and *every* parse error found.
///
/// An empty error list means the parse was clean and the term is identical
/// to what [`parse_term`] returns. Spans for every parsed node are recorded
/// in [`crate::spans`].
pub fn parse_term_tolerant(input: &str) -> (Term, Vec<ParseError>) {
    spans::reset();
    let mut errors = Vec::new();
    let tokens = tokenize_inner(input, true, &mut errors)
        .expect("tolerant tokenizer records errors instead of failing");
    let mut parser =
        Parser { tokens, position: 0, input_len: input.len() as u32, tolerant: true, errors };
    let term = match parser.term() {
        Ok(term) => term,
        Err(error) => {
            let at = error.span;
            parser.errors.push(error);
            parser.sync_to(&[]);
            parser.hole(at)
        }
    };
    if parser.position != parser.tokens.len() {
        parser.errors.push(ParseError::new("unexpected trailing input", parser.current_span()));
    }
    (term, parser.errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::term_to_string;
    use crate::subst::alpha_eq;

    fn round_trips(term: &Term) {
        let printed = term_to_string(term);
        let reparsed =
            parse_term(&printed).unwrap_or_else(|e| panic!("failed to re-parse `{printed}`: {e}"));
        assert!(
            alpha_eq(term, &reparsed),
            "round trip changed term:\n  original: {term}\n  reparsed: {reparsed}"
        );
    }

    #[test]
    fn parses_atoms() {
        assert!(alpha_eq(&parse_term("x").unwrap(), &var("x")));
        assert!(alpha_eq(&parse_term("*").unwrap(), &star()));
        assert!(alpha_eq(&parse_term("Bool").unwrap(), &bool_ty()));
        assert!(alpha_eq(&parse_term("true").unwrap(), &tt()));
        assert!(alpha_eq(&parse_term("false").unwrap(), &ff()));
    }

    #[test]
    fn parses_lambda_all_spellings() {
        let expected = lam("x", bool_ty(), var("x"));
        assert!(alpha_eq(&parse_term("\\(x : Bool). x").unwrap(), &expected));
        assert!(alpha_eq(&parse_term("lambda (x : Bool). x").unwrap(), &expected));
        assert!(alpha_eq(&parse_term("fun (x : Bool). x").unwrap(), &expected));
    }

    #[test]
    fn parses_pi_and_arrow_sugar() {
        let dependent = parse_term("Pi (A : *). A").unwrap();
        assert!(alpha_eq(&dependent, &pi("A", star(), var("A"))));
        let sugar = parse_term("Bool -> Bool").unwrap();
        match sugar {
            Term::Pi { domain, codomain, .. } => {
                assert!(alpha_eq(&domain, &bool_ty()));
                assert!(alpha_eq(&codomain, &bool_ty()));
            }
            other => panic!("expected Pi, got {other}"),
        }
    }

    #[test]
    fn arrow_is_right_associative() {
        let t = parse_term("Bool -> Bool -> Bool").unwrap();
        match t {
            Term::Pi { codomain, .. } => assert!(matches!(&*codomain, Term::Pi { .. })),
            _ => panic!("expected Pi"),
        }
    }

    #[test]
    fn application_is_left_associative() {
        let t = parse_term("f a b").unwrap();
        assert!(alpha_eq(&t, &app(app(var("f"), var("a")), var("b"))));
    }

    #[test]
    fn parses_let_if_pair_projections() {
        let t = parse_term("let x = true : Bool in if x then false else true").unwrap();
        assert!(alpha_eq(&t, &let_("x", bool_ty(), tt(), ite(var("x"), ff(), tt()))));
        let p = parse_term("<true, false> as (Sigma (x : Bool). Bool)").unwrap();
        assert!(alpha_eq(&p, &pair(tt(), ff(), sigma("x", bool_ty(), bool_ty()))));
        assert!(alpha_eq(&parse_term("fst p").unwrap(), &fst(var("p"))));
        assert!(alpha_eq(&parse_term("snd (fst p)").unwrap(), &snd(fst(var("p")))));
    }

    #[test]
    fn parses_polymorphic_identity() {
        let t = parse_term("\\(A : *). \\(x : A). x").unwrap();
        assert!(alpha_eq(&t, &crate::prelude::poly_id()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_term("").is_err());
        assert!(parse_term("(x").is_err());
        assert!(parse_term("x )").is_err());
        assert!(parse_term("let x = in y").is_err());
        assert!(parse_term("#!?").is_err());
        assert!(parse_term("if true then false").is_err());
    }

    #[test]
    fn error_messages_mention_position() {
        let err = parse_term("(x").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn corpus_round_trips_through_pretty_printer() {
        for entry in crate::prelude::corpus() {
            round_trips(&entry.term);
        }
    }

    #[test]
    fn generated_names_round_trip() {
        // `arrow` introduces a generated binder whose printed form contains `$`.
        round_trips(&arrow(bool_ty(), bool_ty()));
    }

    #[test]
    fn deeply_nested_terms_round_trip() {
        let mut t = var("x");
        for _ in 0..30 {
            t = app(lam("x", bool_ty(), t.clone()), tt());
        }
        round_trips(&t);
    }

    #[test]
    fn parser_records_spans_for_subterms() {
        let input = "\\(x : Bool). f x";
        let term = parse_term(input).unwrap();
        assert_eq!(spans::span_of(&term), Some(Span::new(0, input.len() as u32)));
        assert_eq!(spans::span_of(&bool_ty()), Some(Span::new(6, 10)));
        assert_eq!(spans::span_of(&var("f")), Some(Span::new(13, 14)));
    }

    #[test]
    fn tolerant_matches_strict_on_clean_input() {
        for input in ["\\(A : *). \\(x : A). x", "let x = true : Bool in x", "fst p"] {
            let strict = parse_term(input).unwrap();
            let (tolerant, errors) = parse_term_tolerant(input);
            assert!(errors.is_empty(), "{input}: {errors:?}");
            assert!(alpha_eq(&strict, &tolerant));
        }
    }

    #[test]
    fn tolerant_recovers_with_holes_and_reports_every_error() {
        // Two independent mistakes: a missing bound term and a bad character.
        let (term, errors) = parse_term_tolerant("let x = : Bool in f # x");
        assert!(errors.len() >= 2, "{errors:?}");
        assert!(
            crate::tolerant::is_poisoned(&term),
            "recovered term should contain an <error> hole: {term}"
        );
    }

    #[test]
    fn tolerant_recovers_inside_if_and_parens() {
        let (_, errors) = parse_term_tolerant("if then false else (true");
        assert!(errors.len() >= 2, "{errors:?}");
        let (term, errors) = parse_term_tolerant("(f x");
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(alpha_eq(&term, &app(var("f"), var("x"))));
    }

    #[test]
    fn tolerant_empty_input_yields_hole() {
        let (term, errors) = parse_term_tolerant("");
        assert_eq!(errors.len(), 1);
        assert!(crate::tolerant::is_poisoned(&term));
    }

    #[test]
    fn parse_error_converts_to_coded_diagnostic() {
        let err = parse_term("(x").unwrap_err();
        let diag = err.to_diagnostic();
        assert_eq!(diag.code.as_deref(), Some("E0100"));
        assert!(diag.span.is_some());
    }
}
