//! A surface-syntax parser for CC.
//!
//! The concrete syntax is the one produced by [`crate::pretty`]:
//!
//! ```text
//! term  ::= \(x : term). term            (functions)
//!         | Pi (x : term). term          (dependent function types)
//!         | Sigma (x : term). term       (dependent pair types)
//!         | let x = term : term in term  (dependent let)
//!         | if term then term else term
//!         | app -> term                  (non-dependent function type)
//!         | app
//! app   ::= proj proj …                  (left-associative application)
//! proj  ::= fst proj | snd proj | atom
//! atom  ::= x | * | BOX | Bool | true | false
//!         | < term , term > as atom      (dependent pairs)
//!         | ( term )
//! ```
//!
//! Identifiers may contain `$`, so pretty-printed generated names re-parse.
//! Pretty-printing a term and parsing the output yields an α-equivalent
//! term; this round-trip property is exercised in the tests.

use crate::ast::Term;
use crate::builder::*;
use cccc_util::span::Span;
use cccc_util::symbol::Symbol;
use std::fmt;

/// A parse error with a message and the span where it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
}

impl ParseError {
    fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError { message: message.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result type for the parser.
pub type Result<T> = std::result::Result<T, ParseError>;

/// Tokens of the surface syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Ident(String),
    Lambda,
    Pi,
    Sigma,
    Let,
    In,
    As,
    Fst,
    Snd,
    If,
    Then,
    Else,
    True,
    False,
    BoolKw,
    Star,
    BoxKw,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Dot,
    Colon,
    Comma,
    Equals,
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Lambda => write!(f, "`\\`"),
            Token::Pi => write!(f, "`Pi`"),
            Token::Sigma => write!(f, "`Sigma`"),
            Token::Let => write!(f, "`let`"),
            Token::In => write!(f, "`in`"),
            Token::As => write!(f, "`as`"),
            Token::Fst => write!(f, "`fst`"),
            Token::Snd => write!(f, "`snd`"),
            Token::If => write!(f, "`if`"),
            Token::Then => write!(f, "`then`"),
            Token::Else => write!(f, "`else`"),
            Token::True => write!(f, "`true`"),
            Token::False => write!(f, "`false`"),
            Token::BoolKw => write!(f, "`Bool`"),
            Token::Star => write!(f, "`*`"),
            Token::BoxKw => write!(f, "`BOX`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LAngle => write!(f, "`<`"),
            Token::RAngle => write!(f, "`>`"),
            Token::Dot => write!(f, "`.`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Equals => write!(f, "`=`"),
            Token::Arrow => write!(f, "`->`"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$' || c == '\''
}

fn tokenize(input: &str) -> Result<Vec<(Token, Span)>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let start = i as u32;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                tokens.push((Token::LParen, Span::new(start, start + 1)));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, Span::new(start, start + 1)));
                i += 1;
            }
            '<' => {
                tokens.push((Token::LAngle, Span::new(start, start + 1)));
                i += 1;
            }
            '>' => {
                tokens.push((Token::RAngle, Span::new(start, start + 1)));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, Span::new(start, start + 1)));
                i += 1;
            }
            ':' => {
                tokens.push((Token::Colon, Span::new(start, start + 1)));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, Span::new(start, start + 1)));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Equals, Span::new(start, start + 1)));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, Span::new(start, start + 1)));
                i += 1;
            }
            '\\' => {
                tokens.push((Token::Lambda, Span::new(start, start + 1)));
                i += 1;
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '>' => {
                tokens.push((Token::Arrow, Span::new(start, start + 2)));
                i += 2;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                let span = Span::new(start, j as u32);
                let token = match word.as_str() {
                    "Pi" | "forall" => Token::Pi,
                    "Sigma" | "exists" => Token::Sigma,
                    "lambda" | "fun" => Token::Lambda,
                    "let" => Token::Let,
                    "in" => Token::In,
                    "as" => Token::As,
                    "fst" => Token::Fst,
                    "snd" => Token::Snd,
                    "if" => Token::If,
                    "then" => Token::Then,
                    "else" => Token::Else,
                    "true" => Token::True,
                    "false" => Token::False,
                    "Bool" => Token::BoolKw,
                    "BOX" => Token::BoxKw,
                    _ => Token::Ident(word),
                };
                tokens.push((token, span));
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span::new(start, start + 1),
                ))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, Span)>,
    position: usize,
    input_len: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|(t, _)| t)
    }

    fn current_span(&self) -> Span {
        self.tokens
            .get(self.position)
            .map(|(_, s)| *s)
            .unwrap_or(Span::new(self.input_len, self.input_len))
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.position).map(|(t, _)| t.clone());
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn expect(&mut self, expected: Token) -> Result<()> {
        let span = self.current_span();
        match self.advance() {
            Some(found) if found == expected => Ok(()),
            Some(found) => {
                Err(ParseError::new(format!("expected {expected}, found {found}"), span))
            }
            None => Err(ParseError::new(format!("expected {expected}, found end of input"), span)),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        let span = self.current_span();
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            Some(found) => {
                Err(ParseError::new(format!("expected identifier, found {found}"), span))
            }
            None => Err(ParseError::new("expected identifier, found end of input", span)),
        }
    }

    /// Parses a `(x : term)` binder group followed by `.` and a body.
    fn binder_body(&mut self) -> Result<(Symbol, Term, Term)> {
        self.expect(Token::LParen)?;
        let name = self.expect_ident()?;
        self.expect(Token::Colon)?;
        let annotation = self.term()?;
        self.expect(Token::RParen)?;
        self.expect(Token::Dot)?;
        let body = self.term()?;
        Ok((Symbol::intern(&name), annotation, body))
    }

    fn term(&mut self) -> Result<Term> {
        match self.peek() {
            Some(Token::Lambda) => {
                self.advance();
                let (name, annotation, body) = self.binder_body()?;
                Ok(lam_sym(name, annotation, body))
            }
            Some(Token::Pi) => {
                self.advance();
                let (name, annotation, body) = self.binder_body()?;
                Ok(pi_sym(name, annotation, body))
            }
            Some(Token::Sigma) => {
                self.advance();
                let (name, annotation, body) = self.binder_body()?;
                Ok(sigma_sym(name, annotation, body))
            }
            Some(Token::Let) => {
                self.advance();
                let name = self.expect_ident()?;
                self.expect(Token::Equals)?;
                let bound = self.term()?;
                self.expect(Token::Colon)?;
                let annotation = self.term()?;
                self.expect(Token::In)?;
                let body = self.term()?;
                Ok(let_sym(Symbol::intern(&name), annotation, bound, body))
            }
            Some(Token::If) => {
                self.advance();
                let scrutinee = self.term()?;
                self.expect(Token::Then)?;
                let then_branch = self.term()?;
                self.expect(Token::Else)?;
                let else_branch = self.term()?;
                Ok(ite(scrutinee, then_branch, else_branch))
            }
            _ => {
                let left = self.application()?;
                if matches!(self.peek(), Some(Token::Arrow)) {
                    self.advance();
                    let right = self.term()?;
                    Ok(arrow(left, right))
                } else {
                    Ok(left)
                }
            }
        }
    }

    fn application(&mut self) -> Result<Term> {
        let mut result = self.projection()?;
        while self.starts_atom() {
            let argument = self.projection()?;
            result = app(result, argument);
        }
        Ok(result)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Ident(_)
                    | Token::Star
                    | Token::BoxKw
                    | Token::BoolKw
                    | Token::True
                    | Token::False
                    | Token::LParen
                    | Token::LAngle
                    | Token::Fst
                    | Token::Snd
            )
        )
    }

    fn projection(&mut self) -> Result<Term> {
        match self.peek() {
            Some(Token::Fst) => {
                self.advance();
                Ok(fst(self.projection()?))
            }
            Some(Token::Snd) => {
                self.advance();
                Ok(snd(self.projection()?))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Term> {
        let span = self.current_span();
        match self.advance() {
            Some(Token::Ident(name)) => Ok(var(&name)),
            Some(Token::Star) => Ok(star()),
            Some(Token::BoxKw) => Ok(boxu()),
            Some(Token::BoolKw) => Ok(bool_ty()),
            Some(Token::True) => Ok(tt()),
            Some(Token::False) => Ok(ff()),
            Some(Token::LParen) => {
                let inner = self.term()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::LAngle) => {
                let first = self.term()?;
                self.expect(Token::Comma)?;
                let second = self.term()?;
                self.expect(Token::RAngle)?;
                self.expect(Token::As)?;
                let annotation = self.atom()?;
                Ok(pair(first, second, annotation))
            }
            Some(found) => Err(ParseError::new(format!("expected a term, found {found}"), span)),
            None => Err(ParseError::new("expected a term, found end of input", span)),
        }
    }
}

/// Parses a complete CC term from `input`.
///
/// # Errors
///
/// Returns a [`ParseError`] when the input does not conform to the grammar
/// or contains trailing tokens.
pub fn parse_term(input: &str) -> Result<Term> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, position: 0, input_len: input.len() as u32 };
    let term = parser.term()?;
    if parser.position != parser.tokens.len() {
        return Err(ParseError::new("unexpected trailing input", parser.current_span()));
    }
    Ok(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::term_to_string;
    use crate::subst::alpha_eq;

    fn round_trips(term: &Term) {
        let printed = term_to_string(term);
        let reparsed =
            parse_term(&printed).unwrap_or_else(|e| panic!("failed to re-parse `{printed}`: {e}"));
        assert!(
            alpha_eq(term, &reparsed),
            "round trip changed term:\n  original: {term}\n  reparsed: {reparsed}"
        );
    }

    #[test]
    fn parses_atoms() {
        assert!(alpha_eq(&parse_term("x").unwrap(), &var("x")));
        assert!(alpha_eq(&parse_term("*").unwrap(), &star()));
        assert!(alpha_eq(&parse_term("Bool").unwrap(), &bool_ty()));
        assert!(alpha_eq(&parse_term("true").unwrap(), &tt()));
        assert!(alpha_eq(&parse_term("false").unwrap(), &ff()));
    }

    #[test]
    fn parses_lambda_all_spellings() {
        let expected = lam("x", bool_ty(), var("x"));
        assert!(alpha_eq(&parse_term("\\(x : Bool). x").unwrap(), &expected));
        assert!(alpha_eq(&parse_term("lambda (x : Bool). x").unwrap(), &expected));
        assert!(alpha_eq(&parse_term("fun (x : Bool). x").unwrap(), &expected));
    }

    #[test]
    fn parses_pi_and_arrow_sugar() {
        let dependent = parse_term("Pi (A : *). A").unwrap();
        assert!(alpha_eq(&dependent, &pi("A", star(), var("A"))));
        let sugar = parse_term("Bool -> Bool").unwrap();
        match sugar {
            Term::Pi { domain, codomain, .. } => {
                assert!(alpha_eq(&domain, &bool_ty()));
                assert!(alpha_eq(&codomain, &bool_ty()));
            }
            other => panic!("expected Pi, got {other}"),
        }
    }

    #[test]
    fn arrow_is_right_associative() {
        let t = parse_term("Bool -> Bool -> Bool").unwrap();
        match t {
            Term::Pi { codomain, .. } => assert!(matches!(&*codomain, Term::Pi { .. })),
            _ => panic!("expected Pi"),
        }
    }

    #[test]
    fn application_is_left_associative() {
        let t = parse_term("f a b").unwrap();
        assert!(alpha_eq(&t, &app(app(var("f"), var("a")), var("b"))));
    }

    #[test]
    fn parses_let_if_pair_projections() {
        let t = parse_term("let x = true : Bool in if x then false else true").unwrap();
        assert!(alpha_eq(&t, &let_("x", bool_ty(), tt(), ite(var("x"), ff(), tt()))));
        let p = parse_term("<true, false> as (Sigma (x : Bool). Bool)").unwrap();
        assert!(alpha_eq(&p, &pair(tt(), ff(), sigma("x", bool_ty(), bool_ty()))));
        assert!(alpha_eq(&parse_term("fst p").unwrap(), &fst(var("p"))));
        assert!(alpha_eq(&parse_term("snd (fst p)").unwrap(), &snd(fst(var("p")))));
    }

    #[test]
    fn parses_polymorphic_identity() {
        let t = parse_term("\\(A : *). \\(x : A). x").unwrap();
        assert!(alpha_eq(&t, &crate::prelude::poly_id()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_term("").is_err());
        assert!(parse_term("(x").is_err());
        assert!(parse_term("x )").is_err());
        assert!(parse_term("let x = in y").is_err());
        assert!(parse_term("#!?").is_err());
        assert!(parse_term("if true then false").is_err());
    }

    #[test]
    fn error_messages_mention_position() {
        let err = parse_term("(x").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn corpus_round_trips_through_pretty_printer() {
        for entry in crate::prelude::corpus() {
            round_trips(&entry.term);
        }
    }

    #[test]
    fn generated_names_round_trip() {
        // `arrow` introduces a generated binder whose printed form contains `$`.
        round_trips(&arrow(bool_ty(), bool_ty()));
    }

    #[test]
    fn deeply_nested_terms_round_trip() {
        let mut t = var("x");
        for _ in 0..30 {
            t = app(lam("x", bool_ty(), t.clone()), tt());
        }
        round_trips(&t);
    }
}
