//! A cost-instrumented evaluator for CC.
//!
//! Counts how many times each reduction rule fires while normalizing a term.
//! Together with [`cccc-target`'s profiler](https://docs.rs/cccc-target)
//! this quantifies the dynamic overhead introduced by closure conversion
//! (§7 of the paper): every source β-step becomes a closure application plus
//! one environment construction and one projection per captured variable.
//!
//! The counter struct itself is the shared [`cccc_util::cost::Cost`]
//! instantiated with CC labels, so the CC and CC-CC profiles render with
//! their native rule names (`β` here, `clo` there) but compare field-for-field.

use crate::ast::Term;
use crate::env::Env;
use crate::reduce::ReduceError;
use crate::subst::subst;
use cccc_util::cost::CostLabels;
use cccc_util::fuel::Fuel;

/// Marker selecting the CC labels for the shared cost counters.
#[derive(Clone, Copy, Debug)]
pub struct CcCost;

impl CostLabels for CcCost {
    const APPLICATION: &'static str = "β";
    const FUNCTIONS: &'static str = "functions";
    const TRACE_EVENT: &'static str = "cost.cc";
}

/// Counters for the CC reduction rules. [`Cost::applications`] counts
/// β-steps: `(λ x : A. e1) e2 ⊲ e1[e2/x]`; [`Cost::functions_built`]
/// counts λ-values encountered as evaluation results (an allocation proxy
/// for the closures an implementation would create).
pub type Cost = cccc_util::cost::Cost<CcCost>;

/// Normalizes `term` under `env`, returning the value together with the cost
/// counters accumulated along the way. When a trace sink is installed on the
/// current thread the counters are also recorded as a `cost.cc` event.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted.
pub fn evaluate_with_cost(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
) -> Result<(Term, Cost), ReduceError> {
    let mut cost = Cost::default();
    let value = normalize(env, term, fuel, &mut cost)?;
    cost.record_trace();
    Ok((value, cost))
}

/// Normalizes with the default fuel budget.
///
/// # Panics
///
/// Panics if the default budget is exhausted.
pub fn evaluate_with_cost_default(env: &Env, term: &Term) -> (Term, Cost) {
    let mut fuel = Fuel::default();
    evaluate_with_cost(env, term, &mut fuel).expect("instrumented evaluation exhausted fuel")
}

fn whnf(env: &Env, term: &Term, fuel: &mut Fuel, cost: &mut Cost) -> Result<Term, ReduceError> {
    let mut current = term.clone();
    loop {
        if !fuel.tick() {
            return Err(ReduceError::OutOfFuel);
        }
        match current {
            Term::Var(x) => match env.lookup_definition(x) {
                Some(definition) => {
                    cost.delta += 1;
                    current = (**definition).clone();
                }
                None => return Ok(Term::Var(x)),
            },
            Term::Let { binder, bound, body, .. } => {
                cost.zeta += 1;
                current = subst(&body, binder, &bound);
            }
            Term::App { func, arg } => {
                let func_whnf = whnf(env, &func, fuel, cost)?;
                match func_whnf {
                    Term::Lam { binder, body, .. } => {
                        cost.applications += 1;
                        current = subst(&body, binder, &arg);
                    }
                    other => return Ok(Term::App { func: other.rc(), arg }),
                }
            }
            Term::Fst(e) => {
                let inner = whnf(env, &e, fuel, cost)?;
                match inner {
                    Term::Pair { first, .. } => {
                        cost.projection += 1;
                        current = (*first).clone();
                    }
                    other => return Ok(Term::Fst(other.rc())),
                }
            }
            Term::Snd(e) => {
                let inner = whnf(env, &e, fuel, cost)?;
                match inner {
                    Term::Pair { second, .. } => {
                        cost.projection += 1;
                        current = (*second).clone();
                    }
                    other => return Ok(Term::Snd(other.rc())),
                }
            }
            Term::If { scrutinee, then_branch, else_branch } => {
                let s = whnf(env, &scrutinee, fuel, cost)?;
                match s {
                    Term::BoolLit(true) => {
                        cost.conditional += 1;
                        current = (*then_branch).clone();
                    }
                    Term::BoolLit(false) => {
                        cost.conditional += 1;
                        current = (*else_branch).clone();
                    }
                    other => {
                        return Ok(Term::If { scrutinee: other.rc(), then_branch, else_branch })
                    }
                }
            }
            done => return Ok(done),
        }
    }
}

fn normalize(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
    cost: &mut Cost,
) -> Result<Term, ReduceError> {
    let head = whnf(env, term, fuel, cost)?;
    Ok(match head {
        Term::Var(_) | Term::Sort(_) | Term::BoolTy | Term::BoolLit(_) => head,
        Term::Pi { binder, domain, codomain } => Term::Pi {
            binder,
            domain: normalize(env, &domain, fuel, cost)?.rc(),
            codomain: normalize(env, &codomain, fuel, cost)?.rc(),
        },
        Term::Lam { binder, domain, body } => {
            cost.functions_built += 1;
            Term::Lam {
                binder,
                domain: normalize(env, &domain, fuel, cost)?.rc(),
                body: normalize(env, &body, fuel, cost)?.rc(),
            }
        }
        Term::App { func, arg } => Term::App {
            func: normalize(env, &func, fuel, cost)?.rc(),
            arg: normalize(env, &arg, fuel, cost)?.rc(),
        },
        Term::Let { .. } => unreachable!("whnf eliminates let"),
        Term::Sigma { binder, first, second } => Term::Sigma {
            binder,
            first: normalize(env, &first, fuel, cost)?.rc(),
            second: normalize(env, &second, fuel, cost)?.rc(),
        },
        Term::Pair { first, second, annotation } => {
            cost.pairs_built += 1;
            Term::Pair {
                first: normalize(env, &first, fuel, cost)?.rc(),
                second: normalize(env, &second, fuel, cost)?.rc(),
                annotation: normalize(env, &annotation, fuel, cost)?.rc(),
            }
        }
        Term::Fst(e) => Term::Fst(normalize(env, &e, fuel, cost)?.rc()),
        Term::Snd(e) => Term::Snd(normalize(env, &e, fuel, cost)?.rc()),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: normalize(env, &scrutinee, fuel, cost)?.rc(),
            then_branch: normalize(env, &then_branch, fuel, cost)?.rc(),
            else_branch: normalize(env, &else_branch, fuel, cost)?.rc(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::prelude;
    use crate::subst::alpha_eq;
    use cccc_util::trace;

    fn run(term: &Term) -> (Term, Cost) {
        evaluate_with_cost_default(&Env::new(), term)
    }

    #[test]
    fn beta_steps_are_counted() {
        let (value, cost) = run(&app(lam("x", bool_ty(), var("x")), tt()));
        assert!(alpha_eq(&value, &tt()));
        assert_eq!(cost.applications, 1);
        assert_eq!(cost.total_steps(), 1);
    }

    #[test]
    fn all_rule_counters_fire() {
        let term = let_(
            "p",
            sigma("x", bool_ty(), bool_ty()),
            pair(tt(), ff(), sigma("x", bool_ty(), bool_ty())),
            ite(fst(var("p")), snd(var("p")), tt()),
        );
        let (value, cost) = run(&term);
        assert!(alpha_eq(&value, &ff()));
        assert_eq!(cost.zeta, 1);
        assert_eq!(cost.projection, 2);
        assert_eq!(cost.conditional, 1);
        assert_eq!(cost.applications, 0);
    }

    #[test]
    fn delta_steps_count_definition_unfolding() {
        let env = Env::new().with_definition(cccc_util::Symbol::intern("flag"), tt(), bool_ty());
        let mut fuel = Fuel::default();
        let (_, cost) = evaluate_with_cost(&env, &ite(var("flag"), ff(), tt()), &mut fuel).unwrap();
        assert_eq!(cost.delta, 1);
        assert_eq!(cost.conditional, 1);
    }

    #[test]
    fn instrumented_and_plain_normalization_agree() {
        for (entry, expected) in prelude::ground_corpus() {
            let (value, cost) = run(&entry.term);
            assert!(alpha_eq(&value, &bool_lit(expected)), "{}", entry.name);
            assert!(cost.total_steps() > 0, "{} took no steps", entry.name);
            let plain = crate::reduce::normalize_default(&Env::new(), &entry.term);
            assert!(alpha_eq(&plain, &value));
        }
    }

    #[test]
    fn cost_display_and_addition() {
        let (_, a) = run(&app(prelude::not_fn(), tt()));
        let (_, b) = run(&app(prelude::not_fn(), ff()));
        let sum = a + b;
        assert_eq!(sum.applications, a.applications + b.applications);
        assert!(sum.to_string().contains("β="));
        assert!(sum.to_string().contains("functions="));
    }

    #[test]
    fn church_multiplication_costs_grow_with_operands() {
        let program = |n: usize| {
            app(
                prelude::church_is_even(),
                app(
                    app(prelude::church_mul(), prelude::church_numeral(n)),
                    prelude::church_numeral(n),
                ),
            )
        };
        let (_, small) = run(&program(2));
        let (_, large) = run(&program(5));
        assert!(large.total_steps() > small.total_steps());
    }

    #[test]
    fn traced_evaluation_records_a_cost_event() {
        let term = app(lam("x", bool_ty(), var("x")), tt());
        let ((), built) = trace::capture(|| {
            run(&term);
        });
        let events: Vec<_> = built.events.iter().filter(|e| e.name == "cost.cc").collect();
        assert_eq!(events.len(), 1);
        assert!(events[0].counters.contains(&("applications", 1)));
    }
}
