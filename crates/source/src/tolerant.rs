//! Keep-going type checking for CC: collect *every* error, not just the
//! first.
//!
//! [`infer_tolerant`] mirrors the rules of [`crate::typecheck`] but never
//! aborts. Each violation is recorded as a [`Diagnostic`] — with a stable
//! error code, the primary span from the [`crate::spans`] side-table, and
//! related-span notes such as "expected type came from this annotation" —
//! and checking resumes at a recovery point with the **error sentinel**:
//! the unparseable variable `<error>`, whose type unifies with anything.
//!
//! ## The sentinel
//!
//! `<error>` cannot lex as an identifier (see [`crate::parse`]), so it never
//! collides with a user-written name. A term or type that mentions it is
//! *poisoned* ([`is_poisoned`] — an O(1) query on the hash-consed free-var
//! metadata). The tolerant checker treats poisoned types as equal to
//! everything, which stops one genuine error from cascading into dozens of
//! follow-on mismatches; this is the classic `TyError`/`Ty_Err` recovery
//! scheme of production compilers.
//!
//! ## Recovery points
//!
//! - an ill-typed `let` binding poisons that binding: the body is checked
//!   with the binder held abstract at its declared annotation (the
//!   definition is *not* unfolded), and the binder is replaced by the
//!   sentinel in the result type so the damage is visible downstream;
//! - an application of a non-function (or projection of a non-pair) yields
//!   the sentinel type after still checking the argument (operand errors
//!   are reported even when the operator is broken);
//! - a failed conversion check reports the mismatch and then *accepts* the
//!   term, so each mismatch is reported exactly once;
//! - fuel exhaustion inside normalization is reported (`E0009`) and the
//!   fuel tank is refilled, so one diverging type does not starve the rest
//!   of the program of diagnostics.
//!
//! On well-typed input the tolerant checker returns no diagnostics and a
//! type definitionally equal to the strict checker's — pinned by tests.
//!
//! ## Error codes
//!
//! | Code | Meaning |
//! |---|---|
//! | `E0001` | unbound variable |
//! | `E0002` | the universe `□` has no type |
//! | `E0003` | application of a non-function |
//! | `E0004` | projection of a non-pair |
//! | `E0005` | term used as a type is not a universe |
//! | `E0006` | pair annotation is not a Σ type |
//! | `E0008` | type mismatch |
//! | `E0009` | normalization ran out of fuel |
//! | `E0100` | parse error (reported by [`crate::parse`]) |

use crate::ast::{Term, Universe};
use crate::env::Env;
use crate::equiv::{equiv_with_engine, Engine};
use crate::pretty::term_to_string;
use crate::spans;
use crate::subst::{occurs_free, subst};
use cccc_util::diag::Diagnostic;
use cccc_util::fuel::Fuel;
use cccc_util::span::Span;
use cccc_util::symbol::Symbol;

/// The reserved name of the error sentinel. It contains characters that can
/// never appear in a lexed identifier.
pub const ERROR_NAME: &str = "<error>";

/// The interned sentinel symbol.
pub fn error_symbol() -> Symbol {
    Symbol::intern(ERROR_NAME)
}

/// The sentinel term/type `<error>`, used both as the hole the tolerant
/// parser patches in and as the type every recovery point assigns.
pub fn error_term() -> Term {
    Term::Var(error_symbol())
}

/// True when `term` mentions the error sentinel anywhere (O(1) via the
/// interner's cached free-variable set).
pub fn is_poisoned(term: &Term) -> bool {
    occurs_free(error_symbol(), term)
}

/// True when any declared type or definition in `env` is poisoned.
pub fn env_is_poisoned(env: &Env) -> bool {
    use crate::env::Decl;
    env.iter().any(|decl| match decl {
        Decl::Assumption { ty, .. } => is_poisoned(ty),
        Decl::Definition { ty, term, .. } => is_poisoned(ty) || is_poisoned(term),
    })
}

/// The result of a tolerant run: the (possibly poisoned) type together with
/// every diagnostic collected along the way.
#[derive(Clone, Debug)]
pub struct TolerantOutcome {
    /// The inferred type; mentions `<error>` wherever recovery happened.
    pub ty: Term,
    /// All diagnostics, in source order of discovery.
    pub diagnostics: Vec<Diagnostic>,
}

impl TolerantOutcome {
    /// True when no error-severity diagnostic was produced.
    pub fn is_clean(&self) -> bool {
        !self.diagnostics.iter().any(Diagnostic::is_error)
    }
}

/// Infers the type of `term` under `env`, collecting every type error
/// instead of stopping at the first.
pub fn infer_tolerant(env: &Env, term: &Term) -> TolerantOutcome {
    infer_tolerant_with_engine(env, term, Engine::Nbe)
}

/// [`infer_tolerant`] through an explicitly chosen equivalence engine.
pub fn infer_tolerant_with_engine(env: &Env, term: &Term, engine: Engine) -> TolerantOutcome {
    let mut checker = Tolerant { fuel: Fuel::default(), engine, diagnostics: Vec::new() };
    let ty = checker.infer(env, term);
    TolerantOutcome { ty, diagnostics: checker.diagnostics }
}

struct Tolerant {
    fuel: Fuel,
    engine: Engine,
    diagnostics: Vec<Diagnostic>,
}

impl Tolerant {
    fn report(&mut self, code: &str, message: String, span: Option<Span>) {
        let mut diagnostic = Diagnostic::error(message).with_code(code);
        if let Some(span) = span {
            diagnostic = diagnostic.with_span(span);
        }
        self.diagnostics.push(diagnostic);
    }

    /// Weak-head normalizes `term`; on fuel exhaustion reports `E0009`,
    /// refills the tank, and recovers with the sentinel.
    fn head_normal(&mut self, env: &Env, term: &Term, at: &Term) -> Term {
        let result = match self.engine {
            Engine::Nbe => crate::nbe::whnf_nbe(env, term, &mut self.fuel),
            Engine::Step => crate::reduce::whnf(env, term, &mut self.fuel),
        };
        match result {
            Ok(normal) => normal,
            Err(error) => {
                self.report("E0009", error.to_string(), spans::span_of(at));
                self.fuel = Fuel::default();
                error_term()
            }
        }
    }

    /// Checks `term` against `expected`. Poisoned types unify with
    /// anything; a genuine mismatch is reported once (with the expected
    /// type's origin as a related span when the parser saw it) and then
    /// accepted.
    fn check(&mut self, env: &Env, term: &Term, expected: &Term) -> bool {
        let found = self.infer(env, term);
        if is_poisoned(&found) || is_poisoned(expected) {
            return true;
        }
        match equiv_with_engine(env, &found, expected, &mut self.fuel, self.engine) {
            Ok(true) => true,
            Ok(false) => {
                let mut diagnostic = Diagnostic::error(format!(
                    "type mismatch: `{}` has type `{}` but `{}` was expected",
                    term_to_string(term),
                    term_to_string(&found),
                    term_to_string(expected),
                ))
                .with_code("E0008")
                .with_note(format!("expected `{}`", term_to_string(expected)))
                .with_note(format!("found    `{}`", term_to_string(&found)));
                if let Some(span) = spans::span_of(term) {
                    diagnostic = diagnostic.with_span(span);
                }
                if let Some(origin) = spans::span_of(expected) {
                    diagnostic =
                        diagnostic.with_related(origin, "expected type came from this annotation");
                }
                self.diagnostics.push(diagnostic);
                false
            }
            Err(error) => {
                self.report("E0009", error.to_string(), spans::span_of(term));
                self.fuel = Fuel::default();
                true
            }
        }
    }

    /// Infers the universe `term` lives in; `None` means recovery already
    /// happened (either `term` is poisoned or a diagnostic was reported).
    fn universe(&mut self, env: &Env, term: &Term) -> Option<Universe> {
        if matches!(term, Term::Sort(Universe::Box)) {
            return Some(Universe::Box);
        }
        let ty = self.infer(env, term);
        if is_poisoned(&ty) {
            return None;
        }
        let ty_whnf = self.head_normal(env, &ty, term);
        match ty_whnf {
            Term::Sort(u) => Some(u),
            _ if is_poisoned(&ty_whnf) => None,
            other => {
                self.report(
                    "E0005",
                    format!(
                        "`{}` is used as a type but has type `{}`, not a universe",
                        term_to_string(term),
                        term_to_string(&other)
                    ),
                    spans::span_of(term),
                );
                None
            }
        }
    }

    fn infer(&mut self, env: &Env, term: &Term) -> Term {
        match term {
            // The sentinel types as itself, silently: whoever introduced it
            // already reported.
            Term::Var(x) if *x == error_symbol() => error_term(),
            Term::Var(x) => match env.lookup_type(*x) {
                Some(ty) => (**ty).clone(),
                None => {
                    self.report("E0001", format!("unbound variable `{x}`"), spans::span_of(term));
                    error_term()
                }
            },
            Term::Sort(Universe::Star) => Term::Sort(Universe::Box),
            Term::Sort(Universe::Box) => {
                self.report(
                    "E0002",
                    "the universe □ has no type".to_string(),
                    spans::span_of(term),
                );
                error_term()
            }
            Term::BoolTy => Term::Sort(Universe::Star),
            Term::BoolLit(_) => Term::BoolTy,
            Term::If { scrutinee, then_branch, else_branch } => {
                self.check(env, scrutinee, &Term::BoolTy);
                let then_ty = self.infer(env, then_branch);
                if is_poisoned(&then_ty) {
                    // Still surface the else branch's own errors.
                    self.infer(env, else_branch);
                } else {
                    self.check(env, else_branch, &then_ty);
                }
                then_ty
            }
            Term::Pi { binder, domain, codomain } => {
                self.universe(env, domain);
                let inner = env.with_assumption(*binder, (**domain).clone());
                match self.universe(&inner, codomain) {
                    Some(u) => Term::Sort(u),
                    None => error_term(),
                }
            }
            Term::Sigma { binder, first, second } => {
                let first_universe = self.universe(env, first);
                let inner = env.with_assumption(*binder, (**first).clone());
                let second_universe = self.universe(&inner, second);
                match (first_universe, second_universe) {
                    (Some(Universe::Star), Some(Universe::Star)) => Term::Sort(Universe::Star),
                    (Some(_), Some(_)) => Term::Sort(Universe::Box),
                    _ => error_term(),
                }
            }
            Term::Lam { binder, domain, body } => {
                self.universe(env, domain);
                let inner = env.with_assumption(*binder, (**domain).clone());
                let body_ty = self.infer(&inner, body);
                if !is_poisoned(&body_ty) {
                    // Mirror the strict checker: the resulting Π must be
                    // well-formed.
                    self.universe(&inner, &body_ty);
                }
                Term::Pi { binder: *binder, domain: domain.clone(), codomain: body_ty.rc() }
            }
            Term::App { func, arg } => {
                let func_ty = self.infer(env, func);
                if is_poisoned(&func_ty) {
                    self.infer(env, arg);
                    return error_term();
                }
                let func_ty_whnf = self.head_normal(env, &func_ty, func);
                match func_ty_whnf {
                    Term::Pi { binder, domain, codomain } => {
                        self.check(env, arg, &domain);
                        subst(&codomain, binder, arg)
                    }
                    _ if is_poisoned(&func_ty_whnf) => {
                        self.infer(env, arg);
                        error_term()
                    }
                    other => {
                        self.report(
                            "E0003",
                            format!(
                                "`{}` is applied but has non-function type `{}`",
                                term_to_string(func),
                                term_to_string(&other)
                            ),
                            spans::span_of(func),
                        );
                        self.infer(env, arg);
                        error_term()
                    }
                }
            }
            Term::Let { binder, annotation, bound, body } => {
                let annotation_ok = self.universe(env, annotation).is_some();
                let bound_ok = annotation_ok && self.check(env, bound, annotation);
                if bound_ok && !is_poisoned(bound) && !is_poisoned(annotation) {
                    let inner =
                        env.with_definition(*binder, (**bound).clone(), (**annotation).clone());
                    let body_ty = self.infer(&inner, body);
                    subst(&body_ty, *binder, bound)
                } else {
                    // Poison the binding: hold the binder abstract at its
                    // declared annotation (never unfold a bad definition),
                    // then replace it with the sentinel in the result type
                    // so downstream consumers see the damage.
                    let assumed = if annotation_ok { (**annotation).clone() } else { error_term() };
                    let inner = env.with_assumption(*binder, assumed);
                    let body_ty = self.infer(&inner, body);
                    subst(&body_ty, *binder, &error_term())
                }
            }
            Term::Pair { first, second, annotation } => {
                self.universe(env, annotation);
                if is_poisoned(annotation) {
                    self.infer(env, first);
                    self.infer(env, second);
                    return error_term();
                }
                let annotation_whnf = self.head_normal(env, annotation, annotation);
                match annotation_whnf {
                    Term::Sigma { binder, first: first_ty, second: second_ty } => {
                        self.check(env, first, &first_ty);
                        let expected_second = subst(&second_ty, binder, first);
                        self.check(env, second, &expected_second);
                        (**annotation).clone()
                    }
                    _ if is_poisoned(&annotation_whnf) => {
                        self.infer(env, first);
                        self.infer(env, second);
                        error_term()
                    }
                    _ => {
                        self.report(
                            "E0006",
                            format!(
                                "pair annotation `{}` is not a Σ type",
                                term_to_string(annotation)
                            ),
                            spans::span_of(annotation),
                        );
                        self.infer(env, first);
                        self.infer(env, second);
                        error_term()
                    }
                }
            }
            Term::Fst(e) => match self.projection_sigma(env, e) {
                Some((_, first_ty, _)) => (*first_ty).clone(),
                None => error_term(),
            },
            Term::Snd(e) => match self.projection_sigma(env, e) {
                Some((binder, _, second_ty)) => subst(&second_ty, binder, &Term::Fst(e.clone())),
                None => error_term(),
            },
        }
    }

    /// Shared `fst`/`snd` support: the scrutinee's type must head-normalize
    /// to a Σ; reports `E0004` otherwise.
    fn projection_sigma(
        &mut self,
        env: &Env,
        e: &crate::ast::RcTerm,
    ) -> Option<(Symbol, crate::ast::RcTerm, crate::ast::RcTerm)> {
        let e_ty = self.infer(env, e);
        if is_poisoned(&e_ty) {
            return None;
        }
        let e_ty_whnf = self.head_normal(env, &e_ty, e);
        match e_ty_whnf {
            Term::Sigma { binder, first, second } => Some((binder, first, second)),
            _ if is_poisoned(&e_ty_whnf) => None,
            other => {
                self.report(
                    "E0004",
                    format!(
                        "`{}` is projected but has non-pair type `{}`",
                        term_to_string(e),
                        term_to_string(&other)
                    ),
                    spans::span_of(e),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::equiv::definitionally_equal;
    use crate::typecheck::infer;

    fn codes(outcome: &TolerantOutcome) -> Vec<&str> {
        outcome.diagnostics.iter().filter_map(|d| d.code.as_deref()).collect()
    }

    #[test]
    fn sentinel_cannot_lex() {
        assert!(crate::parse::parse_term(ERROR_NAME).is_err());
    }

    #[test]
    fn well_typed_terms_agree_with_strict_checker() {
        for entry in crate::prelude::corpus() {
            let env = Env::new();
            let strict = infer(&env, &entry.term).expect("corpus terms are well-typed");
            let tolerant = infer_tolerant(&env, &entry.term);
            assert!(
                tolerant.diagnostics.is_empty(),
                "{}: spurious diagnostics {:?}",
                entry.name,
                tolerant.diagnostics
            );
            assert!(
                definitionally_equal(&env, &tolerant.ty, &strict),
                "{}: tolerant type `{}` differs from strict `{}`",
                entry.name,
                tolerant.ty,
                strict
            );
        }
    }

    #[test]
    fn unbound_variable_reports_and_poisons() {
        let outcome = infer_tolerant(&Env::new(), &var("ghost"));
        assert_eq!(codes(&outcome), vec!["E0001"]);
        assert!(is_poisoned(&outcome.ty));
    }

    #[test]
    fn multiple_independent_errors_are_all_reported() {
        // Three separate errors: unbound `a`, true applied, fst of true.
        let t = ite(app(tt(), var("a")), fst(tt()), tt());
        let outcome = infer_tolerant(&Env::new(), &t);
        let found = codes(&outcome);
        assert!(found.contains(&"E0003"), "{found:?}");
        assert!(found.contains(&"E0001"), "{found:?}");
        assert!(found.contains(&"E0004"), "{found:?}");
    }

    #[test]
    fn bad_let_binding_poisons_but_body_is_still_checked() {
        // `let b = * : Bool in fst b` — the binding is ill-typed (E0008) and
        // the body has its own error (fst of a Bool-annotated binder, E0004).
        let t = let_("b", bool_ty(), star(), fst(var("b")));
        let outcome = infer_tolerant(&Env::new(), &t);
        let found = codes(&outcome);
        assert!(found.contains(&"E0008"), "{found:?}");
        assert!(found.contains(&"E0004"), "{found:?}");
    }

    #[test]
    fn poisoned_type_unifies_with_anything() {
        // Only ONE error: the unbound variable. Its poisoned type must not
        // cascade into a mismatch against Bool.
        let t = ite(var("ghost"), tt(), ff());
        let outcome = infer_tolerant(&Env::new(), &t);
        assert_eq!(codes(&outcome), vec!["E0001"]);
    }

    #[test]
    fn mismatch_is_reported_once_then_accepted() {
        let not = lam("b", bool_ty(), ite(var("b"), ff(), tt()));
        let outcome = infer_tolerant(&Env::new(), &app(not, star()));
        assert_eq!(codes(&outcome), vec!["E0008"]);
    }

    #[test]
    fn box_as_term_reports_e0002() {
        let outcome = infer_tolerant(&Env::new(), &app(boxu(), tt()));
        assert!(codes(&outcome).contains(&"E0002"));
    }

    #[test]
    fn pair_annotation_not_sigma_reports_e0006() {
        let outcome = infer_tolerant(&Env::new(), &pair(tt(), ff(), bool_ty()));
        assert_eq!(codes(&outcome), vec!["E0006"]);
    }

    #[test]
    fn env_poison_detection() {
        let clean = Env::new().with_assumption(Symbol::intern("A"), star());
        assert!(!env_is_poisoned(&clean));
        let dirty = clean.with_assumption(Symbol::intern("x"), error_term());
        assert!(env_is_poisoned(&dirty));
    }
}
