//! The typed closure-conversion translation from CC to CC-CC (Figure 9).
//!
//! The translation is defined on typing derivations; operationally this
//! means the translator is *type-directed*: every case is a homomorphic map
//! except `[CC-Lam]`, which must
//!
//! 1. infer the Π type of the λ-abstraction (rule `[CC-Lam]`'s premises),
//! 2. compute the dependency-ordered free variables of the function *and*
//!    its type with the metafunction `FV` (Figure 10),
//! 3. build the environment telescope `Σ (xi : Ai⁺ …)` and the environment
//!    tuple `⟨xi …⟩`,
//! 4. produce closed code that re-binds the free variables by projecting
//!    from its environment parameter — both in the body *and* in the
//!    argument's type annotation (this is the dependently typed twist), and
//! 5. pair the code with the environment into a closure.
//!
//! Type preservation (Theorem 5.6) is validated mechanically by
//! [`crate::verify`] and the integration test suite.
//!
//! Every constructed target term goes through the CC-CC smart constructors
//! and is therefore interned on creation: the duplicated environment types
//! and projection chains the translation mass-produces land on shared
//! nodes, the `FV` metafunction (step 2) reads cached free-variable
//! metadata instead of traversing, and the re-check of the output hits the
//! `[Code]` and conversion memos for every repeated code block.

use crate::fv::{dependent_free_vars, FvError};
use cccc_source as src;
use cccc_target as tgt;
use cccc_target::tuple;
use cccc_util::symbol::Symbol;
use std::fmt;

/// Errors produced by the closure-conversion translation.
#[derive(Clone, Debug)]
pub enum TranslateError {
    /// The free-variable analysis failed (an unbound variable).
    FreeVariables(FvError),
    /// The source term is ill-typed; the translation is only defined on
    /// well-typed terms (it is defined on typing derivations).
    SourceType(src::TypeError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::FreeVariables(e) => write!(f, "free-variable analysis failed: {e}"),
            TranslateError::SourceType(e) => write!(f, "source term is ill-typed: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<FvError> for TranslateError {
    fn from(e: FvError) -> TranslateError {
        TranslateError::FreeVariables(e)
    }
}

impl From<src::TypeError> for TranslateError {
    fn from(e: src::TypeError) -> TranslateError {
        TranslateError::SourceType(e)
    }
}

/// Result type for the translation.
pub type Result<T> = std::result::Result<T, TranslateError>;

/// Translates a source universe to the identical target universe.
pub fn translate_universe(u: src::Universe) -> tgt::Universe {
    match u {
        src::Universe::Star => tgt::Universe::Star,
        src::Universe::Box => tgt::Universe::Box,
    }
}

/// Closure-converts the well-typed source term `term` under `env`
/// (the judgment `Γ ⊢ e : A ⇝ e` of Figure 9).
///
/// # Errors
///
/// Returns a [`TranslateError`] if `term` is ill-typed under `env` or
/// mentions variables not bound in `env`.
pub fn translate(env: &src::Env, term: &src::Term) -> Result<tgt::Term> {
    Ok(match term {
        // [CC-Var]
        src::Term::Var(x) => tgt::Term::Var(*x),
        // [CC-*] (and the universe □, which only occurs as a classifier)
        src::Term::Sort(u) => tgt::Term::Sort(translate_universe(*u)),
        // Ground types.
        src::Term::BoolTy => tgt::Term::BoolTy,
        src::Term::BoolLit(b) => tgt::Term::BoolLit(*b),
        src::Term::If { scrutinee, then_branch, else_branch } => tgt::Term::If {
            scrutinee: translate(env, scrutinee)?.rc(),
            then_branch: translate(env, then_branch)?.rc(),
            else_branch: translate(env, else_branch)?.rc(),
        },
        // [CC-Prod-*] / [CC-Prod-□]: Π types translate to closure types.
        src::Term::Pi { binder, domain, codomain } => {
            let inner = env.with_assumption(*binder, (**domain).clone());
            tgt::Term::Pi {
                binder: *binder,
                domain: translate(env, domain)?.rc(),
                codomain: translate(&inner, codomain)?.rc(),
            }
        }
        // [CC-Sig-*] / [CC-Sig-□]
        src::Term::Sigma { binder, first, second } => {
            let inner = env.with_assumption(*binder, (**first).clone());
            tgt::Term::Sigma {
                binder: *binder,
                first: translate(env, first)?.rc(),
                second: translate(&inner, second)?.rc(),
            }
        }
        // [CC-Lam]: the interesting case.
        src::Term::Lam { binder, domain, body } => {
            translate_lambda(env, term, *binder, domain, body)?
        }
        // [CC-App]: application is still the elimination form for closures.
        src::Term::App { func, arg } => {
            tgt::Term::App { func: translate(env, func)?.rc(), arg: translate(env, arg)?.rc() }
        }
        // [CC-Let]
        src::Term::Let { binder, annotation, bound, body } => {
            let inner = env.with_definition(*binder, (**bound).clone(), (**annotation).clone());
            tgt::Term::Let {
                binder: *binder,
                annotation: translate(env, annotation)?.rc(),
                bound: translate(env, bound)?.rc(),
                body: translate(&inner, body)?.rc(),
            }
        }
        // [CC-Pair]
        src::Term::Pair { first, second, annotation } => tgt::Term::Pair {
            first: translate(env, first)?.rc(),
            second: translate(env, second)?.rc(),
            annotation: translate(env, annotation)?.rc(),
        },
        // [CC-Fst] / [CC-Snd]
        src::Term::Fst(e) => tgt::Term::Fst(translate(env, e)?.rc()),
        src::Term::Snd(e) => tgt::Term::Snd(translate(env, e)?.rc()),
    })
}

/// The `[CC-Lam]` case: translates `λ binder : domain. body` into a closure.
fn translate_lambda(
    env: &src::Env,
    lambda: &src::Term,
    binder: Symbol,
    domain: &src::Term,
    body: &src::Term,
) -> Result<tgt::Term> {
    // The Π type of the function (needed because FV is computed for both the
    // function and its type — the codomain may mention free variables the
    // body does not).
    let function_ty = src::typecheck::infer(env, lambda)?;

    // xi : Ai … = FV(λ x : A. e, Π x : A. B, Γ)
    let free = dependent_free_vars(env, &[lambda, &function_ty])?;

    // Translate the types of the free variables; the telescope binds earlier
    // variables for later types, so translating under Γ is enough.
    let mut entries: Vec<(Symbol, tgt::Term)> = Vec::with_capacity(free.len());
    for (x, a) in &free {
        entries.push((*x, translate(env, a)?));
    }

    // Σ (xi : Ai⁺ …), terminated by the unit type.
    let environment_ty = tuple::telescope_type(&entries);
    // ⟨xi …⟩ — the dynamically constructed environment.
    let environment = tuple::variables_tuple(&entries);

    // The environment parameter of the code.
    let env_param = Symbol::fresh("n");
    let env_var = tgt::Term::Var(env_param);

    // x : let ⟨xi …⟩ = n in A⁺   — the argument annotation re-binds the free
    // variables so the (possibly dependent) domain remains well-scoped.
    let domain_translated = translate(env, domain)?;
    let argument_annotation = tuple::project_bindings(&env_var, &entries, domain_translated);

    // let ⟨xi …⟩ = n in e⁺
    let inner_env = env.with_assumption(binder, domain.clone());
    let body_translated = translate(&inner_env, body)?;
    let code_body = tuple::project_bindings(&env_var, &entries, body_translated);

    let code = tgt::Term::Code {
        env_binder: env_param,
        env_ty: environment_ty.rc(),
        arg_binder: binder,
        arg_ty: argument_annotation.rc(),
        body: code_body.rc(),
    };

    Ok(tgt::Term::Closure { code: code.rc(), env: environment.rc() })
}

/// Translates a whole environment `⊢ Γ ⇝ Γ` (the second judgment of
/// Figure 9): each entry's type (and definition) is translated under the
/// prefix that precedes it.
///
/// # Errors
///
/// Returns a [`TranslateError`] if any entry is ill-typed.
pub fn translate_env(env: &src::Env) -> Result<tgt::Env> {
    let mut source_prefix = src::Env::new();
    let mut translated = tgt::Env::new();
    for decl in env.iter() {
        match decl {
            src::Decl::Assumption { name, ty } => {
                let ty_translated = translate(&source_prefix, ty)?;
                translated.push_assumption(*name, ty_translated);
                source_prefix.push_assumption(*name, (**ty).clone());
            }
            src::Decl::Definition { name, ty, term } => {
                let ty_translated = translate(&source_prefix, ty)?;
                let term_translated = translate(&source_prefix, term)?;
                translated.push_definition(*name, term_translated, ty_translated);
                source_prefix.push_definition(*name, (**term).clone(), (**ty).clone());
            }
        }
    }
    Ok(translated)
}

/// Translates a closed, well-typed source program and returns the pair of
/// the translated term and the translation of its source type.
///
/// # Errors
///
/// Returns a [`TranslateError`] if the program is ill-typed.
pub fn translate_program(term: &src::Term) -> Result<(tgt::Term, tgt::Term)> {
    let env = src::Env::new();
    let ty = src::typecheck::infer(&env, term)?;
    Ok((translate(&env, term)?, translate(&env, &ty)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccc_source::builder as s;
    use cccc_source::prelude;
    use cccc_target::builder as t;
    use cccc_target::equiv::definitionally_equal as target_eq;
    use cccc_target::reduce::normalize_default as target_normalize;
    use cccc_target::subst::{alpha_eq as target_alpha_eq, is_closed};

    fn empty_src() -> src::Env {
        src::Env::new()
    }

    fn empty_tgt() -> tgt::Env {
        tgt::Env::new()
    }

    #[test]
    fn variables_sorts_and_ground_terms_are_homomorphic() {
        let env = empty_src();
        assert!(target_alpha_eq(&translate(&env, &s::star()).unwrap(), &t::star()));
        assert!(target_alpha_eq(&translate(&env, &s::bool_ty()).unwrap(), &t::bool_ty()));
        assert!(target_alpha_eq(&translate(&env, &s::tt()).unwrap(), &t::tt()));
        assert!(target_alpha_eq(&translate(&env, &s::var("x")).unwrap(), &t::var("x")));
    }

    #[test]
    fn pi_types_translate_to_closure_types_structurally() {
        let env = empty_src();
        let translated = translate(&env, &prelude::poly_id_ty()).unwrap();
        let expected = t::pi("A", t::star(), t::pi("x", t::var("A"), t::var("A")));
        assert!(target_alpha_eq(&translated, &expected));
    }

    #[test]
    fn closed_lambda_gets_an_empty_environment() {
        // λ x : Bool. x  ⇝  ⟪λ (n : 1, x : let ⟨⟩ = n in Bool). …, ⟨⟩⟫
        let translated = translate(&empty_src(), &s::lam("x", s::bool_ty(), s::var("x"))).unwrap();
        match &translated {
            tgt::Term::Closure { code, env } => {
                assert!(target_alpha_eq(env, &t::unit_val()));
                assert!(is_closed(code), "code must be closed");
                match &**code {
                    tgt::Term::Code { env_ty, .. } => {
                        assert!(target_alpha_eq(env_ty, &t::unit_ty()))
                    }
                    other => panic!("expected code, got {other}"),
                }
            }
            other => panic!("expected closure, got {other}"),
        }
    }

    #[test]
    fn free_variables_are_captured_in_the_environment() {
        // Under Γ = y : Bool, the translation of λ x : Bool. y captures y.
        let env = empty_src().with_assumption(Symbol::intern("y"), s::bool_ty());
        let translated = translate(&env, &s::lam("x", s::bool_ty(), s::var("y"))).unwrap();
        match &translated {
            tgt::Term::Closure { code, env: closure_env } => {
                assert!(is_closed(code), "code must be closed even with captured variables");
                // The environment tuple mentions y.
                assert!(cccc_target::subst::occurs_free(Symbol::intern("y"), closure_env));
            }
            other => panic!("expected closure, got {other}"),
        }
    }

    #[test]
    fn polymorphic_identity_translates_to_the_papers_nested_closures() {
        let translated = translate(&empty_src(), &prelude::poly_id()).unwrap();
        // Two closures, two pieces of code, and every piece of code closed.
        assert_eq!(translated.closure_count(), 2);
        assert_eq!(translated.code_count(), 2);
        let mut all_code_closed = true;
        translated.visit(&mut |node| {
            if matches!(node, tgt::Term::Code { .. }) && !is_closed(node) {
                all_code_closed = false;
            }
        });
        assert!(all_code_closed);
        // And it type checks at the translated type.
        let ty = tgt::typecheck::infer(&empty_tgt(), &translated).unwrap();
        let expected = translate(&empty_src(), &prelude::poly_id_ty()).unwrap();
        assert!(target_eq(&empty_tgt(), &ty, &expected), "got {ty}, expected {expected}");
    }

    #[test]
    fn applications_still_run_after_translation() {
        // (λ A : ⋆. λ x : A. x) Bool true ⇝ … ⊲* true
        let program = s::app(s::app(prelude::poly_id(), s::bool_ty()), s::tt());
        let translated = translate(&empty_src(), &program).unwrap();
        let value = target_normalize(&empty_tgt(), &translated);
        assert!(target_alpha_eq(&value, &t::tt()));
    }

    #[test]
    fn lets_pairs_and_projections_are_homomorphic() {
        let program = s::let_(
            "p",
            s::sigma("x", s::bool_ty(), s::bool_ty()),
            s::pair(s::tt(), s::ff(), s::sigma("x", s::bool_ty(), s::bool_ty())),
            s::fst(s::var("p")),
        );
        let translated = translate(&empty_src(), &program).unwrap();
        assert!(matches!(translated, tgt::Term::Let { .. }));
        let value = target_normalize(&empty_tgt(), &translated);
        assert!(target_alpha_eq(&value, &t::tt()));
    }

    #[test]
    fn ill_typed_source_terms_are_rejected() {
        // The translation is type-directed at λ-abstractions, so an
        // ill-typed function body is detected there.
        let bad = s::lam("x", s::bool_ty(), s::app(s::tt(), s::ff()));
        assert!(matches!(translate(&empty_src(), &bad), Err(TranslateError::SourceType(_))));
        let unbound = s::lam("x", s::bool_ty(), s::var("ghost"));
        assert!(translate(&empty_src(), &unbound).is_err());
    }

    #[test]
    fn environment_translation_preserves_structure() {
        let env = empty_src()
            .with_assumption(Symbol::intern("A"), s::star())
            .with_assumption(Symbol::intern("x"), s::var("A"))
            .with_definition(Symbol::intern("b"), s::tt(), s::bool_ty());
        let translated = translate_env(&env).unwrap();
        assert_eq!(translated.len(), 3);
        assert!(tgt::typecheck::check_env(&translated).is_ok());
    }

    #[test]
    fn translate_program_returns_term_and_type() {
        let (term, ty) = translate_program(&prelude::poly_id()).unwrap();
        assert!(tgt::typecheck::check(&empty_tgt(), &term, &ty).is_ok());
    }

    #[test]
    fn translation_is_deterministic_up_to_alpha() {
        let a = translate(&empty_src(), &prelude::church_add()).unwrap();
        let b = translate(&empty_src(), &prelude::church_add()).unwrap();
        assert!(target_alpha_eq(&a, &b));
    }

    #[test]
    fn code_size_grows_but_lambda_count_matches_closure_count() {
        for entry in prelude::corpus() {
            let translated = translate(&empty_src(), &entry.term).unwrap();
            assert_eq!(
                entry.term.lambda_count(),
                translated.closure_count(),
                "`{}`: every λ must become exactly one closure",
                entry.name
            );
            assert!(translated.size() >= entry.term.size());
        }
    }
}
