//! Components, linking, and ground-value observation (§5.2).
//!
//! A *component* is a well-typed open term `Γ ⊢ e : A`. Linking is
//! substitution: a *closing substitution* `γ` maps every variable of `Γ` to
//! a closed term of the corresponding (γ-instantiated) type, and `γ(e)` is
//! the linked whole program. The correctness-of-separate-compilation theorem
//! relates linking-then-compiling with compiling-then-linking, observing the
//! results at the ground type `Bool` through the relation `≈`.

use crate::translate::{translate, Result as TranslateResult};
use cccc_source as src;
use cccc_target as tgt;
use cccc_util::symbol::Symbol;
use std::fmt;

/// A closing substitution `γ` for source components: an ordered list of
/// `(variable, closed term)` pairs covering an environment `Γ`.
pub type SourceSubstitution = Vec<(Symbol, src::Term)>;

/// A closing substitution for target components.
pub type TargetSubstitution = Vec<(Symbol, tgt::Term)>;

/// Errors produced when validating a closing substitution.
#[derive(Clone, Debug)]
pub enum LinkError {
    /// The substitution has no entry for a variable bound in `Γ`.
    MissingBinding(Symbol),
    /// A substituted term is not well-typed at the (instantiated) type the
    /// environment demands.
    IllTyped {
        /// The variable whose replacement failed to check.
        variable: Symbol,
        /// The type error, rendered.
        error: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::MissingBinding(x) => {
                write!(f, "closing substitution has no binding for `{x}`")
            }
            LinkError::IllTyped { variable, error } => {
                write!(f, "replacement for `{variable}` is ill-typed: {error}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Links a source component with a closing substitution: `γ(e)`.
pub fn link_source(term: &src::Term, substitution: &SourceSubstitution) -> src::Term {
    src::subst::subst_all(term, substitution)
}

/// Links a target component with a closing substitution: `γ(e)`.
pub fn link_target(term: &tgt::Term, substitution: &TargetSubstitution) -> tgt::Term {
    tgt::subst::subst_all(term, substitution)
}

/// Checks `Γ ⊢ γ`: every variable of `Γ` has a closed replacement of the
/// corresponding type (with earlier replacements substituted into it, so
/// dependent environments are handled).
///
/// # Errors
///
/// Returns a [`LinkError`] naming the first variable whose replacement is
/// missing or ill-typed.
pub fn check_source_substitution(
    env: &src::Env,
    substitution: &SourceSubstitution,
) -> std::result::Result<(), LinkError> {
    let mut applied: SourceSubstitution = Vec::new();
    for decl in env.iter() {
        let name = decl.name();
        let replacement = substitution
            .iter()
            .find(|(x, _)| *x == name)
            .map(|(_, e)| e.clone())
            .ok_or(LinkError::MissingBinding(name))?;
        let expected_ty = src::subst::subst_all(decl.ty(), &applied);
        src::typecheck::check(&src::Env::new(), &replacement, &expected_ty)
            .map_err(|e| LinkError::IllTyped { variable: name, error: e.to_string() })?;
        applied.push((name, replacement));
    }
    Ok(())
}

/// Pointwise translation of a closing substitution, `γ⁺`.
///
/// # Errors
///
/// Returns a translation error if any replacement is ill-typed.
pub fn translate_substitution(
    env: &src::Env,
    substitution: &SourceSubstitution,
) -> TranslateResult<TargetSubstitution> {
    // Replacements are closed, so they are translated in the empty
    // environment; `env` is only used to keep the entry order stable.
    let mut translated = Vec::with_capacity(substitution.len());
    let order: Vec<Symbol> = env.names();
    let mut remaining: Vec<(Symbol, src::Term)> = substitution.clone();
    // Translate in environment order first, then anything left over.
    for name in order {
        if let Some(position) = remaining.iter().position(|(x, _)| *x == name) {
            let (x, term) = remaining.remove(position);
            translated.push((x, translate(&src::Env::new(), &term)?));
        }
    }
    for (x, term) in remaining {
        translated.push((x, translate(&src::Env::new(), &term)?));
    }
    Ok(translated)
}

/// The observation relation `≈` on ground values (§5.2): two results are
/// related when they are the same boolean literal.
pub fn ground_values_related(source_value: &src::Term, target_value: &tgt::Term) -> bool {
    matches!(
        (source_value, target_value),
        (src::Term::BoolLit(a), tgt::Term::BoolLit(b)) if a == b
    )
}

/// Observes a closed source program of ground type by evaluating it to a
/// boolean, if it is one. Runs the NbE engine — observation only needs
/// the value, not a paper-faithful reduction sequence.
pub fn observe_source(term: &src::Term) -> Option<bool> {
    let value = src::nbe::normalize_nbe_default(&src::Env::new(), term);
    match value {
        src::Term::BoolLit(b) => Some(b),
        _ => None,
    }
}

/// Observes a closed target program of ground type through the NbE engine.
pub fn observe_target(term: &tgt::Term) -> Option<bool> {
    let value = tgt::nbe::normalize_nbe_default(&tgt::Env::new(), term);
    match value {
        tgt::Term::BoolLit(b) => Some(b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccc_source::builder as s;
    use cccc_source::prelude;

    fn sym(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn linking_substitutes_all_bindings() {
        let component = s::ite(s::var("flag"), s::var("yes"), s::ff());
        let gamma = vec![(sym("flag"), s::tt()), (sym("yes"), s::tt())];
        let linked = link_source(&component, &gamma);
        assert_eq!(observe_source(&linked), Some(true));
    }

    #[test]
    fn valid_substitutions_are_accepted() {
        let env = src::Env::new()
            .with_assumption(sym("A"), s::star())
            .with_assumption(sym("a"), s::var("A"));
        let gamma = vec![(sym("A"), s::bool_ty()), (sym("a"), s::tt())];
        assert!(check_source_substitution(&env, &gamma).is_ok());
    }

    #[test]
    fn missing_bindings_are_reported() {
        let env = src::Env::new().with_assumption(sym("x"), s::bool_ty());
        let err = check_source_substitution(&env, &Vec::new()).unwrap_err();
        assert!(matches!(err, LinkError::MissingBinding(_)));
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn ill_typed_replacements_are_reported() {
        let env = src::Env::new().with_assumption(sym("x"), s::bool_ty());
        let gamma = vec![(sym("x"), s::star())];
        let err = check_source_substitution(&env, &gamma).unwrap_err();
        assert!(matches!(err, LinkError::IllTyped { .. }));
    }

    #[test]
    fn dependent_substitutions_check_with_earlier_entries_instantiated() {
        // Γ = A : ⋆, a : A with γ(A) = Bool, γ(a) = true: `a`'s replacement
        // is checked against Bool, not against the variable A.
        let env = src::Env::new()
            .with_assumption(sym("A"), s::star())
            .with_assumption(sym("a"), s::var("A"));
        let good = vec![(sym("A"), s::bool_ty()), (sym("a"), s::tt())];
        assert!(check_source_substitution(&env, &good).is_ok());
        let bad = vec![(sym("A"), s::bool_ty()), (sym("a"), s::star())];
        assert!(check_source_substitution(&env, &bad).is_err());
    }

    #[test]
    fn translated_substitutions_are_pointwise_translations() {
        let env = src::Env::new()
            .with_assumption(sym("f"), prelude::poly_id_ty())
            .with_assumption(sym("b"), s::bool_ty());
        let gamma = vec![(sym("f"), prelude::poly_id()), (sym("b"), s::ff())];
        let translated = translate_substitution(&env, &gamma).unwrap();
        assert_eq!(translated.len(), 2);
        assert_eq!(translated[0].0, sym("f"));
        assert!(matches!(translated[0].1, tgt::Term::Closure { .. }));
        assert!(matches!(translated[1].1, tgt::Term::BoolLit(false)));
    }

    #[test]
    fn ground_observation_relates_equal_booleans_only() {
        assert!(ground_values_related(&src::Term::BoolLit(true), &tgt::Term::BoolLit(true)));
        assert!(!ground_values_related(&src::Term::BoolLit(true), &tgt::Term::BoolLit(false)));
        assert!(!ground_values_related(&src::Term::BoolTy, &tgt::Term::BoolLit(true)));
    }

    #[test]
    fn observation_of_non_ground_programs_is_none() {
        assert_eq!(observe_source(&prelude::poly_id()), None);
        let translated = translate(&src::Env::new(), &prelude::poly_id()).unwrap();
        assert_eq!(observe_target(&translated), None);
    }

    #[test]
    fn observing_ground_corpus_matches_expected_values() {
        for (entry, expected) in prelude::ground_corpus() {
            assert_eq!(observe_source(&entry.term), Some(expected), "{}", entry.name);
        }
    }
}
