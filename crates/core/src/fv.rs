//! The dependency-ordered free-variable metafunction `FV` (Figure 10).
//!
//! Closure conversion must collect, for each source function, the sequence of
//! its free variables *together with their types*, ordered so that the type
//! of each variable only refers to variables appearing earlier. The paper
//! defines `FV(e, B, Γ)` recursively: the free variables of a term and its
//! type may have types that mention further free variables, whose types may
//! mention still more, and so on — so the computation transitively closes
//! over Γ and then orders the result by Γ (which is already dependency
//! ordered, by well-formedness).

use cccc_source::env::Env;
use cccc_source::subst::free_var_set;
use cccc_source::Term;
use cccc_util::symbol::Symbol;
use std::collections::HashSet;
use std::fmt;

/// Errors produced by the free-variable analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FvError {
    /// A free variable of the term is not bound in the environment, so its
    /// type (and hence the closure environment) cannot be computed.
    UnboundVariable(Symbol),
}

impl fmt::Display for FvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FvError::UnboundVariable(x) => {
                write!(f, "free variable `{x}` is not bound in the environment")
            }
        }
    }
}

impl std::error::Error for FvError {}

/// Computes `FV(e, B, Γ)`: the dependency-closed, Γ-ordered sequence of free
/// variables of the given `terms` (typically a λ-abstraction and its Π type)
/// paired with their declared source types.
///
/// # Errors
///
/// Returns [`FvError::UnboundVariable`] if any free variable (of the terms
/// or, transitively, of the types of other free variables) is not bound in
/// `env`.
pub fn dependent_free_vars(env: &Env, terms: &[&Term]) -> Result<Vec<(Symbol, Term)>, FvError> {
    // Step 1: the syntactic free variables of the terms themselves —
    // assembled from the hash-consing kernel's cached per-node metadata,
    // not recomputed by traversal.
    let mut needed: HashSet<Symbol> = HashSet::new();
    let mut worklist: Vec<Symbol> = Vec::new();
    for term in terms {
        for x in free_var_set(term) {
            if needed.insert(x) {
                worklist.push(x);
            }
        }
    }

    // Step 2: transitively close over the types (and definitions) recorded
    // in Γ: the type of a needed variable may itself mention further free
    // variables. Environment entries are interned handles, so their
    // free-variable sets are O(1) metadata reads.
    while let Some(x) = worklist.pop() {
        let decl = env.lookup(x).ok_or(FvError::UnboundVariable(x))?;
        let definition_fv = decl.definition().map(|d| d.free_vars());
        for y in
            decl.ty().free_vars().iter().chain(definition_fv.into_iter().flat_map(|f| f.iter()))
        {
            if needed.insert(y) {
                worklist.push(y);
            }
        }
    }

    // Step 3: order by position in Γ, which is dependency-ordered by
    // well-formedness of environments.
    let mut ordered: Vec<(Symbol, Term)> = Vec::new();
    for decl in env.iter() {
        let name = decl.name();
        if needed.remove(&name) {
            ordered.push((name, (**decl.ty()).clone()));
        }
    }

    // Anything left over was never bound in Γ at all.
    if let Some(&leftover) = needed.iter().next() {
        return Err(FvError::UnboundVariable(leftover));
    }
    Ok(ordered)
}

/// Convenience wrapper: `FV` of a single term.
///
/// # Errors
///
/// See [`dependent_free_vars`].
pub fn dependent_free_vars_of(env: &Env, term: &Term) -> Result<Vec<(Symbol, Term)>, FvError> {
    dependent_free_vars(env, &[term])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccc_source::builder::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn closed_terms_have_no_free_variables() {
        let fv = dependent_free_vars_of(&Env::new(), &lam("x", bool_ty(), var("x"))).unwrap();
        assert!(fv.is_empty());
    }

    #[test]
    fn direct_free_variables_are_collected_with_types() {
        let env =
            Env::new().with_assumption(sym("y"), bool_ty()).with_assumption(sym("z"), bool_ty());
        let term = lam("x", bool_ty(), var("y"));
        let fv = dependent_free_vars_of(&env, &term).unwrap();
        assert_eq!(fv.len(), 1);
        assert_eq!(fv[0].0, sym("y"));
        assert!(cccc_source::subst::alpha_eq(&fv[0].1, &bool_ty()));
    }

    #[test]
    fn types_of_free_variables_pull_in_their_own_dependencies() {
        // Γ = A : ⋆, a : A.  The term λ x : Bool. a  mentions only `a`, but
        // the type of `a` mentions `A`, so FV must include A before a.
        let env = Env::new().with_assumption(sym("A"), star()).with_assumption(sym("a"), var("A"));
        let term = lam("x", bool_ty(), var("a"));
        let fv = dependent_free_vars_of(&env, &term).unwrap();
        let names: Vec<Symbol> = fv.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec![sym("A"), sym("a")]);
    }

    #[test]
    fn transitive_chains_are_fully_closed() {
        // A : ⋆, P : A → ⋆, a : A, p : P a.  Mentioning only `p` requires the
        // whole chain.
        let env = Env::new()
            .with_assumption(sym("A"), star())
            .with_assumption(sym("P"), arrow(var("A"), star()))
            .with_assumption(sym("a"), var("A"))
            .with_assumption(sym("p"), app(var("P"), var("a")));
        let term = lam("x", bool_ty(), var("p"));
        let fv = dependent_free_vars_of(&env, &term).unwrap();
        let names: Vec<Symbol> = fv.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec![sym("A"), sym("P"), sym("a"), sym("p")]);
    }

    #[test]
    fn order_follows_the_environment_not_occurrence() {
        let env = Env::new()
            .with_assumption(sym("first"), bool_ty())
            .with_assumption(sym("second"), bool_ty());
        // The term mentions `second` before `first`.
        let term = ite(var("second"), var("first"), tt());
        let fv = dependent_free_vars_of(&env, &term).unwrap();
        let names: Vec<Symbol> = fv.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec![sym("first"), sym("second")]);
    }

    #[test]
    fn annotation_and_type_both_contribute() {
        // FV is computed for both the function and its Π type.
        let env = Env::new().with_assumption(sym("A"), star()).with_assumption(sym("B"), star());
        let function = lam("x", var("A"), var("x"));
        let function_ty = pi("x", var("A"), var("B"));
        let fv = dependent_free_vars(&env, &[&function, &function_ty]).unwrap();
        let names: Vec<Symbol> = fv.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec![sym("A"), sym("B")]);
    }

    #[test]
    fn definitions_pull_in_their_dependencies_too() {
        let env = Env::new().with_assumption(sym("b"), bool_ty()).with_definition(
            sym("c"),
            var("b"),
            bool_ty(),
        );
        let term = lam("x", bool_ty(), var("c"));
        let fv = dependent_free_vars_of(&env, &term).unwrap();
        let names: Vec<Symbol> = fv.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec![sym("b"), sym("c")]);
    }

    #[test]
    fn unbound_variables_are_reported() {
        let err = dependent_free_vars_of(&Env::new(), &var("ghost")).unwrap_err();
        assert_eq!(err, FvError::UnboundVariable(sym("ghost")));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn bound_variables_of_the_term_are_not_included() {
        let env = Env::new().with_assumption(sym("y"), bool_ty());
        let term = lam("y", bool_ty(), var("y"));
        assert!(dependent_free_vars_of(&env, &term).unwrap().is_empty());
    }
}
