//! A user-facing compiler pipeline: parse → type check → closure convert →
//! re-check → (optionally) verify the metatheory on the given program.
//!
//! This is the API the examples and benchmarks drive. It packages the
//! lower-level pieces ([`mod@crate::translate`], [`crate::verify`],
//! [`crate::link`]) behind a [`Compiler`] value with explicit options.
//!
//! Every stage runs on the hash-consed term kernel: the type checkers'
//! conversion memo tables and the CC-CC `[Code]` typing memo are shared
//! across compilations on a thread, so re-verifying a component that
//! contains already-seen code (the separate-compilation workflow, or a
//! batch compile) is answered from cache. [`Compiler::reset_caches`]
//! drops that state when isolation is wanted (e.g. between benchmark
//! phases).

use crate::link::{LinkError, SourceSubstitution};
use crate::translate::{translate, translate_env, TranslateError};
use crate::verify::{check_type_preservation, VerifyError};
use cccc_source as src;
use cccc_target as tgt;
use cccc_util::diag::{diagnostics_to_json, Diagnostic};
use cccc_util::intern::{ConvCacheStats, InternStats};
use cccc_util::trace::{self, BuildTrace, SpanTotal};
use std::fmt;

/// Configuration for the [`Compiler`].
#[derive(Clone, Copy, Debug)]
pub struct CompilerOptions {
    /// Re-type-check the produced CC-CC term (rule-by-rule, in the target
    /// type system). On by default: this is the "typed" in typed closure
    /// conversion.
    pub typecheck_output: bool,
    /// Additionally check that the output's type is the translation of the
    /// input's type (Theorem 5.6), not merely some type.
    pub verify_type_preservation: bool,
    /// Run the type checkers on the normalization-by-evaluation engine
    /// (the default). When `false`, the substitution-based step engine —
    /// the paper-faithful specification — is used instead; this exists for
    /// differential testing and for the head-to-head benchmarks. A
    /// step-only compiler replaces the NbE-backed
    /// [`check_type_preservation`] metatheory checker with the inline
    /// Theorem 5.6 core check (inferred target type ≡ translated type)
    /// through the step engine, so no NbE code runs.
    pub use_nbe: bool,
    /// Attach a [`CacheReport`] to each [`Compilation`]: the interner and
    /// conversion-memo activity (hits, misses, table sizes, prunes) this
    /// compile caused on its thread. Off by default — the snapshots are
    /// cheap, but most callers don't want the field populated. The
    /// parallel module driver turns this on to fill its per-unit
    /// diagnostics.
    pub collect_cache_stats: bool,
    /// Keep-going mode: collect *every* diagnostic instead of stopping at
    /// the first error, and degrade failed units to poisoned interfaces so
    /// dependents still report their own errors. Consulted by the module
    /// driver ([`Compiler::compile`] itself stays fail-fast; use
    /// [`Compiler::compile_keep_going`] for the tolerant entry point).
    /// Successful compiles produce bit-identical artifacts either way, so
    /// this flag deliberately does **not** participate in the driver's
    /// input fingerprints.
    pub keep_going: bool,
    /// Wall-clock budget for a whole driver build. When it elapses the
    /// session's watchdog cancels the build cooperatively: in-flight
    /// units stop at their next phase boundary or fuel checkpoint, the
    /// rest of the frontier is skipped, and the partial report comes back
    /// with [`BuildOutcome::DeadlineExceeded`]. Like `keep_going`, deadlines
    /// never change what a successful compile produces, so they do not
    /// participate in input fingerprints.
    pub build_deadline: Option<std::time::Duration>,
    /// Wall-clock budget for any *single* unit's compile. An overrunning
    /// unit is flagged by name and the build is cancelled the same
    /// cooperative way (one runaway unit cannot take the session's cached
    /// progress with it).
    pub unit_deadline: Option<std::time::Duration>,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            typecheck_output: true,
            verify_type_preservation: true,
            use_nbe: true,
            collect_cache_stats: false,
            keep_going: false,
            build_deadline: None,
            unit_deadline: None,
        }
    }
}

/// How a driver build ended: ran to completion, or was cut short
/// cooperatively. A non-`Completed` outcome still comes with a
/// well-formed partial report — every unit has a status, completed units
/// keep their cached artifacts, and the store's atomic temp+rename
/// writes guarantee nothing is half-persisted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum BuildOutcome {
    /// Every unit ran to a terminal status with no cancellation.
    #[default]
    Completed,
    /// Cancelled through the session's `CancelToken`.
    Cancelled,
    /// A [`CompilerOptions::build_deadline`] or
    /// [`CompilerOptions::unit_deadline`] elapsed; `overran` names the
    /// units that were past the per-unit budget when the watchdog fired
    /// (empty for a whole-build deadline).
    DeadlineExceeded {
        /// Units flagged over the per-unit budget, sorted by name.
        overran: Vec<String>,
    },
}

impl BuildOutcome {
    /// Whether the build ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, BuildOutcome::Completed)
    }
}

impl fmt::Display for BuildOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildOutcome::Completed => write!(f, "completed"),
            BuildOutcome::Cancelled => write!(f, "cancelled"),
            BuildOutcome::DeadlineExceeded { overran } if overran.is_empty() => {
                write!(f, "deadline exceeded")
            }
            BuildOutcome::DeadlineExceeded { overran } => {
                write!(f, "deadline exceeded (overran: {})", overran.join(", "))
            }
        }
    }
}

/// Counters for a persistent on-disk artifact store (the driver's
/// restart-surviving cache tier). Defined here — next to the other cache
/// vocabulary — so [`CacheSnapshot`]/[`CacheReport`] can carry store
/// activity alongside interner and conversion-memo activity; the
/// populating store itself lives in the driver crate, which layers above
/// this one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered by a valid on-disk blob.
    pub disk_hits: u64,
    /// Lookups that found no blob for the key.
    pub disk_misses: u64,
    /// Blobs rejected as unusable — truncated, failed checksum, wrong
    /// format version — and treated as misses (never as errors).
    pub invalid_entries: u64,
    /// Artifacts written through to disk after a compile.
    pub write_throughs: u64,
    /// Artifact write attempts that failed (I/O errors are tolerated and
    /// counted, never surfaced as build failures).
    pub write_errors: u64,
    /// Verified-phase records answered from disk (the driver's
    /// `.vfy` files; see the driver's `store` module). Counted apart
    /// from `disk_hits` so artifact-blob accounting stays exact.
    pub verified_hits: u64,
    /// Verified-phase records written through to disk.
    pub verified_writes: u64,
    /// Bytes read from blob files — headers, section tables, and any
    /// section bodies actually decoded (lazy loads count only what they
    /// touch).
    pub bytes_read: u64,
    /// Bytes written through to blob files.
    pub bytes_written: u64,
    /// Blob sections materialized into wire terms (eagerly at load, or
    /// lazily at first access).
    pub sections_decoded: u64,
    /// Blob sections a lazy load left on disk undecoded. A section
    /// counted skipped at load is re-counted under `sections_decoded`
    /// if a later access materializes it, so the pair measures load-time
    /// laziness rather than partitioning the sections.
    pub sections_skipped: u64,
    /// Blobs evicted by a size-bounded garbage-collection sweep.
    pub gc_evictions: u64,
    /// Bytes reclaimed by those evictions.
    pub gc_evicted_bytes: u64,
    /// Individual retry attempts made against transient I/O faults
    /// (interrupted opens, failed preads, torn writes) before giving up.
    /// Permanent faults — checksum corruption — are never retried.
    pub retries: u64,
    /// Operations that *succeeded* on a retry attempt — each one is a
    /// warm hit (or a persisted artifact) the pre-retry store would have
    /// lost to a miss.
    pub retry_successes: u64,
    /// Blobs in the store (a size at observation time, not a delta).
    pub entries: u64,
    /// Total bytes of those blobs (a size at observation time).
    pub bytes: u64,
}

impl StoreStats {
    /// The activity between `before` and `self`: counters subtract,
    /// sizes keep this (the later) observation's values.
    pub fn since(&self, before: &StoreStats) -> StoreStats {
        StoreStats {
            disk_hits: self.disk_hits - before.disk_hits,
            disk_misses: self.disk_misses - before.disk_misses,
            invalid_entries: self.invalid_entries - before.invalid_entries,
            write_throughs: self.write_throughs - before.write_throughs,
            write_errors: self.write_errors - before.write_errors,
            verified_hits: self.verified_hits - before.verified_hits,
            verified_writes: self.verified_writes - before.verified_writes,
            bytes_read: self.bytes_read - before.bytes_read,
            bytes_written: self.bytes_written - before.bytes_written,
            sections_decoded: self.sections_decoded - before.sections_decoded,
            sections_skipped: self.sections_skipped - before.sections_skipped,
            gc_evictions: self.gc_evictions - before.gc_evictions,
            gc_evicted_bytes: self.gc_evicted_bytes - before.gc_evicted_bytes,
            retries: self.retries - before.retries,
            retry_successes: self.retry_successes - before.retry_successes,
            entries: self.entries,
            bytes: self.bytes,
        }
    }

    /// Pointwise sum of two activity deltas (sizes take the maximum —
    /// merging windows keeps the later, larger observation).
    pub fn merged(&self, other: &StoreStats) -> StoreStats {
        StoreStats {
            disk_hits: self.disk_hits + other.disk_hits,
            disk_misses: self.disk_misses + other.disk_misses,
            invalid_entries: self.invalid_entries + other.invalid_entries,
            write_throughs: self.write_throughs + other.write_throughs,
            write_errors: self.write_errors + other.write_errors,
            verified_hits: self.verified_hits + other.verified_hits,
            verified_writes: self.verified_writes + other.verified_writes,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            sections_decoded: self.sections_decoded + other.sections_decoded,
            sections_skipped: self.sections_skipped + other.sections_skipped,
            gc_evictions: self.gc_evictions + other.gc_evictions,
            gc_evicted_bytes: self.gc_evicted_bytes + other.gc_evicted_bytes,
            retries: self.retries + other.retries,
            retry_successes: self.retry_successes + other.retry_successes,
            entries: self.entries.max(other.entries),
            bytes: self.bytes.max(other.bytes),
        }
    }

    /// Total disk lookups (hits + misses + invalid blobs).
    pub fn lookups(&self) -> u64 {
        self.disk_hits + self.disk_misses + self.invalid_entries
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store {}h/{}m/{}inv, {}w (+{} failed), {}vh/{}vw, \
             io {}B r/{}B w, sections {}d/{}s, gc {} (-{}B), \
             retry {}/{} ok, {} blobs / {} bytes",
            self.disk_hits,
            self.disk_misses,
            self.invalid_entries,
            self.write_throughs,
            self.write_errors,
            self.verified_hits,
            self.verified_writes,
            self.bytes_read,
            self.bytes_written,
            self.sections_decoded,
            self.sections_skipped,
            self.gc_evictions,
            self.gc_evicted_bytes,
            self.retries,
            self.retry_successes,
            self.entries,
            self.bytes,
        )
    }
}

/// Wall-clock nanoseconds spent in each pipeline phase of one compile.
///
/// Filled by [`Compiler::compile`] on every run — the phase clocks are
/// read whether or not tracing is active, so the driver's per-unit
/// reports carry a phase breakdown even on untraced builds. The phase
/// names match the span names a traced build records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Parsing the surface syntax (only [`Compiler::compile_text`] pays
    /// this; term-level entry points leave it 0).
    pub parse: u64,
    /// Type checking the CC input ([`src::typecheck::infer_with_engine`]).
    pub typecheck: u64,
    /// The closure-conversion translation of the term and of its type.
    pub translate: u64,
    /// Re-type-checking the produced CC-CC term (0 when
    /// [`CompilerOptions::typecheck_output`] is off).
    pub check: u64,
    /// The type-preservation verification — Theorem 5.6 via
    /// [`check_type_preservation`] or the inline core check (0 when
    /// output checking is off).
    pub verify: u64,
}

impl PhaseNanos {
    /// Summed nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.parse + self.typecheck + self.translate + self.check + self.verify
    }

    /// Pointwise sum — aggregating units into per-phase build totals.
    pub fn merged(&self, other: &PhaseNanos) -> PhaseNanos {
        PhaseNanos {
            parse: self.parse + other.parse,
            typecheck: self.typecheck + other.typecheck,
            translate: self.translate + other.translate,
            check: self.check + other.check,
            verify: self.verify + other.verify,
        }
    }

    /// The phases as `(name, nanoseconds)` rows, in pipeline order,
    /// zero phases included.
    pub fn rows(&self) -> [(&'static str, u64); 5] {
        [
            ("parse", self.parse),
            ("typecheck", self.typecheck),
            ("translate", self.translate),
            ("check", self.check),
            ("verify", self.verify),
        ]
    }
}

impl fmt::Display for PhaseNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, ns) in self.rows() {
            if ns == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={:.2}ms", name, ns as f64 / 1e6)?;
            first = false;
        }
        if first {
            write!(f, "(no phases timed)")?;
        }
        Ok(())
    }
}

/// Machine-readable metrics distilled from a [`BuildTrace`] — the third
/// trace consumer next to the Chrome JSON exporter and the `--timings`
/// text report. Rides beside [`CacheSnapshot`] in the driver's
/// `BuildReport` so benches and future service gates consume it without
/// re-walking raw spans.
#[derive(Clone, Debug, Default)]
pub struct BuildMetrics {
    /// Nanoseconds from the sink's epoch to collection (the traced
    /// window, ≥ the makespan).
    pub wall_ns: u64,
    /// Last span end minus first span start.
    pub makespan_ns: u64,
    /// Number of workers that recorded at least one span or event.
    pub workers: usize,
    /// Completed spans collected.
    pub span_count: usize,
    /// Instant events collected.
    pub event_count: usize,
    /// Count and total inclusive nanoseconds per span name, sorted by
    /// name (the per-phase totals of the `--timings` report).
    pub phases: Vec<(String, SpanTotal)>,
    /// Per-event-name occurrence counts, sorted by name (scheduler and
    /// cache-tier activity: `cache.hit.disk`, `sched.claim`, …).
    pub events: Vec<(String, u64)>,
    /// Summed counter payloads keyed `"owner.counter"` (store byte
    /// counts, dynamic-overhead rule counts, …), sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Per-worker busy nanoseconds (top-level spans only), ascending by
    /// worker index.
    pub worker_busy_ns: Vec<(usize, u64)>,
    /// The dependency-graph critical path in nanoseconds, filled by the
    /// driver from its unit graph (0 when unknown): the lower bound the
    /// makespan is compared against.
    pub critical_path_ns: u64,
}

impl BuildMetrics {
    /// Distills `trace` into metrics. [`BuildMetrics::critical_path_ns`]
    /// is left 0 — only the driver knows the unit graph.
    pub fn of(trace: &BuildTrace) -> BuildMetrics {
        BuildMetrics {
            wall_ns: trace.total_ns,
            makespan_ns: trace.makespan_ns(),
            workers: trace.workers().len(),
            span_count: trace.spans.len(),
            event_count: trace.events.len(),
            phases: trace
                .span_totals()
                .into_iter()
                .map(|(name, total)| (name.to_owned(), total))
                .collect(),
            events: trace
                .event_counts()
                .into_iter()
                .map(|(name, count)| (name.to_owned(), count))
                .collect(),
            counters: trace.counter_totals(),
            worker_busy_ns: trace.busy_ns_by_worker(),
            critical_path_ns: 0,
        }
    }

    /// Summed busy nanoseconds across all workers.
    pub fn busy_ns(&self) -> u64 {
        self.worker_busy_ns.iter().map(|(_, ns)| ns).sum()
    }

    /// Overall worker utilization in `[0, 1]`: busy time over
    /// `workers × makespan`.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.makespan_ns == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / (self.workers as f64 * self.makespan_ns as f64)
    }

    /// Per-worker utilization in `[0, 1]`, ascending by worker index.
    pub fn worker_utilization(&self) -> Vec<(usize, f64)> {
        if self.makespan_ns == 0 {
            return Vec::new();
        }
        self.worker_busy_ns
            .iter()
            .map(|&(w, ns)| (w, ns as f64 / self.makespan_ns as f64))
            .collect()
    }

    /// Actual-over-critical-path makespan ratio (≥ 1 for a correct
    /// schedule; `None` when the critical path is unknown).
    pub fn makespan_gap(&self) -> Option<f64> {
        if self.critical_path_ns == 0 {
            return None;
        }
        Some(self.makespan_ns as f64 / self.critical_path_ns as f64)
    }

    /// Total inclusive nanoseconds recorded for the span name (0 when
    /// absent).
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.phases.iter().find(|(n, _)| n == name).map_or(0, |(_, t)| t.total_ns)
    }

    /// Occurrences of the event name (0 when absent).
    pub fn event_count(&self, name: &str) -> u64 {
        self.events.iter().find(|(n, _)| n == name).map_or(0, |(_, c)| *c)
    }
}

impl fmt::Display for BuildMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "makespan {:.2}ms, {} workers at {:.0}% utilization, {} spans / {} events",
            self.makespan_ns as f64 / 1e6,
            self.workers,
            self.utilization() * 100.0,
            self.span_count,
            self.event_count,
        )
    }
}

/// A point-in-time snapshot of every thread-local cache the pipeline
/// relies on: both languages' term interners and conversion memo tables.
///
/// Taken with [`cache_snapshot`]; two snapshots subtract into a
/// [`CacheReport`] describing the activity in between. This is how the
/// interner and memo counters — previously reachable only through the
/// per-crate free functions ([`src::ast::intern_stats`],
/// [`src::equiv::conv_cache_stats`], and their `tgt` twins) — surface
/// through [`CompilerOptions`] and the driver's per-unit diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheSnapshot {
    /// CC interner counters.
    pub source_intern: InternStats,
    /// CC-CC interner counters.
    pub target_intern: InternStats,
    /// CC conversion-memo counters.
    pub source_conv: ConvCacheStats,
    /// CC-CC conversion-memo counters.
    pub target_conv: ConvCacheStats,
    /// Entries in the CC interner table at snapshot time.
    pub source_intern_table: usize,
    /// Entries in the CC-CC interner table at snapshot time.
    pub target_intern_table: usize,
    /// Entries in the CC conversion memo at snapshot time.
    pub source_conv_table: usize,
    /// Entries in the CC-CC conversion memo at snapshot time.
    pub target_conv_table: usize,
    /// Persistent artifact-store counters at snapshot time. Always zero
    /// in snapshots taken by [`cache_snapshot`] (the store is driver
    /// state, not thread state); the driver fills this in when a store
    /// is attached.
    pub artifact_store: StoreStats,
}

/// Snapshots the current thread's interner and conversion-memo state.
pub fn cache_snapshot() -> CacheSnapshot {
    CacheSnapshot {
        source_intern: src::ast::intern_stats(),
        target_intern: tgt::ast::intern_stats(),
        source_conv: src::equiv::conv_cache_stats(),
        target_conv: tgt::equiv::conv_cache_stats(),
        source_intern_table: src::ast::intern_table_len(),
        target_intern_table: tgt::ast::intern_table_len(),
        source_conv_table: src::equiv::conv_cache_len(),
        target_conv_table: tgt::equiv::conv_cache_len(),
        artifact_store: StoreStats::default(),
    }
}

/// The cache activity between two [`CacheSnapshot`]s: counters are
/// deltas, table sizes are the sizes at the *end* of the window.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheReport {
    /// CC interner activity (hit/miss/prune deltas).
    pub source_intern: InternStats,
    /// CC-CC interner activity (hit/miss/prune deltas).
    pub target_intern: InternStats,
    /// CC conversion-memo activity (identity/memo-hit/miss/clear deltas).
    pub source_conv: ConvCacheStats,
    /// CC-CC conversion-memo activity (identity/memo-hit/miss/clear
    /// deltas).
    pub target_conv: ConvCacheStats,
    /// CC interner table size at the end of the window.
    pub source_intern_table: usize,
    /// CC-CC interner table size at the end of the window.
    pub target_intern_table: usize,
    /// CC conversion-memo size at the end of the window.
    pub source_conv_table: usize,
    /// CC-CC conversion-memo size at the end of the window.
    pub target_conv_table: usize,
    /// Persistent artifact-store activity in the window (all-zero when
    /// no store is attached).
    pub artifact_store: StoreStats,
}

impl CacheReport {
    /// The report for the window from `before` to `after`.
    pub fn between(before: &CacheSnapshot, after: &CacheSnapshot) -> CacheReport {
        CacheReport {
            source_intern: after.source_intern.since(&before.source_intern),
            target_intern: after.target_intern.since(&before.target_intern),
            source_conv: after.source_conv.since(&before.source_conv),
            target_conv: after.target_conv.since(&before.target_conv),
            source_intern_table: after.source_intern_table,
            target_intern_table: after.target_intern_table,
            source_conv_table: after.source_conv_table,
            target_conv_table: after.target_conv_table,
            artifact_store: after.artifact_store.since(&before.artifact_store),
        }
    }

    /// Total interning requests across both languages.
    pub fn intern_requests(&self) -> u64 {
        self.source_intern.hits
            + self.source_intern.misses
            + self.target_intern.hits
            + self.target_intern.misses
    }

    /// Total conversion queries answered without running the decision
    /// procedure (identity + memo hits, both languages).
    pub fn conv_fast_path_hits(&self) -> u64 {
        self.source_conv.identity_hits
            + self.source_conv.memo_hits
            + self.target_conv.identity_hits
            + self.target_conv.memo_hits
    }
}

impl fmt::Display for CacheReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.artifact_store.lookups() + self.artifact_store.write_throughs > 0 {
            write!(f, "{}; ", self.artifact_store)?;
        }
        write!(
            f,
            "intern cc {}h/{}m cccc {}h/{}m ({} + {} entries, {} prunes); \
             conv cc {}i/{}h/{}m cccc {}i/{}h/{}m ({} + {} entries)",
            self.source_intern.hits,
            self.source_intern.misses,
            self.target_intern.hits,
            self.target_intern.misses,
            self.source_intern_table,
            self.target_intern_table,
            self.source_intern.prunes + self.target_intern.prunes,
            self.source_conv.identity_hits,
            self.source_conv.memo_hits,
            self.source_conv.memo_misses,
            self.target_conv.identity_hits,
            self.target_conv.memo_hits,
            self.target_conv.memo_misses,
            self.source_conv_table,
            self.target_conv_table,
        )
    }
}

/// Errors produced by the compiler pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// The program text did not parse.
    Parse(src::parse::ParseError),
    /// The source program is ill-typed.
    SourceType(src::TypeError),
    /// The closure-conversion translation failed.
    Translate(TranslateError),
    /// The produced CC-CC program is ill-typed (this would contradict type
    /// preservation and indicates a compiler bug).
    TargetType(tgt::TypeError),
    /// Type preservation verification failed.
    Verify(VerifyError),
    /// Linking failed.
    Link(LinkError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::SourceType(e) => write!(f, "source type error: {e}"),
            CompileError::Translate(e) => write!(f, "{e}"),
            CompileError::TargetType(e) => write!(f, "target type error: {e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
            CompileError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<src::parse::ParseError> for CompileError {
    fn from(e: src::parse::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<src::TypeError> for CompileError {
    fn from(e: src::TypeError) -> Self {
        CompileError::SourceType(e)
    }
}

impl From<TranslateError> for CompileError {
    fn from(e: TranslateError) -> Self {
        CompileError::Translate(e)
    }
}

impl From<tgt::TypeError> for CompileError {
    fn from(e: tgt::TypeError) -> Self {
        CompileError::TargetType(e)
    }
}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

impl From<LinkError> for CompileError {
    fn from(e: LinkError) -> Self {
        CompileError::Link(e)
    }
}

/// Result type for the compiler pipeline.
pub type Result<T> = std::result::Result<T, CompileError>;

/// The output of a successful compilation.
#[derive(Clone, Debug)]
pub struct Compilation {
    /// The source term that was compiled.
    pub source: src::Term,
    /// Its inferred CC type.
    pub source_type: src::Term,
    /// The closure-converted CC-CC term.
    pub target: tgt::Term,
    /// The translation of the source type (the target term checks at this
    /// type).
    pub target_type: tgt::Term,
    /// The cache activity this compile caused on its thread, populated
    /// when [`CompilerOptions::collect_cache_stats`] is set.
    pub cache_stats: Option<CacheReport>,
    /// Wall-clock nanoseconds per pipeline phase, measured on every
    /// compile (tracing enabled or not).
    pub phases: PhaseNanos,
    /// Diagnostics aggregated across phases. Empty for a fail-fast
    /// [`Compiler::compile`] (which reports through [`CompileError`]);
    /// populated by the keep-going entry points.
    pub diagnostics: Vec<Diagnostic>,
}

impl Compilation {
    /// AST size of the source term.
    pub fn source_size(&self) -> usize {
        self.source.size()
    }

    /// AST size of the compiled term.
    pub fn target_size(&self) -> usize {
        self.target.size()
    }

    /// Code-size blow-up factor introduced by closure conversion.
    pub fn expansion_factor(&self) -> f64 {
        self.target_size() as f64 / self.source_size() as f64
    }

    /// Number of closures in the output (one per source λ).
    pub fn closure_count(&self) -> usize {
        self.target.closure_count()
    }

    /// The aggregated diagnostics as a machine-readable JSON array.
    pub fn diagnostics_json(&self) -> String {
        diagnostics_to_json(&self.diagnostics)
    }
}

/// The result of a keep-going compile ([`Compiler::compile_keep_going`]):
/// always a declared/partial interface and the full diagnostic set, plus
/// the complete [`Compilation`] when the program was actually clean.
#[derive(Clone, Debug)]
pub struct FrontendOutcome {
    /// The inferred source type — the unit's interface. Mentions the
    /// `<error>` sentinel wherever recovery happened, making the interface
    /// *poisoned*; dependents can still check against it.
    pub interface: src::Term,
    /// Every diagnostic, in phase order: parse, then type checking, then
    /// any strict-pipeline failure folded in.
    pub diagnostics: Vec<Diagnostic>,
    /// The full strict compilation — present only when no error-severity
    /// diagnostic was produced and the environment was clean.
    pub compilation: Option<Compilation>,
}

impl FrontendOutcome {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// True when the program compiled cleanly end to end.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.compilation.is_some()
    }

    /// True when the interface mentions the error sentinel.
    pub fn interface_is_poisoned(&self) -> bool {
        src::tolerant::is_poisoned(&self.interface)
    }

    /// The diagnostics as a machine-readable JSON array.
    pub fn diagnostics_json(&self) -> String {
        diagnostics_to_json(&self.diagnostics)
    }
}

/// The stable error code for a strict source-checker error — the same table
/// the tolerant checker uses ([`cccc_source::tolerant`] module docs).
pub fn source_error_code(error: &src::TypeError) -> &'static str {
    match error {
        src::TypeError::UnboundVariable(_) => "E0001",
        src::TypeError::BoxHasNoType => "E0002",
        src::TypeError::NotAFunction { .. } => "E0003",
        src::TypeError::NotAPair { .. } => "E0004",
        src::TypeError::NotAUniverse { .. } => "E0005",
        src::TypeError::PairAnnotationNotSigma { .. } => "E0006",
        src::TypeError::ImpredicativeSigma { .. } => "E0007",
        src::TypeError::Mismatch { .. } => "E0008",
        src::TypeError::Reduction(_) => "E0009",
    }
}

/// The stable error code for a strict target-checker error — the same table
/// the tolerant checker uses ([`cccc_target::tolerant`] module docs).
pub fn target_error_code(error: &tgt::typecheck::TypeError) -> &'static str {
    use tgt::typecheck::TypeError as T;
    match error {
        T::UnboundVariable(_) => "E1001",
        T::BoxHasNoType => "E1002",
        T::NotAClosure { .. } => "E1003",
        T::NotAPair { .. } => "E1004",
        T::NotAUniverse { .. } => "E1005",
        T::PairAnnotationNotSigma { .. } => "E1006",
        T::Mismatch { .. } => "E1008",
        T::Reduction(_) => "E1009",
        T::OpenCode { .. } => "E1010",
        T::NotCode { .. } => "E1011",
    }
}

/// Folds a strict-pipeline error into a coded diagnostic. Parse and type
/// errors reuse the per-variant code tables; the later phases get
/// phase-level codes (`E0200` translate, `E0300` verify, `E0400` link).
pub fn diagnostic_of_compile_error(error: &CompileError) -> Diagnostic {
    match error {
        CompileError::Parse(e) => e.to_diagnostic(),
        CompileError::SourceType(e) => {
            Diagnostic::error(e.to_string()).with_code(source_error_code(e))
        }
        CompileError::Translate(e) => Diagnostic::error(e.to_string()).with_code("E0200"),
        CompileError::TargetType(e) => {
            Diagnostic::error(e.to_string()).with_code(target_error_code(e))
        }
        CompileError::Verify(e) => Diagnostic::error(e.to_string()).with_code("E0300"),
        CompileError::Link(e) => Diagnostic::error(e.to_string()).with_code("E0400"),
    }
}

/// The closure-conversion compiler.
#[derive(Clone, Copy, Debug, Default)]
pub struct Compiler {
    options: CompilerOptions,
}

impl Compiler {
    /// A compiler with the default options (full checking).
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// A compiler with explicit options.
    pub fn with_options(options: CompilerOptions) -> Compiler {
        Compiler { options }
    }

    /// The options in effect.
    pub fn options(&self) -> CompilerOptions {
        self.options
    }

    /// Clears the thread's memoization state: both languages' conversion
    /// memo tables (and their counters) and the CC-CC `[Code]` typing
    /// memo. Compilation results are unaffected — only the caches that
    /// make repeated checking of identical subterms O(1) are dropped.
    pub fn reset_caches() {
        src::equiv::reset_conv_cache();
        tgt::equiv::reset_conv_cache();
        tgt::typecheck::reset_code_memo();
    }

    /// Runs the `typecheck` phase alone: infers the CC type of `term`
    /// under `env` (the unit's interface), returning the type and the
    /// phase's wall-clock nanoseconds. Records the same `typecheck` span
    /// a full [`Compiler::compile`] would, so traced callers see one
    /// span per phase regardless of which entry point ran it.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError::SourceType`] on an ill-typed input.
    pub fn phase_typecheck(&self, env: &src::Env, term: &src::Term) -> Result<(src::Term, u64)> {
        let engine =
            if self.options.use_nbe { src::equiv::Engine::Nbe } else { src::equiv::Engine::Step };
        let (ty, ns) =
            trace::timed("typecheck", || src::typecheck::infer_with_engine(env, term, engine));
        Ok((ty?, ns))
    }

    /// Runs the `translate` phase alone: closure-converts the term and
    /// its (already inferred) type, returning `(target, target_type)`
    /// and the phase's nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError::Translate`] if the translation fails.
    pub fn phase_translate(
        &self,
        env: &src::Env,
        term: &src::Term,
        source_type: &src::Term,
    ) -> Result<(tgt::Term, tgt::Term, u64)> {
        let (translated, ns) = trace::timed("translate", || {
            let target = translate(env, term)?;
            let target_type = translate(env, source_type)?;
            Ok::<_, TranslateError>((target, target_type))
        });
        let (target, target_type) = translated?;
        Ok((target, target_type, ns))
    }

    /// Runs the `check` phase alone: translates the environment and
    /// re-type-checks the produced CC-CC term in it, returning the
    /// translated environment, the inferred target type, and the phase's
    /// nanoseconds. Callers gate on
    /// [`CompilerOptions::typecheck_output`] themselves — this entry
    /// point always checks.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if environment translation or target
    /// type checking fails (either would contradict type preservation).
    pub fn phase_check(
        &self,
        env: &src::Env,
        target: &tgt::Term,
    ) -> Result<(tgt::Env, tgt::Term, u64)> {
        let engine =
            if self.options.use_nbe { tgt::equiv::Engine::Nbe } else { tgt::equiv::Engine::Step };
        let (checked, ns) = trace::timed("check", || {
            let target_env = translate_env(env)?;
            let inferred = tgt::typecheck::infer_with_engine(&target_env, target, engine)?;
            Ok::<_, CompileError>((target_env, inferred))
        });
        let (target_env, inferred) = checked?;
        Ok((target_env, inferred, ns))
    }

    /// Runs the `verify` phase alone: Theorem 5.6 on the unit — the full
    /// [`check_type_preservation`] checker when
    /// [`CompilerOptions::verify_type_preservation`] is set and NbE is
    /// available, the inline core check (inferred target type ≡
    /// translated type) otherwise. `target_env` is reused when the
    /// caller just ran [`Compiler::phase_check`]; passing `None` (a
    /// verify-only re-run against cached artifacts) re-translates the
    /// environment inside the phase. Returns the phase's nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError::Verify`] if preservation fails.
    pub fn phase_verify(
        &self,
        env: &src::Env,
        term: &src::Term,
        target_env: Option<&tgt::Env>,
        inferred: &tgt::Term,
        target_type: &tgt::Term,
    ) -> Result<u64> {
        let engine =
            if self.options.use_nbe { tgt::equiv::Engine::Nbe } else { tgt::equiv::Engine::Step };
        let (verified, ns) = trace::timed("verify", || {
            if self.options.verify_type_preservation && self.options.use_nbe {
                // Re-use the full checker so the error message names the
                // theorem being violated. (The metatheory checkers run the
                // default NbE engine, so a step-only compiler falls back to
                // the inline Theorem 5.6 core check below — it must not
                // silently re-enter the engine it was asked to avoid.)
                check_type_preservation(env, term)?;
            } else {
                let owned_env;
                let target_env = match target_env {
                    Some(existing) => existing,
                    None => {
                        owned_env = translate_env(env)?;
                        &owned_env
                    }
                };
                let mut fuel = cccc_util::fuel::Fuel::default();
                let agrees = tgt::equiv::equiv_with_engine(
                    target_env,
                    inferred,
                    target_type,
                    &mut fuel,
                    engine,
                )
                .unwrap_or(false);
                if !agrees {
                    return Err(CompileError::Verify(VerifyError::NotEquivalent {
                        context: "compiled type does not match translated type".to_owned(),
                        left: inferred.to_string(),
                        right: target_type.to_string(),
                    }));
                }
            }
            Ok::<_, CompileError>(())
        });
        verified?;
        Ok(ns)
    }

    /// Compiles an open component `Γ ⊢ e : A` to CC-CC — the per-phase
    /// entry points ([`Compiler::phase_typecheck`] →
    /// [`Compiler::phase_translate`] → [`Compiler::phase_check`] →
    /// [`Compiler::phase_verify`]) composed in order.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if any stage fails.
    pub fn compile(&self, env: &src::Env, term: &src::Term) -> Result<Compilation> {
        let before = self.options.collect_cache_stats.then(cache_snapshot);
        let mut phases = PhaseNanos::default();
        let (source_type, typecheck_ns) = self.phase_typecheck(env, term)?;
        phases.typecheck = typecheck_ns;
        let (target, target_type, translate_ns) = self.phase_translate(env, term, &source_type)?;
        phases.translate = translate_ns;

        if self.options.typecheck_output {
            let (target_env, inferred, check_ns) = self.phase_check(env, &target)?;
            phases.check = check_ns;
            phases.verify =
                self.phase_verify(env, term, Some(&target_env), &inferred, &target_type)?;
        }

        let cache_stats = before.map(|b| CacheReport::between(&b, &cache_snapshot()));
        Ok(Compilation {
            source: term.clone(),
            source_type,
            target,
            target_type,
            cache_stats,
            phases,
            diagnostics: Vec::new(),
        })
    }

    /// Compiles a closed program.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile_closed(&self, term: &src::Term) -> Result<Compilation> {
        self.compile(&src::Env::new(), term)
    }

    /// Parses and compiles a closed program written in the CC surface
    /// syntax.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`]; additionally returns parse errors.
    pub fn compile_text(&self, source_text: &str) -> Result<Compilation> {
        let (term, parse_ns) = trace::timed("parse", || src::parse::parse_term(source_text));
        let term = term?;
        let mut compilation = self.compile_closed(&term)?;
        compilation.phases.parse = parse_ns;
        Ok(compilation)
    }

    /// Compiles an open component with keep-going semantics: *every*
    /// diagnostic is collected instead of the first error aborting the
    /// pipeline.
    ///
    /// The source program is checked with the tolerant checker
    /// ([`cccc_source::tolerant`]). When it is clean — and the ambient
    /// environment is not poisoned by an upstream failure — the full strict
    /// pipeline runs and the outcome carries a [`Compilation`]; otherwise
    /// the outcome is frontend-only: a (possibly poisoned) interface plus
    /// the diagnostics, and no translation is attempted. A strict-pipeline
    /// failure on tolerantly-clean input (e.g. fuel exhaustion, or a
    /// translator invariant violation) is folded into the diagnostics
    /// rather than escaping as an error.
    pub fn compile_keep_going(&self, env: &src::Env, term: &src::Term) -> FrontendOutcome {
        let engine =
            if self.options.use_nbe { src::equiv::Engine::Nbe } else { src::equiv::Engine::Step };
        let tolerant = src::tolerant::infer_tolerant_with_engine(env, term, engine);
        let mut diagnostics = tolerant.diagnostics;
        let clean = !diagnostics.iter().any(Diagnostic::is_error)
            && !src::tolerant::is_poisoned(term)
            && !src::tolerant::env_is_poisoned(env);
        if clean {
            match self.compile(env, term) {
                Ok(mut compilation) => {
                    compilation.diagnostics = diagnostics.clone();
                    return FrontendOutcome {
                        interface: compilation.source_type.clone(),
                        diagnostics,
                        compilation: Some(compilation),
                    };
                }
                Err(error) => diagnostics.push(diagnostic_of_compile_error(&error)),
            }
        }
        FrontendOutcome { interface: tolerant.ty, diagnostics, compilation: None }
    }

    /// Parses and compiles a closed program with keep-going semantics:
    /// tolerant parsing with synchronizing recovery, then
    /// [`Compiler::compile_keep_going`] on the recovered term (which may
    /// contain `<error>` holes).
    pub fn compile_text_keep_going(&self, source_text: &str) -> FrontendOutcome {
        let ((term, parse_errors), parse_ns) =
            trace::timed("parse", || src::parse::parse_term_tolerant(source_text));
        let mut diagnostics: Vec<Diagnostic> =
            parse_errors.iter().map(src::parse::ParseError::to_diagnostic).collect();
        let mut outcome = self.compile_keep_going(&src::Env::new(), &term);
        diagnostics.append(&mut outcome.diagnostics);
        outcome.diagnostics = diagnostics;
        if let Some(compilation) = outcome.compilation.as_mut() {
            compilation.phases.parse = parse_ns;
            compilation.diagnostics = outcome.diagnostics.clone();
        }
        outcome
    }

    /// Compiles a component and a closing substitution separately, links the
    /// results in CC-CC, and returns the linked target program (the
    /// "compile separately, link later" workflow of §5.2).
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`]; additionally returns linking errors.
    pub fn compile_and_link(
        &self,
        env: &src::Env,
        term: &src::Term,
        substitution: &SourceSubstitution,
    ) -> Result<tgt::Term> {
        crate::link::check_source_substitution(env, substitution)?;
        let compilation = self.compile(env, term)?;
        let compiled_substitution =
            crate::link::translate_substitution(env, substitution).map_err(CompileError::from)?;
        Ok(crate::link::link_target(&compilation.target, &compiled_substitution))
    }

    /// Compiles a closed ground program and runs both the source and the
    /// compiled versions, returning `(source_value, target_value)` as
    /// booleans.
    ///
    /// # Errors
    ///
    /// Returns an error if compilation fails or either side fails to produce
    /// a boolean.
    pub fn compile_and_run(&self, term: &src::Term) -> Result<(bool, bool)> {
        let compilation = self.compile_closed(term)?;
        let source_value = crate::link::observe_source(term)
            .ok_or_else(|| CompileError::Verify(VerifyError::NotGround(term.to_string())))?;
        let target_value = crate::link::observe_target(&compilation.target).ok_or_else(|| {
            CompileError::Verify(VerifyError::NotGround(compilation.target.to_string()))
        })?;
        Ok((source_value, target_value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccc_source::builder as s;
    use cccc_source::prelude;
    use cccc_util::symbol::Symbol;

    #[test]
    fn default_compiler_compiles_the_corpus() {
        let compiler = Compiler::new();
        for entry in prelude::corpus() {
            let compilation = compiler
                .compile_closed(&entry.term)
                .unwrap_or_else(|e| panic!("`{}` failed to compile: {e}", entry.name));
            assert_eq!(compilation.closure_count(), entry.term.lambda_count());
            assert!(compilation.expansion_factor() >= 1.0);
        }
    }

    #[test]
    fn compile_text_round_trips_through_the_parser() {
        let compiler = Compiler::new();
        let compilation = compiler.compile_text("\\(A : *). \\(x : A). x").unwrap();
        assert_eq!(compilation.closure_count(), 2);
        assert!(compiler.compile_text("\\(A : *").is_err());
        assert!(compiler.compile_text("fst true").is_err());
    }

    #[test]
    fn compile_and_run_agree_on_ground_programs() {
        let compiler = Compiler::new();
        for (entry, expected) in prelude::ground_corpus() {
            let (source_value, target_value) = compiler.compile_and_run(&entry.term).unwrap();
            assert_eq!(source_value, expected, "`{}`", entry.name);
            assert_eq!(target_value, expected, "`{}`", entry.name);
        }
    }

    #[test]
    fn compile_and_link_produces_runnable_targets() {
        let compiler = Compiler::new();
        let env = src::Env::new()
            .with_assumption(Symbol::intern("id"), prelude::poly_id_ty())
            .with_assumption(Symbol::intern("flag"), s::bool_ty());
        let component = s::app(s::app(s::var("id"), s::bool_ty()), s::var("flag"));
        let gamma =
            vec![(Symbol::intern("id"), prelude::poly_id()), (Symbol::intern("flag"), s::ff())];
        let linked = compiler.compile_and_link(&env, &component, &gamma).unwrap();
        assert_eq!(crate::link::observe_target(&linked), Some(false));
    }

    #[test]
    fn options_can_disable_verification() {
        let options = CompilerOptions {
            typecheck_output: false,
            verify_type_preservation: false,
            ..CompilerOptions::default()
        };
        let compiler = Compiler::with_options(options);
        assert!(!compiler.options().typecheck_output);
        compiler.compile_closed(&prelude::poly_id()).unwrap();
    }

    #[test]
    fn errors_are_reported_per_stage() {
        let compiler = Compiler::new();
        assert!(matches!(compiler.compile_text("(((").unwrap_err(), CompileError::Parse(_)));
        assert!(matches!(
            compiler.compile_closed(&s::app(s::tt(), s::ff())).unwrap_err(),
            CompileError::SourceType(_)
        ));
        let env = src::Env::new().with_assumption(Symbol::intern("x"), s::bool_ty());
        assert!(matches!(
            compiler.compile_and_link(&env, &s::var("x"), &Vec::new()).unwrap_err(),
            CompileError::Link(_)
        ));
    }

    #[test]
    fn cache_stats_are_attached_when_requested() {
        let compiler = Compiler::with_options(CompilerOptions {
            collect_cache_stats: true,
            ..CompilerOptions::default()
        });
        let compilation = compiler.compile_closed(&prelude::poly_compose()).unwrap();
        let report = compilation.cache_stats.expect("stats requested");
        // Compiling interned fresh nodes in both languages …
        assert!(report.source_intern.misses > 0);
        assert!(report.target_intern.misses > 0);
        assert!(report.intern_requests() > 0);
        // … and the tables are non-empty afterwards.
        assert!(report.source_intern_table > 0);
        assert!(report.target_intern_table > 0);
        let rendered = report.to_string();
        assert!(rendered.contains("intern"));
        assert!(rendered.contains("conv"));

        // Default options leave the field unpopulated.
        let plain = Compiler::new().compile_closed(&prelude::poly_id()).unwrap();
        assert!(plain.cache_stats.is_none());
    }

    #[test]
    fn cache_snapshots_subtract_into_reports() {
        let before = cache_snapshot();
        let _ = Compiler::new().compile_closed(&prelude::poly_compose()).unwrap();
        let after = cache_snapshot();
        let report = CacheReport::between(&before, &after);
        assert!(report.intern_requests() > 0);
        // Snapshotting is observation only: two consecutive snapshots
        // with no work in between must subtract to all-zero deltas.
        let idle = CacheReport::between(&after, &cache_snapshot());
        assert_eq!(idle.intern_requests(), 0);
        assert_eq!(idle.conv_fast_path_hits(), 0);
        assert_eq!(idle.source_conv.memo_misses, 0);
        assert_eq!(idle.target_conv.memo_misses, 0);
    }

    #[test]
    fn store_stats_subtract_merge_and_render() {
        let before = StoreStats {
            disk_hits: 2,
            disk_misses: 3,
            invalid_entries: 1,
            write_throughs: 4,
            write_errors: 0,
            verified_hits: 1,
            verified_writes: 2,
            bytes_read: 100,
            bytes_written: 400,
            sections_decoded: 2,
            sections_skipped: 4,
            gc_evictions: 0,
            gc_evicted_bytes: 0,
            retries: 1,
            retry_successes: 0,
            entries: 10,
            bytes: 800,
        };
        let after = StoreStats {
            disk_hits: 5,
            disk_misses: 4,
            invalid_entries: 1,
            write_throughs: 6,
            write_errors: 1,
            verified_hits: 3,
            verified_writes: 2,
            bytes_read: 250,
            bytes_written: 600,
            sections_decoded: 5,
            sections_skipped: 10,
            gc_evictions: 2,
            gc_evicted_bytes: 160,
            retries: 4,
            retry_successes: 2,
            entries: 12,
            bytes: 900,
        };
        let delta = after.since(&before);
        assert_eq!(delta.disk_hits, 3);
        assert_eq!(delta.disk_misses, 1);
        assert_eq!(delta.invalid_entries, 0);
        assert_eq!(delta.write_throughs, 2);
        assert_eq!(delta.verified_hits, 2);
        assert_eq!(delta.verified_writes, 0);
        assert_eq!(delta.bytes_read, 150);
        assert_eq!(delta.bytes_written, 200);
        assert_eq!(delta.sections_decoded, 3);
        assert_eq!(delta.sections_skipped, 6);
        assert_eq!(delta.gc_evictions, 2);
        assert_eq!(delta.gc_evicted_bytes, 160);
        assert_eq!(delta.retries, 3);
        assert_eq!(delta.retry_successes, 2);
        assert_eq!(delta.lookups(), 4);
        assert_eq!(delta.entries, 12, "sizes keep the later observation");
        let doubled = delta.merged(&delta);
        assert_eq!(doubled.disk_hits, 6);
        assert_eq!(doubled.bytes_read, 300);
        assert_eq!(doubled.sections_skipped, 12);
        assert_eq!(doubled.gc_evicted_bytes, 320);
        assert_eq!(doubled.retries, 6);
        assert_eq!(doubled.retry_successes, 4);
        assert_eq!(doubled.entries, 12, "sizes take the max, not the sum");
        assert!(delta.to_string().contains("store"));
        assert!(delta.to_string().contains("io 150B r/200B w"));
        assert!(delta.to_string().contains("sections 3d/6s"));
        assert!(delta.to_string().contains("gc 2 (-160B)"));
        assert!(delta.to_string().contains("retry 3/2 ok"));

        // A report whose window saw store activity renders it.
        let mut with_store = CacheReport::default();
        with_store.artifact_store.disk_hits = 1;
        assert!(with_store.to_string().contains("store 1h"));
        assert!(!CacheReport::default().to_string().contains("store"));
    }

    #[test]
    fn phase_durations_are_measured_on_every_compile() {
        let compilation = Compiler::new().compile_closed(&prelude::poly_compose()).unwrap();
        let phases = compilation.phases;
        assert!(phases.typecheck > 0);
        assert!(phases.translate > 0);
        assert!(phases.check > 0);
        assert!(phases.verify > 0);
        assert_eq!(phases.parse, 0, "term-level entry points skip the parser");
        assert_eq!(
            phases.total_ns(),
            phases.parse + phases.typecheck + phases.translate + phases.check + phases.verify
        );
        let rendered = phases.to_string();
        assert!(rendered.contains("typecheck="));
        assert!(!rendered.contains("parse="), "zero phases are omitted: {rendered}");

        // compile_text additionally times the parser.
        let parsed = Compiler::new().compile_text("\\(A : *). \\(x : A). x").unwrap();
        assert!(parsed.phases.parse > 0);

        // Disabling output checking zeroes the downstream phases.
        let unchecked = Compiler::with_options(CompilerOptions {
            typecheck_output: false,
            verify_type_preservation: false,
            ..CompilerOptions::default()
        })
        .compile_closed(&prelude::poly_id())
        .unwrap();
        assert_eq!(unchecked.phases.check, 0);
        assert_eq!(unchecked.phases.verify, 0);

        let merged = phases.merged(&parsed.phases);
        assert_eq!(merged.typecheck, phases.typecheck + parsed.phases.typecheck);
        assert_eq!(merged.parse, parsed.phases.parse);
    }

    #[test]
    fn traced_compiles_emit_phase_spans() {
        let (_, built) = trace::capture(|| {
            Compiler::new().compile_closed(&prelude::poly_compose()).unwrap();
        });
        for phase in ["typecheck", "translate", "check", "verify"] {
            assert_eq!(built.spans_named(phase).count(), 1, "missing span {phase}");
        }
        let metrics = BuildMetrics::of(&built);
        assert_eq!(metrics.workers, 1);
        assert!(metrics.phase_ns("typecheck") > 0);
        assert!(metrics.makespan_ns > 0);
        assert!(metrics.utilization() > 0.0 && metrics.utilization() <= 1.0);
        assert!(metrics.makespan_gap().is_none(), "critical path unknown here");
        assert!(metrics.to_string().contains("workers"));
    }

    #[test]
    fn build_metrics_math_is_pinned() {
        // Hand-built trace: two workers, worker 0 busy 6 of 10, worker 1
        // busy 4 of 10 (top-level spans only; the nested span must not
        // double count).
        use cccc_util::trace::SpanRecord;
        let span = |id: u64, parent: Option<u64>, name: &'static str, worker, s, e| SpanRecord {
            id,
            parent,
            name,
            unit: None,
            worker,
            start_ns: s,
            end_ns: e,
            counters: Vec::new(),
        };
        let built = BuildTrace {
            spans: vec![
                span(0, None, "unit", 0, 0, 6),
                span(1, Some(0), "typecheck", 0, 1, 5),
                span(2, None, "unit", 1, 2, 6),
                span(3, None, "unit", 1, 8, 10),
            ],
            events: Vec::new(),
            total_ns: 12,
        };
        let mut metrics = BuildMetrics::of(&built);
        assert_eq!(metrics.makespan_ns, 10);
        assert_eq!(metrics.workers, 2);
        assert_eq!(metrics.busy_ns(), 12);
        assert_eq!(metrics.worker_busy_ns, vec![(0, 6), (1, 6)]);
        assert!((metrics.utilization() - 12.0 / 20.0).abs() < 1e-9);
        assert_eq!(metrics.phase_ns("typecheck"), 4);
        assert_eq!(metrics.event_count("missing"), 0);
        metrics.critical_path_ns = 8;
        assert!((metrics.makespan_gap().unwrap() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn compilation_reports_sizes() {
        let compilation = Compiler::new().compile_closed(&prelude::poly_compose()).unwrap();
        assert!(compilation.source_size() > 0);
        assert!(compilation.target_size() > compilation.source_size());
        assert!(compilation.expansion_factor() > 1.0);
    }
}
