//! Hoisting closed code to top-level definitions.
//!
//! The point of closure conversion (§1, §3) is that after the translation
//! "the closed code can be lifted to the top-level and statically
//! allocated", while environments remain dynamically allocated. This module
//! implements that lifting as a separate pass over CC-CC:
//!
//! * every `Code { … }` subterm — which rule `[Code]` guarantees is closed —
//!   is replaced by a reference to a fresh top-level *code label*;
//! * the result is a [`Program`]: an ordered list of named code definitions
//!   plus a `main` term that contains no literal code, only labels;
//! * a [`Program`] can be type checked (each definition in the empty
//!   environment, `main` under definitions-as-δ-bindings), evaluated, and
//!   flattened back into a single CC-CC term.
//!
//! Hoisting is semantics-preserving: labels are ordinary variables bound as
//! definitions, so δ-reduction restores the original term, and the tests
//! below (plus `tests/hoisting.rs`) check typing and behaviour are unchanged.

use cccc_target as tgt;
use cccc_target::subst::is_closed;
use cccc_util::symbol::Symbol;
use std::fmt;

/// A single hoisted code definition: a label together with the closed code
/// it names and that code's type.
#[derive(Clone, Debug)]
pub struct CodeDefinition {
    /// The fresh top-level name of the code.
    pub label: Symbol,
    /// The closed code value.
    pub code: tgt::Term,
    /// The `Code (…)…` type of the definition.
    pub ty: tgt::Term,
}

/// A hoisted CC-CC program: statically allocated code plus a main term.
#[derive(Clone, Debug)]
pub struct Program {
    /// Top-level code definitions, in dependency order (a definition may
    /// reference earlier labels inside *its own* nested closures' code —
    /// but never later ones).
    pub definitions: Vec<CodeDefinition>,
    /// The main term; contains code labels but no literal `Code` nodes.
    pub main: tgt::Term,
}

/// Errors produced by the hoisting pass.
#[derive(Clone, Debug)]
pub enum HoistError {
    /// A `Code` node with free variables was encountered; such a term is
    /// ill-typed (rule `[Code]`) and cannot be statically allocated.
    OpenCode(String),
    /// The program (or one of its definitions) failed to re-check after
    /// hoisting.
    IllTyped(String),
}

impl fmt::Display for HoistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoistError::OpenCode(code) => {
                write!(f, "cannot hoist open code `{code}`; rule [Code] requires closed code")
            }
            HoistError::IllTyped(e) => write!(f, "hoisted program is ill-typed: {e}"),
        }
    }
}

impl std::error::Error for HoistError {}

/// Result type for the hoisting pass.
pub type Result<T> = std::result::Result<T, HoistError>;

impl Program {
    /// The number of statically allocated code blocks.
    pub fn code_block_count(&self) -> usize {
        self.definitions.len()
    }

    /// Total AST size of the program (definitions plus main).
    pub fn size(&self) -> usize {
        self.definitions.iter().map(|d| d.code.size()).sum::<usize>() + self.main.size()
    }

    /// The environment binding every code label as a definition, used to
    /// type check and evaluate the main term.
    pub fn label_environment(&self) -> tgt::Env {
        let mut env = tgt::Env::new();
        for definition in &self.definitions {
            env.push_definition(definition.label, definition.code.clone(), definition.ty.clone());
        }
        env
    }

    /// Type checks the program: every definition's code — with earlier code
    /// labels δ-expanded, since the paper's `[Code]` rule has no notion of
    /// top-level constants — must check closed, and `main` must check under
    /// the label environment. Returns the type of `main`.
    ///
    /// # Errors
    ///
    /// Returns [`HoistError::IllTyped`] naming the offending definition or
    /// the main term.
    pub fn typecheck(&self) -> Result<tgt::Term> {
        let mut env = tgt::Env::new();
        let mut expansions: Vec<(Symbol, tgt::Term)> = Vec::new();
        for definition in &self.definitions {
            // Earlier labels may appear inside later definitions (a nested
            // closure references the label of its inner code); expand them
            // so the standard, empty-environment [Code] rule applies.
            let expanded = expand_labels(&definition.code, &expansions);
            let inferred = tgt::typecheck::infer(&tgt::Env::new(), &expanded).map_err(|e| {
                HoistError::IllTyped(format!("definition `{}`: {e}", definition.label))
            })?;
            if !tgt::equiv::definitionally_equal(&tgt::Env::new(), &inferred, &definition.ty) {
                return Err(HoistError::IllTyped(format!(
                    "definition `{}` has type `{inferred}` but was recorded at `{}`",
                    definition.label, definition.ty
                )));
            }
            expansions.push((definition.label, expanded));
            env.push_definition(definition.label, definition.code.clone(), definition.ty.clone());
        }
        tgt::typecheck::infer(&env, &self.main)
            .map_err(|e| HoistError::IllTyped(format!("main term: {e}")))
    }

    /// Flattens the program back into a single term by δ-expanding every
    /// label (the inverse of hoisting).
    pub fn flatten(&self) -> tgt::Term {
        let mut term = self.main.clone();
        // Later definitions may mention earlier labels, so substitute from
        // the last definition backwards.
        for definition in self.definitions.iter().rev() {
            term = tgt::subst::subst(&term, definition.label, &definition.code);
        }
        term
    }

    /// Evaluates the program: code labels are expanded (statically allocated
    /// code is "loaded") and the resulting closed term is normalized.
    pub fn evaluate(&self) -> tgt::Term {
        tgt::reduce::normalize_default(&tgt::Env::new(), &self.flatten())
    }
}

/// Hoists every (necessarily closed) `Code` node of `term` to a top-level
/// definition, returning the resulting [`Program`].
///
/// # Errors
///
/// Returns [`HoistError::OpenCode`] if a `Code` node with free variables is
/// encountered (such a term is ill-typed to begin with).
pub fn hoist(term: &tgt::Term) -> Result<Program> {
    let mut definitions = Vec::new();
    let main = hoist_term(term, &mut definitions)?;
    Ok(Program { definitions, main })
}

/// Hoists and then re-checks the resulting program.
///
/// # Errors
///
/// See [`hoist`] and [`Program::typecheck`].
pub fn hoist_checked(term: &tgt::Term) -> Result<(Program, tgt::Term)> {
    let program = hoist(term)?;
    let ty = program.typecheck()?;
    Ok((program, ty))
}

fn hoist_term(term: &tgt::Term, definitions: &mut Vec<CodeDefinition>) -> Result<tgt::Term> {
    use tgt::Term;
    Ok(match term {
        Term::Var(_)
        | Term::Sort(_)
        | Term::Unit
        | Term::UnitVal
        | Term::BoolTy
        | Term::BoolLit(_) => term.clone(),
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            // Hoist nested code inside this code's own components first, so
            // inner labels are defined before the outer definition that
            // mentions them.
            let hoisted = Term::Code {
                env_binder: *env_binder,
                env_ty: hoist_term(env_ty, definitions)?.rc(),
                arg_binder: *arg_binder,
                arg_ty: hoist_term(arg_ty, definitions)?.rc(),
                body: hoist_term(body, definitions)?.rc(),
            };
            // Code must be closed *up to previously hoisted labels*, which
            // are static constants.
            let labels: Vec<Symbol> = definitions.iter().map(|d| d.label).collect();
            let stray: Vec<Symbol> = tgt::subst::free_vars(&hoisted)
                .into_iter()
                .filter(|v| !labels.contains(v))
                .collect();
            if !stray.is_empty() {
                return Err(HoistError::OpenCode(hoisted.to_string()));
            }
            // Record the type of the fully expanded (label-free) code, which
            // is what the paper's [Code] rule checks.
            let expansions: Vec<(Symbol, tgt::Term)> =
                definitions.iter().map(|d| (d.label, d.code.clone())).collect();
            let expanded = expand_labels(&hoisted, &expansions);
            debug_assert!(is_closed(&expanded));
            let ty = tgt::typecheck::infer(&tgt::Env::new(), &expanded)
                .map_err(|e| HoistError::IllTyped(e.to_string()))?;
            let label = Symbol::fresh("code");
            definitions.push(CodeDefinition { label, code: hoisted, ty });
            Term::Var(label)
        }
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => Term::CodeTy {
            env_binder: *env_binder,
            env_ty: hoist_term(env_ty, definitions)?.rc(),
            arg_binder: *arg_binder,
            arg_ty: hoist_term(arg_ty, definitions)?.rc(),
            result: hoist_term(result, definitions)?.rc(),
        },
        Term::Closure { code, env } => Term::Closure {
            code: hoist_term(code, definitions)?.rc(),
            env: hoist_term(env, definitions)?.rc(),
        },
        Term::Pi { binder, domain, codomain } => Term::Pi {
            binder: *binder,
            domain: hoist_term(domain, definitions)?.rc(),
            codomain: hoist_term(codomain, definitions)?.rc(),
        },
        Term::Sigma { binder, first, second } => Term::Sigma {
            binder: *binder,
            first: hoist_term(first, definitions)?.rc(),
            second: hoist_term(second, definitions)?.rc(),
        },
        Term::App { func, arg } => Term::App {
            func: hoist_term(func, definitions)?.rc(),
            arg: hoist_term(arg, definitions)?.rc(),
        },
        Term::Let { binder, annotation, bound, body } => Term::Let {
            binder: *binder,
            annotation: hoist_term(annotation, definitions)?.rc(),
            bound: hoist_term(bound, definitions)?.rc(),
            body: hoist_term(body, definitions)?.rc(),
        },
        Term::Pair { first, second, annotation } => Term::Pair {
            first: hoist_term(first, definitions)?.rc(),
            second: hoist_term(second, definitions)?.rc(),
            annotation: hoist_term(annotation, definitions)?.rc(),
        },
        Term::Fst(e) => Term::Fst(hoist_term(e, definitions)?.rc()),
        Term::Snd(e) => Term::Snd(hoist_term(e, definitions)?.rc()),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: hoist_term(scrutinee, definitions)?.rc(),
            then_branch: hoist_term(then_branch, definitions)?.rc(),
            else_branch: hoist_term(else_branch, definitions)?.rc(),
        },
    })
}

/// δ-expands code labels into `term`, later definitions first so that
/// references to earlier labels introduced by the expansion are themselves
/// expanded by the remaining iterations.
fn expand_labels(term: &tgt::Term, expansions: &[(Symbol, tgt::Term)]) -> tgt::Term {
    let mut out = term.clone();
    for (label, code) in expansions.iter().rev() {
        out = tgt::subst::subst(&out, *label, code);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use cccc_source as src;
    use cccc_source::prelude;
    use cccc_target::builder as t;
    use cccc_target::subst::alpha_eq;

    fn compile(term: &src::Term) -> tgt::Term {
        translate(&src::Env::new(), term).unwrap()
    }

    #[test]
    fn hoisting_a_literal_produces_no_definitions() {
        let program = hoist(&t::tt()).unwrap();
        assert_eq!(program.code_block_count(), 0);
        assert!(alpha_eq(&program.main, &t::tt()));
        assert!(alpha_eq(&program.flatten(), &t::tt()));
    }

    #[test]
    fn each_closure_yields_one_code_block() {
        let compiled = compile(&prelude::poly_id());
        let program = hoist(&compiled).unwrap();
        assert_eq!(program.code_block_count(), 2);
        // Main mentions labels but contains no literal code.
        let mut literal_code = 0;
        program.main.visit(&mut |node| {
            if matches!(node, tgt::Term::Code { .. }) {
                literal_code += 1;
            }
        });
        assert_eq!(literal_code, 0);
    }

    #[test]
    fn hoisted_programs_type_check_and_flatten_back() {
        for entry in prelude::corpus().into_iter().take(12) {
            let compiled = compile(&entry.term);
            let (program, ty) = hoist_checked(&compiled)
                .unwrap_or_else(|e| panic!("hoisting `{}` failed: {e}", entry.name));
            // The hoisted program has the same type as the original term.
            let original_ty = tgt::typecheck::infer(&tgt::Env::new(), &compiled).unwrap();
            assert!(
                tgt::equiv::definitionally_equal(&program.label_environment(), &ty, &original_ty),
                "`{}` changed type after hoisting",
                entry.name
            );
            // Flattening restores an α-equivalent term.
            assert!(alpha_eq(&program.flatten(), &compiled), "`{}` flatten mismatch", entry.name);
        }
    }

    #[test]
    fn hoisted_programs_evaluate_to_the_same_values() {
        for (entry, expected) in prelude::ground_corpus().into_iter().take(10) {
            let compiled = compile(&entry.term);
            let program = hoist(&compiled).unwrap();
            let value = program.evaluate();
            assert!(
                matches!(value, tgt::Term::BoolLit(b) if b == expected),
                "`{}` evaluated to {value} after hoisting",
                entry.name
            );
        }
    }

    #[test]
    fn open_code_cannot_be_hoisted() {
        let open = t::code("n", t::unit_ty(), "x", t::bool_ty(), t::var("leak"));
        assert!(matches!(hoist(&open), Err(HoistError::OpenCode(_))));
    }

    #[test]
    fn program_size_accounts_for_definitions_and_main() {
        let compiled = compile(&prelude::poly_compose());
        let program = hoist(&compiled).unwrap();
        assert!(program.size() >= compiled.size());
        assert!(program.code_block_count() >= 1);
    }

    #[test]
    fn nested_code_definitions_appear_before_their_users() {
        let compiled = compile(&prelude::poly_id());
        let program = hoist(&compiled).unwrap();
        // The inner code (which the outer code's body references via its
        // label) must come first; checking the program enforces this.
        assert!(program.typecheck().is_ok());
        // And reordering the definitions breaks it.
        if program.definitions.len() >= 2 {
            let mut reordered = program.clone();
            reordered.definitions.reverse();
            assert!(reordered.typecheck().is_err());
        }
    }

    #[test]
    fn hoist_error_display() {
        let err = HoistError::OpenCode("code".into());
        assert!(err.to_string().contains("closed"));
    }
}
