//! Executable checkers for the paper's compiler metatheory (§5).
//!
//! The paper proves its lemmas once and for all on paper; this module turns
//! each lemma *statement* into an executable check that can be run on any
//! concrete program (the hand-written corpus, the random generator's output,
//! user programs). A check failure would be a counterexample to the lemma —
//! none exist, which is what the test suite establishes over thousands of
//! programs.
//!
//! | Paper statement | Checker |
//! |---|---|
//! | Lemma 5.1 (Compositionality) | [`check_compositionality`] |
//! | Lemma 5.2/5.3 (Preservation of reduction) | [`check_reduction_preservation`] |
//! | Lemma 5.4 (Coherence) | [`check_coherence`] |
//! | Theorem 5.6 (Type preservation) | [`check_type_preservation`] |
//! | Theorem 5.7 (Separate compilation) | [`check_separate_compilation`] |
//! | Corollary 5.8 (Whole programs) | [`check_whole_program`] |
//!
//! The checkers run on the memoized, hash-consed checking stack: the CC-CC
//! type checker's `[Code]` memo and both equivalence checkers' conversion
//! memos persist across checks on a thread, so verifying a corpus re-checks
//! each distinct code block and decides each distinct conversion pair once.

use crate::link::{
    check_source_substitution, ground_values_related, link_source, link_target,
    translate_substitution, LinkError, SourceSubstitution,
};
use crate::translate::{translate, translate_env, TranslateError};
use cccc_source as src;
use cccc_target as tgt;
use cccc_util::symbol::Symbol;
use std::fmt;

/// Errors (i.e. potential counterexamples) produced by the lemma checkers.
#[derive(Clone, Debug)]
pub enum VerifyError {
    /// The translation itself failed.
    Translate(String),
    /// The source side of the statement's premise failed (e.g. the source
    /// term is ill-typed, or the two source terms are not equivalent).
    SourcePremise(String),
    /// Linking failed.
    Link(String),
    /// The translated program is ill-typed in CC-CC — a counterexample to
    /// type preservation.
    TargetIllTyped(String),
    /// Two target terms that the statement requires to be definitionally
    /// equal are not.
    NotEquivalent {
        /// Which statement was being checked.
        context: String,
        /// Left-hand side, pretty-printed.
        left: String,
        /// Right-hand side, pretty-printed.
        right: String,
    },
    /// The source and target observations disagree — a counterexample to
    /// correctness of separate compilation.
    ObservationMismatch {
        /// The source observation.
        source: String,
        /// The target observation.
        target: String,
    },
    /// The program does not produce a ground (boolean) observation.
    NotGround(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Translate(e) => write!(f, "translation failed: {e}"),
            VerifyError::SourcePremise(e) => write!(f, "source premise not satisfied: {e}"),
            VerifyError::Link(e) => write!(f, "linking failed: {e}"),
            VerifyError::TargetIllTyped(e) => {
                write!(f, "translated program is ill-typed in CC-CC: {e}")
            }
            VerifyError::NotEquivalent { context, left, right } => {
                write!(f, "{context}: `{left}` is not definitionally equal to `{right}`")
            }
            VerifyError::ObservationMismatch { source, target } => {
                write!(
                    f,
                    "observation mismatch: source produced {source}, target produced {target}"
                )
            }
            VerifyError::NotGround(e) => write!(f, "program did not produce a boolean: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<TranslateError> for VerifyError {
    fn from(e: TranslateError) -> VerifyError {
        VerifyError::Translate(e.to_string())
    }
}

impl From<LinkError> for VerifyError {
    fn from(e: LinkError) -> VerifyError {
        VerifyError::Link(e.to_string())
    }
}

/// Result type for the checkers.
pub type Result<T> = std::result::Result<T, VerifyError>;

/// The evidence returned by a successful type-preservation check.
#[derive(Clone, Debug)]
pub struct TypePreservation {
    /// The inferred source type `A`.
    pub source_type: src::Term,
    /// The translated term `e⁺`.
    pub target_term: tgt::Term,
    /// The type CC-CC infers for `e⁺`.
    pub target_type: tgt::Term,
    /// The translation `A⁺` of the source type (definitionally equal to
    /// `target_type`).
    pub expected_target_type: tgt::Term,
}

/// **Theorem 5.6 (Type preservation).** If `Γ ⊢ e : A` then `Γ⁺ ⊢ e⁺ : A⁺`.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing the counterexample if the translated
/// term fails to check at the translated type.
pub fn check_type_preservation(env: &src::Env, term: &src::Term) -> Result<TypePreservation> {
    let source_type =
        src::typecheck::infer(env, term).map_err(|e| VerifyError::SourcePremise(e.to_string()))?;

    let target_env = translate_env(env)?;
    let target_term = translate(env, term)?;
    let expected_target_type = translate(env, &source_type)?;

    let target_type = tgt::typecheck::infer(&target_env, &target_term)
        .map_err(|e| VerifyError::TargetIllTyped(e.to_string()))?;

    if !tgt::equiv::definitionally_equal(&target_env, &target_type, &expected_target_type) {
        return Err(VerifyError::NotEquivalent {
            context: "type preservation (Theorem 5.6)".to_owned(),
            left: target_type.to_string(),
            right: expected_target_type.to_string(),
        });
    }
    Ok(TypePreservation { source_type, target_term, target_type, expected_target_type })
}

/// **Lemma 5.1 (Compositionality).** `(e1[e2/x])⁺ ≡ e1⁺[e2⁺/x]`.
///
/// `env` must bind `x` (so that `e1` is well-typed) and `e2` must be
/// well-typed in `env` as well.
///
/// # Errors
///
/// Returns a [`VerifyError`] if either side fails to translate or the two
/// sides are not definitionally equal in CC-CC.
pub fn check_compositionality(
    env: &src::Env,
    e1: &src::Term,
    x: Symbol,
    e2: &src::Term,
) -> Result<()> {
    // Left-hand side: substitute in CC, then translate.
    let substituted = src::subst::subst(e1, x, e2);
    let lhs = translate(env, &substituted)?;

    // Right-hand side: translate both pieces, then substitute in CC-CC.
    let e1_translated = translate(env, e1)?;
    let e2_translated = translate(env, e2)?;
    let rhs = tgt::subst::subst(&e1_translated, x, &e2_translated);

    let target_env = translate_env(env)?;
    if tgt::equiv::definitionally_equal(&target_env, &lhs, &rhs) {
        Ok(())
    } else {
        Err(VerifyError::NotEquivalent {
            context: "compositionality (Lemma 5.1)".to_owned(),
            left: lhs.to_string(),
            right: rhs.to_string(),
        })
    }
}

/// **Lemmas 5.2/5.3 (Preservation of reduction).** Follows the source
/// reduction sequence `e ⊲ e1 ⊲ … ⊲ ek` for at most `max_steps` steps and
/// checks that each translated reduct stays definitionally equal to the
/// translation of its predecessor (the lemma's `e⁺ ⊲* ē ≡ e'⁺`). Returns the
/// number of steps validated.
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the first step whose translations are
/// not equivalent.
pub fn check_reduction_preservation(
    env: &src::Env,
    term: &src::Term,
    max_steps: usize,
) -> Result<usize> {
    // Reduction preservation is only meaningful for well-typed terms.
    src::typecheck::infer(env, term).map_err(|e| VerifyError::SourcePremise(e.to_string()))?;

    let target_env = translate_env(env)?;
    let mut current = term.clone();
    let mut current_translated = translate(env, &current)?;
    let mut steps = 0;
    while steps < max_steps {
        match src::reduce::step(env, &current) {
            None => break,
            Some(next) => {
                let next_translated = translate(env, &next)?;
                if !tgt::equiv::definitionally_equal(
                    &target_env,
                    &current_translated,
                    &next_translated,
                ) {
                    return Err(VerifyError::NotEquivalent {
                        context: format!("preservation of reduction (Lemma 5.2) at step {steps}"),
                        left: current_translated.to_string(),
                        right: next_translated.to_string(),
                    });
                }
                current = next;
                current_translated = next_translated;
                steps += 1;
            }
        }
    }
    Ok(steps)
}

/// **Lemma 5.4 (Coherence).** If `Γ ⊢ e1 ≡ e2` then `Γ⁺ ⊢ e1⁺ ≡ e2⁺`.
///
/// # Errors
///
/// Returns [`VerifyError::SourcePremise`] if the source terms are not
/// equivalent to begin with, and [`VerifyError::NotEquivalent`] if the
/// translations fail to be equivalent (a counterexample).
pub fn check_coherence(env: &src::Env, e1: &src::Term, e2: &src::Term) -> Result<()> {
    if !src::equiv::definitionally_equal(env, e1, e2) {
        return Err(VerifyError::SourcePremise(format!(
            "`{e1}` and `{e2}` are not definitionally equal in CC"
        )));
    }
    let target_env = translate_env(env)?;
    let left = translate(env, e1)?;
    let right = translate(env, e2)?;
    if tgt::equiv::definitionally_equal(&target_env, &left, &right) {
        Ok(())
    } else {
        Err(VerifyError::NotEquivalent {
            context: "coherence (Lemma 5.4)".to_owned(),
            left: left.to_string(),
            right: right.to_string(),
        })
    }
}

/// **Theorem 5.7 (Correctness of separate compilation).** If `Γ ⊢ e : Bool`,
/// `Γ ⊢ γ`, and `γ(e) ⊲* v`, then `γ⁺(e⁺) ⊲* v'` with `v ≈ v'`. Returns the
/// common boolean observation.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the premises fail or the observations
/// disagree.
pub fn check_separate_compilation(
    env: &src::Env,
    term: &src::Term,
    substitution: &SourceSubstitution,
) -> Result<bool> {
    // Premises: the component is well-typed and γ is a valid closing
    // substitution for Γ.
    src::typecheck::infer(env, term).map_err(|e| VerifyError::SourcePremise(e.to_string()))?;
    check_source_substitution(env, substitution)?;

    // Source side: link in CC, then run (through the NbE engine — the
    // observation only needs the value, and Lemma 5.2's step-by-step
    // checking is covered by `check_reduction_preservation`).
    let linked_source = link_source(term, substitution);
    let source_value = src::nbe::normalize_nbe_default(&src::Env::new(), &linked_source);
    let source_observation = match source_value {
        src::Term::BoolLit(b) => b,
        other => return Err(VerifyError::NotGround(other.to_string())),
    };

    // Target side: compile the component and the substitution separately,
    // then link in CC-CC and run.
    let compiled_component = translate(env, term)?;
    let compiled_substitution = translate_substitution(env, substitution)?;
    let linked_target = link_target(&compiled_component, &compiled_substitution);
    let target_value = tgt::nbe::normalize_nbe_default(&tgt::Env::new(), &linked_target);

    if ground_values_related(&src::Term::BoolLit(source_observation), &target_value) {
        Ok(source_observation)
    } else {
        Err(VerifyError::ObservationMismatch {
            source: source_observation.to_string(),
            target: target_value.to_string(),
        })
    }
}

/// **Corollary 5.8 (Whole-program correctness).** A closed program of ground
/// type evaluates to the same boolean before and after compilation.
///
/// # Errors
///
/// See [`check_separate_compilation`].
pub fn check_whole_program(term: &src::Term) -> Result<bool> {
    check_separate_compilation(&src::Env::new(), term, &Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cccc_source::builder as s;
    use cccc_source::prelude;

    fn sym(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn type_preservation_on_the_whole_corpus() {
        for entry in prelude::corpus() {
            check_type_preservation(&src::Env::new(), &entry.term)
                .unwrap_or_else(|e| panic!("type preservation failed on `{}`: {e}", entry.name));
        }
    }

    #[test]
    fn type_preservation_on_open_terms() {
        let env = src::Env::new()
            .with_assumption(sym("A"), s::star())
            .with_assumption(sym("a"), s::var("A"))
            .with_assumption(sym("b"), s::bool_ty());
        // λ x : A. a — captures both A and a.
        let term = s::lam("x", s::var("A"), s::var("a"));
        check_type_preservation(&env, &term).unwrap();
        // if b then a-projection games else …
        let term = s::ite(s::var("b"), s::var("b"), s::ff());
        check_type_preservation(&env, &term).unwrap();
    }

    #[test]
    fn type_preservation_rejects_ill_typed_sources() {
        let err = check_type_preservation(&src::Env::new(), &s::app(s::tt(), s::ff())).unwrap_err();
        assert!(matches!(err, VerifyError::SourcePremise(_)));
    }

    #[test]
    fn compositionality_on_the_motivating_example() {
        // (λ y : A. e)[e2/x] — Lemma 5.1's discussion: substituting before or
        // after translation produces different environment shapes that must
        // still be equivalent.
        let env = src::Env::new()
            .with_assumption(sym("x"), s::bool_ty())
            .with_assumption(sym("other"), s::bool_ty());
        let e1 = s::lam("y", s::bool_ty(), s::ite(s::var("x"), s::var("y"), s::var("other")));
        let e2 = s::tt();
        check_compositionality(&env, &e1, sym("x"), &e2).unwrap();
    }

    #[test]
    fn compositionality_with_type_variables() {
        let env = src::Env::new()
            .with_assumption(sym("A"), s::star())
            .with_assumption(sym("a"), s::var("A"));
        // e1 = λ y : A. a, substituting Bool for A is not allowed (A appears
        // in the type of a), so substitute for `a` instead under A := itself.
        let e1 = s::lam("y", s::var("A"), s::var("a"));
        let e2 = s::var("a");
        check_compositionality(&env, &e1, sym("a"), &e2).unwrap();
    }

    #[test]
    fn compositionality_on_ground_redexes() {
        let env = src::Env::new().with_assumption(sym("x"), s::bool_ty());
        let e1 = s::app(s::lam("y", s::bool_ty(), s::var("y")), s::var("x"));
        check_compositionality(&env, &e1, sym("x"), &s::ff()).unwrap();
    }

    #[test]
    fn reduction_preservation_on_ground_corpus() {
        for (entry, _) in prelude::ground_corpus() {
            let steps = check_reduction_preservation(&src::Env::new(), &entry.term, 64)
                .unwrap_or_else(|e| {
                    panic!("reduction preservation failed on `{}`: {e}", entry.name)
                });
            // Programs in the ground corpus actually reduce.
            assert!(steps > 0 || entry.term.is_value(), "`{}` took no steps", entry.name);
        }
    }

    #[test]
    fn coherence_on_eta_equivalent_terms() {
        // λ x : Bool. f x ≡ f  must be preserved by the translation
        // (this exercises the closure-η rule in the target).
        let env = src::Env::new().with_assumption(sym("f"), s::arrow(s::bool_ty(), s::bool_ty()));
        let expanded = s::lam("x", s::bool_ty(), s::app(s::var("f"), s::var("x")));
        check_coherence(&env, &expanded, &s::var("f")).unwrap();
    }

    #[test]
    fn coherence_on_beta_equivalent_terms() {
        let redex = s::app(prelude::not_fn(), s::tt());
        check_coherence(&src::Env::new(), &redex, &s::ff()).unwrap();
    }

    #[test]
    fn coherence_requires_the_source_premise() {
        let err = check_coherence(&src::Env::new(), &s::tt(), &s::ff()).unwrap_err();
        assert!(matches!(err, VerifyError::SourcePremise(_)));
    }

    #[test]
    fn whole_program_correctness_on_ground_corpus() {
        for (entry, expected) in prelude::ground_corpus() {
            let observed = check_whole_program(&entry.term).unwrap_or_else(|e| {
                panic!("whole-program correctness failed on `{}`: {e}", entry.name)
            });
            assert_eq!(observed, expected, "`{}`", entry.name);
        }
    }

    #[test]
    fn separate_compilation_with_a_polymorphic_library() {
        // Component: uses an abstract identity function and an abstract flag.
        let env = src::Env::new()
            .with_assumption(sym("id"), prelude::poly_id_ty())
            .with_assumption(sym("flag"), s::bool_ty());
        let component =
            s::ite(s::app(s::app(s::var("id"), s::bool_ty()), s::var("flag")), s::ff(), s::tt());
        let gamma = vec![(sym("id"), prelude::poly_id()), (sym("flag"), s::tt())];
        let observed = check_separate_compilation(&env, &component, &gamma).unwrap();
        assert!(!observed);
    }

    #[test]
    fn separate_compilation_rejects_non_ground_components() {
        let env = src::Env::new();
        let err = check_separate_compilation(&env, &prelude::poly_id(), &Vec::new()).unwrap_err();
        assert!(matches!(err, VerifyError::NotGround(_)));
    }

    #[test]
    fn separate_compilation_rejects_invalid_substitutions() {
        let env = src::Env::new().with_assumption(sym("flag"), s::bool_ty());
        let component = s::var("flag");
        let err = check_separate_compilation(&env, &component, &Vec::new()).unwrap_err();
        assert!(matches!(err, VerifyError::Link(_)));
    }

    #[test]
    fn verify_error_display_is_informative() {
        let err =
            VerifyError::ObservationMismatch { source: "true".into(), target: "false".into() };
        assert!(err.to_string().contains("mismatch"));
        let err = VerifyError::NotEquivalent {
            context: "coherence".into(),
            left: "a".into(),
            right: "b".into(),
        };
        assert!(err.to_string().contains("coherence"));
    }
}
