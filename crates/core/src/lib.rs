//! Typed closure conversion from CC to CC-CC — the primary contribution of
//! *Typed Closure Conversion for the Calculus of Constructions*
//! (Bowman & Ahmed, PLDI 2018).
//!
//! The crate provides:
//!
//! * [`fv`] — the dependency-ordered free-variable metafunction `FV`
//!   (Figure 10);
//! * [`mod@translate`] — the closure-conversion translation (Figure 9);
//! * [`link`] — components, closing substitutions, linking, and the
//!   ground-value observation relation `≈` (§5.2);
//! * [`verify`] — executable checkers for the compiler metatheory
//!   (Lemmas 5.1–5.4, Theorems 5.6–5.8);
//! * [`pipeline`] — a user-facing [`pipeline::Compiler`] that parses,
//!   type checks, closure converts, re-checks, and verifies.
//!
//! # Example
//!
//! ```
//! use cccc_core::pipeline::Compiler;
//!
//! // Compile the polymorphic identity applied at Bool.
//! let compiler = Compiler::new();
//! let compilation = compiler
//!     .compile_text("(\\(A : *). \\(x : A). x) Bool true")
//!     .unwrap();
//!
//! // Every source λ became a closure over closed code …
//! assert_eq!(compilation.closure_count(), 2);
//! // … and the compiled program still evaluates to `true`.
//! let (source_value, target_value) = compiler
//!     .compile_and_run(&compilation.source)
//!     .unwrap();
//! assert!(source_value && target_value);
//! ```

pub mod fv;
pub mod hoist;
pub mod link;
pub mod pipeline;
pub mod translate;
pub mod verify;

pub use pipeline::{
    cache_snapshot, BuildOutcome, CacheReport, CacheSnapshot, Compilation, CompileError, Compiler,
    CompilerOptions,
};
pub use translate::{translate, translate_env, translate_program, TranslateError};
