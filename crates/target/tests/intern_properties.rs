//! Property suite for the hash-consed term kernel on CC-CC.
//!
//! Mirrors `cccc-source`'s `intern_properties` suite on the target
//! language, whose two-binder `Code`/`CodeTy` forms and closedness
//! predicate are the metadata's hardest cases:
//!
//! * **identity vs. α-equivalence** — an independent bottom-up rebuild of
//!   a program converges onto the same interned nodes, and node identity
//!   implies α-equivalence;
//! * **metadata agreement** — the cached free-variable set, the `[Code]`
//!   closedness bit, depth, and size match an independent
//!   recomputed-from-scratch traversal;
//! * **memoized conversion** — the memoized `equiv` agrees with the raw
//!   NbE engine (`conv_terms`, no memo) and the step-based oracle
//!   (`equiv_spec`), and answers identically when asked again from cache.

use cccc_target::builder::*;
use cccc_target::subst::alpha_eq;
use cccc_target::{equiv, nbe, typecheck, Env, RcTerm, Term};
use cccc_util::fuel::Fuel;
use cccc_util::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A deterministic, seedable generator of well-typed ground CC-CC
/// programs, covering the shapes closure conversion emits: empty and
/// capturing environments, ζ-redexes, projections, conditionals.
struct TargetGenerator {
    rng: StdRng,
    counter: u64,
}

impl TargetGenerator {
    fn new(seed: u64) -> TargetGenerator {
        TargetGenerator { rng: StdRng::seed_from_u64(seed), counter: 0 }
    }

    fn fresh(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        Symbol::fresh(&format!("{base}{}", self.counter))
    }

    fn gen_bool(&mut self, depth: usize) -> Term {
        if depth == 0 {
            return bool_lit(self.rng.gen_bool(0.5));
        }
        match self.rng.gen_range(0..6u32) {
            0 => bool_lit(self.rng.gen_bool(0.5)),
            1 => ite(self.gen_bool(depth - 1), self.gen_bool(depth - 1), self.gen_bool(depth - 1)),
            2 => {
                let annotation = product(bool_ty(), bool_ty());
                let p = pair(self.gen_bool(depth - 1), self.gen_bool(depth - 1), annotation);
                if self.rng.gen_bool(0.5) {
                    fst(p)
                } else {
                    snd(p)
                }
            }
            3 => {
                let x = self.fresh("x");
                let body = ite(var_sym(x), bool_lit(self.rng.gen_bool(0.5)), var_sym(x));
                let clo =
                    closure(code_sym(self.fresh("n"), unit_ty(), x, bool_ty(), body), unit_val());
                app(clo, self.gen_bool(depth - 1))
            }
            4 => {
                let n = self.fresh("n");
                let x = self.fresh("x");
                let env_ty = product(bool_ty(), unit_ty());
                let body = ite(fst(var_sym(n)), var_sym(x), bool_lit(self.rng.gen_bool(0.5)));
                let clo = closure(
                    code_sym(n, env_ty.clone(), x, bool_ty(), body),
                    pair(self.gen_bool(depth - 1), unit_val(), env_ty),
                );
                app(clo, self.gen_bool(depth - 1))
            }
            _ => {
                let u = self.fresh("u");
                let_sym(
                    u,
                    bool_ty(),
                    self.gen_bool(depth - 1),
                    ite(var_sym(u), self.gen_bool(depth - 1), var_sym(u)),
                )
            }
        }
    }
}

const SEEDS: u64 = 60;

/// Independent reference implementation of the free-variable set — a plain
/// traversal with an explicit bound-variable stack, including the
/// telescoped scoping of `Code`/`CodeTy` (`env_binder` over argument type
/// and body, `arg_binder` over the body only).
fn reference_free_vars(term: &Term, bound: &mut Vec<Symbol>, out: &mut HashSet<Symbol>) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) {
                out.insert(*x);
            }
        }
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain: body }
        | Term::Sigma { binder, first: domain, second: body } => {
            reference_free_vars(domain, bound, out);
            bound.push(*binder);
            reference_free_vars(body, bound, out);
            bound.pop();
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            reference_free_vars(env_ty, bound, out);
            bound.push(*env_binder);
            reference_free_vars(arg_ty, bound, out);
            bound.push(*arg_binder);
            reference_free_vars(body, bound, out);
            bound.pop();
            bound.pop();
        }
        Term::Closure { code, env } => {
            reference_free_vars(code, bound, out);
            reference_free_vars(env, bound, out);
        }
        Term::App { func, arg } => {
            reference_free_vars(func, bound, out);
            reference_free_vars(arg, bound, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            reference_free_vars(annotation, bound, out);
            reference_free_vars(bound_term, bound, out);
            bound.push(*binder);
            reference_free_vars(body, bound, out);
            bound.pop();
        }
        Term::Pair { first, second, annotation } => {
            reference_free_vars(first, bound, out);
            reference_free_vars(second, bound, out);
            reference_free_vars(annotation, bound, out);
        }
        Term::Fst(e) | Term::Snd(e) => reference_free_vars(e, bound, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            reference_free_vars(scrutinee, bound, out);
            reference_free_vars(then_branch, bound, out);
            reference_free_vars(else_branch, bound, out);
        }
    }
}

fn reference_size(term: &Term) -> usize {
    let mut n = 0;
    term.visit(&mut |_| n += 1);
    n
}

fn assert_metadata_matches(node: &RcTerm) {
    let mut expected = HashSet::new();
    reference_free_vars(node, &mut Vec::new(), &mut expected);
    let cached: HashSet<Symbol> = node.free_vars().iter().collect();
    assert_eq!(cached, expected, "cached free vars disagree on {}", &**node);
    assert_eq!(node.is_closed(), expected.is_empty());
    assert_eq!(
        cccc_target::subst::is_closed(node),
        expected.is_empty(),
        "is_closed disagrees on {}",
        &**node
    );
    assert_eq!(node.meta().size as usize, reference_size(node), "size disagrees on {}", &**node);
    assert_eq!(node.meta().depth as usize, node.depth(), "depth disagrees on {}", &**node);
}

/// Rebuilds a term from scratch, re-interning every node bottom-up —
/// nothing is shared with the input except `Symbol`s.
fn deep_rebuild(term: &Term) -> RcTerm {
    let r = |t: &RcTerm| deep_rebuild(t);
    match term {
        Term::Var(_)
        | Term::Sort(_)
        | Term::Unit
        | Term::UnitVal
        | Term::BoolTy
        | Term::BoolLit(_) => term.clone().rc(),
        Term::Pi { binder, domain, codomain } => {
            Term::Pi { binder: *binder, domain: r(domain), codomain: r(codomain) }.rc()
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => Term::Code {
            env_binder: *env_binder,
            env_ty: r(env_ty),
            arg_binder: *arg_binder,
            arg_ty: r(arg_ty),
            body: r(body),
        }
        .rc(),
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => Term::CodeTy {
            env_binder: *env_binder,
            env_ty: r(env_ty),
            arg_binder: *arg_binder,
            arg_ty: r(arg_ty),
            result: r(result),
        }
        .rc(),
        Term::Closure { code, env } => Term::Closure { code: r(code), env: r(env) }.rc(),
        Term::App { func, arg } => Term::App { func: r(func), arg: r(arg) }.rc(),
        Term::Let { binder, annotation, bound, body } => {
            Term::Let { binder: *binder, annotation: r(annotation), bound: r(bound), body: r(body) }
                .rc()
        }
        Term::Sigma { binder, first, second } => {
            Term::Sigma { binder: *binder, first: r(first), second: r(second) }.rc()
        }
        Term::Pair { first, second, annotation } => {
            Term::Pair { first: r(first), second: r(second), annotation: r(annotation) }.rc()
        }
        Term::Fst(e) => Term::Fst(r(e)).rc(),
        Term::Snd(e) => Term::Snd(r(e)).rc(),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: r(scrutinee),
            then_branch: r(then_branch),
            else_branch: r(else_branch),
        }
        .rc(),
    }
}

#[test]
fn structurally_identical_programs_intern_to_the_same_node() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(seed).gen_bool(3);
        let na = term.clone().rc();
        let nb = deep_rebuild(&term);
        assert!(na.same(&nb), "seed {seed}: identical programs got distinct nodes");
        assert_eq!(na.id(), nb.id());
        assert_eq!(na, nb);
        assert!(alpha_eq(&na, &nb), "seed {seed}: identical nodes not α-equal");
    }
}

#[test]
fn cached_metadata_matches_recomputation() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(10_000 + seed).gen_bool(3);
        assert_metadata_matches(&term.clone().rc());
        term.visit(&mut |sub| {
            sub.for_each_child(assert_metadata_matches);
        });
    }
}

#[test]
fn well_typed_code_blocks_report_closed_metadata() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(20_000 + seed).gen_bool(3);
        assert!(typecheck::infer(&Env::new(), &term).is_ok(), "seed {seed}");
        term.visit(&mut |sub| {
            if matches!(sub, Term::Code { .. }) {
                let node = sub.clone().rc();
                assert!(node.is_closed(), "seed {seed}: code `{}` not closed", &*node);
            }
        });
    }
}

#[test]
fn memoized_conversion_agrees_with_raw_nbe_and_step_oracle() {
    for seed in 0..SEEDS {
        let left = TargetGenerator::new(30_000 + seed).gen_bool(3);
        let right = TargetGenerator::new(40_000 + seed).gen_bool(3);
        let env = Env::new();

        let memoized = {
            let mut fuel = Fuel::default();
            equiv::equiv(&env, &left, &right, &mut fuel).unwrap_or(false)
        };
        let raw_nbe = {
            let mut fuel = Fuel::default();
            nbe::conv_terms(&env, &left, &right, &mut fuel).unwrap_or(false)
        };
        let step = {
            let mut fuel = Fuel::default();
            equiv::equiv_spec(&env, &left, &right, &mut fuel).unwrap_or(false)
        };
        assert_eq!(memoized, raw_nbe, "seed {seed}: memo vs raw NbE\n  {left}\n  {right}");
        assert_eq!(memoized, step, "seed {seed}: memo vs step oracle\n  {left}\n  {right}");

        let mut fuel = Fuel::default();
        let again = equiv::equiv(&env, &left, &right, &mut fuel).unwrap_or(false);
        assert_eq!(memoized, again, "seed {seed}: cached answer changed");
    }
}

#[test]
fn memoized_conversion_agrees_on_redex_reduct_pairs() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(50_000 + seed).gen_bool(3);
        let env = Env::new();
        let reduct = cccc_target::reduce::normalize_default(&env, &term);
        let mut fuel = Fuel::default();
        assert!(
            equiv::equiv(&env, &term, &reduct, &mut fuel).unwrap(),
            "seed {seed}: term not equal to its own normal form"
        );
        let mut fuel = Fuel::default();
        assert!(equiv::equiv_spec(&env, &term, &reduct, &mut fuel).unwrap());
    }
}

#[test]
fn identity_fast_path_fires_on_identical_handles() {
    let before = equiv::conv_cache_stats().identity_hits;
    let term = TargetGenerator::new(99).gen_bool(3);
    let env = Env::new();
    let mut fuel = Fuel::default();
    assert!(equiv::equiv(&env, &term.clone(), &term, &mut fuel).unwrap());
    let after = equiv::conv_cache_stats().identity_hits;
    assert!(after > before, "identity fast path was not exercised");
}
