//! Differential tests of the CC-CC NbE engine against the step-based
//! specification, on generator-produced well-typed target programs.
//!
//! Mirrors `cccc-source`'s `nbe_properties` suite: `normalize_nbe` must
//! agree with the step-based `normalize` up to α-equivalence, `conv` (via
//! `equiv`) must agree with `equiv_spec`, and the type checker must reach
//! the same verdicts through both engines — plus regression cases for
//! shadowed code binders and closure-η through the NbE path.

use cccc_target::builder::*;
use cccc_target::equiv::{definitionally_equal, definitionally_equal_spec, Engine};
use cccc_target::{nbe, reduce, subst, typecheck, Env, Term};
use cccc_util::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable generator of well-typed CC-CC programs of
/// ground type `Bool` (the same shapes closure conversion emits: empty and
/// one-entry environments, ζ-redexes, projections, conditionals).
struct TargetGenerator {
    rng: StdRng,
    counter: u64,
}

impl TargetGenerator {
    fn new(seed: u64) -> TargetGenerator {
        TargetGenerator { rng: StdRng::seed_from_u64(seed), counter: 0 }
    }

    fn fresh(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        Symbol::fresh(&format!("{base}{}", self.counter))
    }

    fn gen_bool(&mut self, depth: usize) -> Term {
        if depth == 0 {
            return bool_lit(self.rng.gen_bool(0.5));
        }
        match self.rng.gen_range(0..6u32) {
            0 => bool_lit(self.rng.gen_bool(0.5)),
            1 => ite(self.gen_bool(depth - 1), self.gen_bool(depth - 1), self.gen_bool(depth - 1)),
            2 => {
                let annotation = product(bool_ty(), bool_ty());
                let p = pair(self.gen_bool(depth - 1), self.gen_bool(depth - 1), annotation);
                if self.rng.gen_bool(0.5) {
                    fst(p)
                } else {
                    snd(p)
                }
            }
            3 => {
                // Closure with an empty environment.
                let x = self.fresh("x");
                let body = ite(var_sym(x), bool_lit(self.rng.gen_bool(0.5)), var_sym(x));
                let clo =
                    closure(code_sym(self.fresh("n"), unit_ty(), x, bool_ty(), body), unit_val());
                app(clo, self.gen_bool(depth - 1))
            }
            4 => {
                // Closure capturing one boolean through its environment.
                let n = self.fresh("n");
                let x = self.fresh("x");
                let env_ty = product(bool_ty(), unit_ty());
                let body = ite(fst(var_sym(n)), var_sym(x), bool_lit(self.rng.gen_bool(0.5)));
                let clo = closure(
                    code_sym(n, env_ty.clone(), x, bool_ty(), body),
                    pair(self.gen_bool(depth - 1), unit_val(), env_ty),
                );
                app(clo, self.gen_bool(depth - 1))
            }
            _ => {
                // A ζ-redex.
                let u = self.fresh("u");
                let_sym(
                    u,
                    bool_ty(),
                    self.gen_bool(depth - 1),
                    ite(var_sym(u), self.gen_bool(depth - 1), var_sym(u)),
                )
            }
        }
    }
}

const SEEDS: u64 = 60;

#[test]
fn generated_programs_are_well_typed() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(seed).gen_bool(3);
        let ty = typecheck::infer(&Env::new(), &term)
            .unwrap_or_else(|e| panic!("seed {seed} (`{term}`) is ill-typed: {e}"));
        assert!(matches!(ty, Term::BoolTy));
    }
}

#[test]
fn nbe_normalization_agrees_with_step_normalization() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(seed).gen_bool(3);
        let step = reduce::normalize_default(&Env::new(), &term);
        let nbe = nbe::normalize_nbe_default(&Env::new(), &term);
        assert!(
            subst::alpha_eq(&step, &nbe),
            "engines disagree on seed {seed}:\n  term: {term}\n  step: {step}\n  nbe:  {nbe}"
        );
    }
}

#[test]
fn conv_agrees_with_step_equiv() {
    for seed in 0..SEEDS {
        let left = TargetGenerator::new(100 + seed).gen_bool(3);
        let right = TargetGenerator::new(200 + seed).gen_bool(3);
        // Redex vs. reduct (always equivalent).
        let reduct = reduce::normalize_default(&Env::new(), &left);
        assert!(definitionally_equal(&Env::new(), &left, &reduct), "seed {seed}");
        assert!(definitionally_equal_spec(&Env::new(), &left, &reduct), "seed {seed}");
        // Independent programs (both engines must agree on the verdict).
        let nbe_verdict = definitionally_equal(&Env::new(), &left, &right);
        let spec_verdict = definitionally_equal_spec(&Env::new(), &left, &right);
        assert_eq!(
            nbe_verdict, spec_verdict,
            "engines disagree on seed {seed}:\n  left:  {left}\n  right: {right}"
        );
    }
}

#[test]
fn typechecker_verdicts_agree_across_engines() {
    for seed in 0..SEEDS {
        let term = TargetGenerator::new(300 + seed).gen_bool(3);
        let nbe_ty = typecheck::infer_with_engine(&Env::new(), &term, Engine::Nbe)
            .unwrap_or_else(|e| panic!("NbE checker rejected seed {seed} (`{term}`): {e}"));
        let step_ty = typecheck::infer_with_engine(&Env::new(), &term, Engine::Step)
            .unwrap_or_else(|e| panic!("step checker rejected seed {seed} (`{term}`): {e}"));
        assert!(
            definitionally_equal(&Env::new(), &nbe_ty, &step_ty),
            "inferred types disagree on seed {seed}: `{nbe_ty}` vs `{step_ty}`"
        );
    }
}

#[test]
fn both_engines_reject_bare_code_application() {
    let bare = app(code("n", unit_ty(), "x", bool_ty(), var("x")), tt());
    assert!(typecheck::infer_with_engine(&Env::new(), &bare, Engine::Nbe).is_err());
    assert!(typecheck::infer_with_engine(&Env::new(), &bare, Engine::Step).is_err());
}

#[test]
fn shadowed_code_binders_through_the_nbe_path() {
    // λ (n : Bool, n : Bool). n — the body's n is the *argument*; both
    // engines must agree, and the closure must stay α-equivalent to its
    // distinctly named variant.
    let shadowing = closure(code("n", bool_ty(), "n", bool_ty(), var("n")), ff());
    let distinct = closure(code("m", bool_ty(), "y", bool_ty(), var("y")), ff());
    assert!(definitionally_equal(&Env::new(), &shadowing, &distinct));
    let applied = app(shadowing, tt());
    let nbe = nbe::normalize_nbe_default(&Env::new(), &applied);
    assert!(subst::alpha_eq(&nbe, &tt()));
    assert!(subst::alpha_eq(&nbe, &reduce::normalize_default(&Env::new(), &applied)));
    // A code value returning its environment is different from one
    // returning its argument.
    let env_returner = closure(code("m", bool_ty(), "y", bool_ty(), var("m")), ff());
    let arg_returner = closure(code("m", bool_ty(), "y", bool_ty(), var("y")), ff());
    assert!(!definitionally_equal(&Env::new(), &env_returner, &arg_returner));
}

#[test]
fn closure_eta_through_the_nbe_path() {
    // Environment-captured vs. inlined constants.
    let env_ty = product(bool_ty(), unit_ty());
    let captured = closure(
        code("n", env_ty.clone(), "x", unit_ty(), fst(var("n"))),
        pair(tt(), unit_val(), env_ty.clone()),
    );
    let inlined = closure(code("n", unit_ty(), "x", unit_ty(), tt()), unit_val());
    assert!(definitionally_equal(&Env::new(), &captured, &inlined));
    assert!(definitionally_equal_spec(&Env::new(), &captured, &inlined));

    // Projection out of a wider environment vs. a narrow one.
    let wide_ty = product(bool_ty(), product(bool_ty(), unit_ty()));
    let wide = closure(
        code("n", wide_ty.clone(), "x", unit_ty(), fst(snd(var("n")))),
        pair(ff(), pair(tt(), unit_val(), product(bool_ty(), unit_ty())), wide_ty),
    );
    let narrow = closure(
        code("n", env_ty.clone(), "x", unit_ty(), fst(var("n"))),
        pair(tt(), unit_val(), env_ty),
    );
    assert!(definitionally_equal(&Env::new(), &wide, &narrow));
    assert!(definitionally_equal_spec(&Env::new(), &wide, &narrow));

    // η against a neutral head, in both directions.
    let env = Env::new().with_assumption(Symbol::intern("f"), pi("x", bool_ty(), bool_ty()));
    let wrapper =
        closure(code("n", unit_ty(), "x", bool_ty(), app(var("f"), var("x"))), unit_val());
    assert!(definitionally_equal(&env, &wrapper, &var("f")));
    assert!(definitionally_equal(&env, &var("f"), &wrapper));
    assert!(!definitionally_equal(&env, &wrapper, &var("g")));

    // A closure is never equivalent to bare code.
    let bare = code("n", unit_ty(), "x", bool_ty(), var("x"));
    let identity = closure(bare.clone(), unit_val());
    assert!(!definitionally_equal(&Env::new(), &identity, &bare));
    assert!(!definitionally_equal(&Env::new(), &bare, &identity));
}
