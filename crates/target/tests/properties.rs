//! Property-based tests for CC-CC, over a type-directed random generator
//! of well-typed target programs (written in the style of
//! `cccc-source`'s `generate` module, but producing closures and
//! environment tuples directly).
//!
//! The properties are the metatheoretic invariants the paper's proofs rely
//! on, instantiated at random programs:
//!
//! * every generated program type checks at `Bool`;
//! * [`reduce::normalize_default`] is **idempotent** and sound for
//!   definitional equivalence;
//! * normalization is **preserved by substitution**: substituting a closed
//!   value before or after normalizing yields the same normal form;
//! * subject reduction holds along the `⊲` sequence;
//! * closure-η identifies each generated closure with its η-wrapping.

use cccc_target::builder::*;
use cccc_target::{equiv, reduce, subst, typecheck, Env, Term};
use cccc_util::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable generator of well-typed CC-CC programs of
/// ground type `Bool`.
struct TargetGenerator {
    rng: StdRng,
    counter: u64,
}

impl TargetGenerator {
    fn new(seed: u64) -> TargetGenerator {
        TargetGenerator { rng: StdRng::seed_from_u64(seed), counter: 0 }
    }

    fn fresh(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        Symbol::fresh(&format!("{base}{}", self.counter))
    }

    /// A closed boolean-valued term of bounded depth, possibly mentioning
    /// the boolean variables in `context`.
    fn gen_bool(&mut self, context: &[Symbol], depth: usize) -> Term {
        // Occasionally use a context variable so open terms genuinely
        // mention their free variables.
        if !context.is_empty() && self.rng.gen_bool(0.4) {
            let index = self.rng.gen_range(0..context.len());
            return var_sym(context[index]);
        }
        if depth == 0 {
            return bool_lit(self.rng.gen_bool(0.5));
        }
        match self.rng.gen_range(0..7u32) {
            0 | 1 => bool_lit(self.rng.gen_bool(0.5)),
            2 => ite(
                self.gen_bool(context, depth - 1),
                self.gen_bool(context, depth - 1),
                self.gen_bool(context, depth - 1),
            ),
            3 => {
                // Project from a pair of booleans.
                let annotation = product(bool_ty(), bool_ty());
                let p = pair(
                    self.gen_bool(context, depth - 1),
                    self.gen_bool(context, depth - 1),
                    annotation,
                );
                if self.rng.gen_bool(0.5) {
                    fst(p)
                } else {
                    snd(p)
                }
            }
            4 => {
                // Apply a closure with an empty environment.
                let x = self.fresh("x");
                let body = self.gen_closed_code_body(x, depth - 1);
                let clo =
                    closure(code_sugar(self.fresh("n"), unit_ty(), x, bool_ty(), body), unit_val());
                app(clo, self.gen_bool(context, depth - 1))
            }
            5 => {
                // Apply a closure capturing one boolean through its
                // environment — the [CC-Lam] shape with one projection.
                let n = self.fresh("n");
                let x = self.fresh("x");
                let b = self.fresh("b");
                let env_ty = product(bool_ty(), unit_ty());
                let body = let_sugar(
                    b,
                    bool_ty(),
                    fst(var_sym(n)),
                    ite(var_sym(b), var_sym(x), bool_lit(self.rng.gen_bool(0.5))),
                );
                let clo = closure(
                    code_sugar(n, env_ty.clone(), x, bool_ty(), body),
                    pair(self.gen_bool(context, depth - 1), unit_val(), env_ty),
                );
                app(clo, self.gen_bool(context, depth - 1))
            }
            _ => {
                // A ζ-redex.
                let u = self.fresh("u");
                let_sugar(
                    u,
                    bool_ty(),
                    self.gen_bool(context, depth - 1),
                    ite(var_sym(u), self.gen_bool(context, depth - 1), var_sym(u)),
                )
            }
        }
    }

    /// A code body over argument `x` that mentions no other variables, so
    /// the code is closed.
    fn gen_closed_code_body(&mut self, x: Symbol, depth: usize) -> Term {
        match self.rng.gen_range(0..3u32) {
            0 => var_sym(x),
            1 => ite(var_sym(x), bool_lit(self.rng.gen_bool(0.5)), var_sym(x)),
            _ => {
                if depth == 0 {
                    var_sym(x)
                } else {
                    // Nest another empty-environment closure application.
                    let y = self.fresh("y");
                    let inner = closure(
                        code_sugar(self.fresh("m"), unit_ty(), y, bool_ty(), var_sym(y)),
                        unit_val(),
                    );
                    app(inner, var_sym(x))
                }
            }
        }
    }

    /// A closed ground program.
    fn gen_program(&mut self, depth: usize) -> Term {
        self.gen_bool(&[], depth)
    }

    /// An open ground component over fresh boolean assumptions, returned
    /// with its environment and a closing substitution of random literals.
    fn gen_open_component(
        &mut self,
        free_variables: usize,
        depth: usize,
    ) -> (Env, Term, Vec<(Symbol, Term)>) {
        let mut env = Env::new();
        let mut names = Vec::new();
        let mut substitution = Vec::new();
        for _ in 0..free_variables {
            let h = self.fresh("h");
            env.push_assumption(h, bool_ty());
            names.push(h);
            substitution.push((h, bool_lit(self.rng.gen_bool(0.5))));
        }
        let term = self.gen_bool(&names, depth);
        (env, term, substitution)
    }
}

fn code_sugar(n: Symbol, env_ty: Term, x: Symbol, arg_ty: Term, body: Term) -> Term {
    cccc_target::builder::code_sym(n, env_ty, x, arg_ty, body)
}

fn let_sugar(x: Symbol, annotation: Term, bound: Term, body: Term) -> Term {
    cccc_target::builder::let_sym(x, annotation, bound, body)
}

const CASES: u64 = 60;

#[test]
fn generated_programs_type_check_at_bool() {
    for seed in 0..CASES {
        let term = TargetGenerator::new(seed).gen_program(4);
        typecheck::check(&Env::new(), &term, &bool_ty())
            .unwrap_or_else(|e| panic!("seed {seed}: ill-typed: {e}\n{term}"));
    }
}

#[test]
fn normalize_default_is_idempotent() {
    for seed in 0..CASES {
        let term = TargetGenerator::new(seed).gen_program(4);
        let once = reduce::normalize_default(&Env::new(), &term);
        let twice = reduce::normalize_default(&Env::new(), &once);
        assert!(
            subst::alpha_eq(&once, &twice),
            "seed {seed}: normalization not idempotent\nonce : {once}\ntwice: {twice}"
        );
        // Normal forms of ground programs are literals, and normalization
        // is sound for definitional equivalence.
        assert!(matches!(once, Term::BoolLit(_)), "seed {seed}: got {once}");
        assert!(equiv::definitionally_equal(&Env::new(), &term, &once), "seed {seed}");
    }
}

#[test]
fn normalization_is_preserved_by_substitution() {
    // nf(e[v/x]) = nf(nf(e)[v/x]) for closed replacements v — substituting
    // before or after normalizing cannot be observed.
    for seed in 0..CASES {
        let (env, term, gamma) = TargetGenerator::new(seed).gen_open_component(3, 4);
        typecheck::infer(&env, &term)
            .unwrap_or_else(|e| panic!("seed {seed}: open component ill-typed: {e}"));
        let substituted_first =
            reduce::normalize_default(&Env::new(), &subst::subst_all(&term, &gamma));
        // Normalizing the open term gets stuck at the free variables;
        // substituting afterwards and renormalizing must agree.
        let normalized_open = reduce::normalize_default(&env_without_definitions(&env), &term);
        let substituted_after =
            reduce::normalize_default(&Env::new(), &subst::subst_all(&normalized_open, &gamma));
        assert!(
            subst::alpha_eq(&substituted_first, &substituted_after),
            "seed {seed}:\nsubst-then-normalize: {substituted_first}\nnormalize-then-subst: {substituted_after}"
        );
    }
}

#[test]
fn subject_reduction_along_the_step_sequence() {
    for seed in 0..CASES / 2 {
        let term = TargetGenerator::new(seed).gen_program(3);
        let ty = typecheck::infer(&Env::new(), &term).unwrap();
        let mut current = term;
        for _ in 0..64 {
            match reduce::step(&Env::new(), &current) {
                None => break,
                Some(next) => {
                    typecheck::check(&Env::new(), &next, &ty).unwrap_or_else(|e| {
                        panic!("seed {seed}: subject reduction failed: {e}\n{next}")
                    });
                    current = next;
                }
            }
        }
    }
}

#[test]
fn closure_eta_identifies_eta_wrappings() {
    // For a generated closure value f = ⟪code, env⟫ of type Bool → Bool,
    // the wrapper ⟪λ (n : 1, x : Bool). f x, ⟨⟩⟫ is definitionally equal
    // to f — the closure-η principle at work on arbitrary closures.
    for seed in 0..CASES / 2 {
        let mut generator = TargetGenerator::new(seed);
        let x = generator.fresh("x");
        let body = generator.gen_closed_code_body(x, 2);
        let f =
            closure(code_sugar(generator.fresh("n"), unit_ty(), x, bool_ty(), body), unit_val());
        let wrapper = closure(
            code_sugar(
                generator.fresh("n"),
                unit_ty(),
                Symbol::intern("x"),
                bool_ty(),
                app(f.clone(), var("x")),
            ),
            unit_val(),
        );
        assert!(
            equiv::definitionally_equal(&Env::new(), &wrapper, &f),
            "seed {seed}: closure-η failed for {f}"
        );
    }
}

/// Strips definitions so normalization of the open term cannot unfold the
/// assumptions (they have none, but keep the helper explicit).
fn env_without_definitions(env: &Env) -> Env {
    env.iter()
        .map(|d| cccc_target::Decl::Assumption { name: d.name(), ty: d.ty().clone() })
        .collect()
}
