//! Free variables, capture-avoiding substitution, renaming, α-equivalence,
//! and the closedness predicate for CC-CC terms.
//!
//! CC-CC uses the same named representation of binders as CC, with two new
//! binding forms: code `λ (n : A', x : A). e` and code types
//! `Code (n : A', x : A). B`, both of which bind `n` in the argument type
//! and `n`, `x` in the body/result. The closedness predicate [`is_closed`]
//! is what rule `[Code]` checks syntactically and what hoisting relies on.

use crate::ast::{RcTerm, Term};
use cccc_util::binder::{subst_under, subst_under2};
use cccc_util::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// The free variables of `term`, in order of first occurrence (left to
/// right, outside in). Duplicates are removed.
pub fn free_vars(term: &Term) -> Vec<Symbol> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_free(term, &mut Vec::new(), &mut seen, &mut out);
    out
}

/// The free variables of `term` as a set — this used to traverse the term;
/// it now assembles the answer from the children's metadata cached by the
/// hash-consing kernel, so the cost is O(free variables), not O(term).
pub fn free_var_set(term: &Term) -> HashSet<Symbol> {
    match term {
        Term::Var(x) => std::iter::once(*x).collect(),
        _ => {
            let mut out = HashSet::new();
            head_free_vars(term, |v| {
                out.insert(v);
            });
            out
        }
    }
}

/// Feeds every free variable of the head (children read from cached
/// metadata, the head's own binders subtracted) to `f`, with duplicates.
fn head_free_vars(term: &Term, mut f: impl FnMut(Symbol)) {
    match term {
        Term::Var(x) => f(*x),
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain: body }
        | Term::Sigma { binder, first: domain, second: body } => {
            domain.free_vars().iter().for_each(&mut f);
            body.free_vars().iter().filter(|v| v != binder).for_each(&mut f);
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            env_ty.free_vars().iter().for_each(&mut f);
            arg_ty.free_vars().iter().filter(|v| v != env_binder).for_each(&mut f);
            body.free_vars().iter().filter(|v| v != env_binder && v != arg_binder).for_each(&mut f);
        }
        Term::Let { binder, annotation, bound, body } => {
            annotation.free_vars().iter().for_each(&mut f);
            bound.free_vars().iter().for_each(&mut f);
            body.free_vars().iter().filter(|v| v != binder).for_each(&mut f);
        }
        _ => term.for_each_child(|c| c.free_vars().iter().for_each(&mut f)),
    }
}

/// Whether `x` occurs free in `term`. O(1) in the size of the term: the
/// children's cached free-variable sets answer the membership query, only
/// the head's binders are inspected.
pub fn occurs_free(x: Symbol, term: &Term) -> bool {
    match term {
        Term::Var(y) => *y == x,
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => false,
        Term::Pi { binder, domain, codomain: body }
        | Term::Sigma { binder, first: domain, second: body } => {
            domain.free_vars().contains(x) || (*binder != x && body.free_vars().contains(x))
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            env_ty.free_vars().contains(x)
                || (*env_binder != x
                    && (arg_ty.free_vars().contains(x)
                        || (*arg_binder != x && body.free_vars().contains(x))))
        }
        Term::Let { binder, annotation, bound, body } => {
            annotation.free_vars().contains(x)
                || bound.free_vars().contains(x)
                || (*binder != x && body.free_vars().contains(x))
        }
        _ => {
            let mut found = false;
            term.for_each_child(|c| found = found || c.free_vars().contains(x));
            found
        }
    }
}

/// Whether `term` has no free variables — the syntactic premise of rule
/// `[Code]`. O(1) in the size of the term: a handful of closedness bit
/// tests on the children's cached metadata, with the head's own binders
/// subtracted.
pub fn is_closed(term: &Term) -> bool {
    let mut all_closed = true;
    head_free_vars(term, |_| all_closed = false);
    all_closed
}

fn collect_free(
    term: &Term,
    bound: &mut Vec<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) && seen.insert(*x) {
                out.push(*x);
            }
        }
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain } => {
            collect_free(domain, bound, seen, out);
            collect_under(&[*binder], codomain, bound, seen, out);
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            collect_free(env_ty, bound, seen, out);
            collect_under(&[*env_binder], arg_ty, bound, seen, out);
            collect_under(&[*env_binder, *arg_binder], body, bound, seen, out);
        }
        Term::Closure { code, env } => {
            collect_free(code, bound, seen, out);
            collect_free(env, bound, seen, out);
        }
        Term::App { func, arg } => {
            collect_free(func, bound, seen, out);
            collect_free(arg, bound, seen, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            collect_free(annotation, bound, seen, out);
            collect_free(bound_term, bound, seen, out);
            collect_under(&[*binder], body, bound, seen, out);
        }
        Term::Sigma { binder, first, second } => {
            collect_free(first, bound, seen, out);
            collect_under(&[*binder], second, bound, seen, out);
        }
        Term::Pair { first, second, annotation } => {
            collect_free(first, bound, seen, out);
            collect_free(second, bound, seen, out);
            collect_free(annotation, bound, seen, out);
        }
        Term::Fst(e) | Term::Snd(e) => collect_free(e, bound, seen, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            collect_free(scrutinee, bound, seen, out);
            collect_free(then_branch, bound, seen, out);
            collect_free(else_branch, bound, seen, out);
        }
    }
}

fn collect_under(
    binders: &[Symbol],
    body: &Term,
    bound: &mut Vec<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    let before = bound.len();
    bound.extend_from_slice(binders);
    collect_free(body, bound, seen, out);
    bound.truncate(before);
}

/// Capture-avoiding substitution `term[replacement/x]`.
///
/// Binders that shadow `x` stop the substitution; binders whose name occurs
/// free in `replacement` are renamed to fresh symbols before descending
/// (the shared skeleton of [`cccc_util::binder`], including its two-binder
/// form for `Code`/`CodeTy`).
///
/// Every capture check and every "does `x` even occur here?" test is an
/// O(1) lookup against the metadata cached by the hash-consing kernel:
/// subtrees that do not mention `x` — in CC-CC, notably every closed
/// `Code` block — are returned as shared handles without being visited.
pub fn subst(term: &Term, x: Symbol, replacement: &Term) -> Term {
    if !occurs_free(x, term) {
        return term.clone();
    }
    let replacement = replacement.clone().rc();
    subst_inner(term, x, &replacement)
}

/// [`subst`] on interned handles: returns the input handle unchanged (a
/// reference-count bump) when `x` does not occur.
pub fn subst_rc(term: &RcTerm, x: Symbol, replacement: &RcTerm) -> RcTerm {
    if !term.free_vars().contains(x) {
        return term.clone();
    }
    subst_inner(term, x, replacement).rc()
}

/// Applies several substitutions in sequence (left to right). Later
/// substitutions see the result of earlier ones.
pub fn subst_all(term: &Term, substitutions: &[(Symbol, Term)]) -> Term {
    let mut out = term.clone();
    for (x, replacement) in substitutions {
        out = subst(&out, *x, replacement);
    }
    out
}

fn subst_inner(term: &Term, x: Symbol, replacement: &RcTerm) -> Term {
    // Recursion into a child handle: skipped outright (shared, not
    // copied) when the child does not mention `x`.
    let sub = |child: &RcTerm| subst_rc(child, x, replacement);
    // The rename/subst closures handed to the shared binder skeleton.
    let ren = |child: &RcTerm, from: Symbol, to: Symbol| rename_rc(child, from, to);
    let fv = replacement.free_vars();
    match term {
        Term::Var(y) => {
            if *y == x {
                (**replacement).clone()
            } else {
                term.clone()
            }
        }
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {
            term.clone()
        }
        Term::Pi { binder, domain, codomain } => {
            let domain = sub(domain);
            let (binder, codomain) = subst_under(*binder, codomain, x, fv, ren, sub);
            Term::Pi { binder, domain, codomain }
        }
        // The two-binder forms: `env_binder` scopes over `arg_ty` and the
        // body, `arg_binder` over the body only — the shared skeleton
        // handles shadowing and freshening.
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            let env_ty = sub(env_ty);
            let (env_binder, arg_binder, arg_ty, body) =
                subst_under2(*env_binder, *arg_binder, arg_ty, body, x, fv, ren, sub);
            Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        }
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            let env_ty = sub(env_ty);
            let (env_binder, arg_binder, arg_ty, result) =
                subst_under2(*env_binder, *arg_binder, arg_ty, result, x, fv, ren, sub);
            Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result }
        }
        Term::Closure { code, env } => Term::Closure { code: sub(code), env: sub(env) },
        Term::App { func, arg } => Term::App { func: sub(func), arg: sub(arg) },
        Term::Let { binder, annotation, bound, body } => {
            let annotation = sub(annotation);
            let bound = sub(bound);
            let (binder, body) = subst_under(*binder, body, x, fv, ren, sub);
            Term::Let { binder, annotation, bound, body }
        }
        Term::Sigma { binder, first, second } => {
            let first = sub(first);
            let (binder, second) = subst_under(*binder, second, x, fv, ren, sub);
            Term::Sigma { binder, first, second }
        }
        Term::Pair { first, second, annotation } => {
            Term::Pair { first: sub(first), second: sub(second), annotation: sub(annotation) }
        }
        Term::Fst(e) => Term::Fst(sub(e)),
        Term::Snd(e) => Term::Snd(sub(e)),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: sub(scrutinee),
            then_branch: sub(then_branch),
            else_branch: sub(else_branch),
        },
    }
}

/// Renames every free occurrence of `from` in `term` to `to`. `to` is
/// assumed not to be captured by any binder of `term` (guaranteed when `to`
/// is a freshly generated symbol).
pub fn rename(term: &Term, from: Symbol, to: Symbol) -> Term {
    subst(term, from, &Term::Var(to))
}

/// [`rename`] on interned handles, sharing untouched subtrees.
fn rename_rc(term: &RcTerm, from: Symbol, to: Symbol) -> RcTerm {
    if !term.free_vars().contains(from) {
        return term.clone();
    }
    subst_inner(term, from, &Term::Var(to).rc()).rc()
}

/// α-equivalence of two terms: structural equality up to consistent
/// renaming of bound variables.
///
/// Hash-consing gives the traversal an identity fast path: two handles to
/// the *same* node are α-equivalent whenever no active binder pairing can
/// touch their free variables — in particular always at the top level.
pub fn alpha_eq(left: &Term, right: &Term) -> bool {
    alpha_eq_inner(left, right, &mut HashMap::new(), &mut HashMap::new())
}

/// [`alpha_eq_inner`] on child handles, short-circuiting on node identity.
///
/// Identical nodes are α-equal outright when none of their free variables
/// is remapped by an active binder pairing (a free variable outside both
/// maps must satisfy `x == y`, which identity guarantees; bound-variable
/// structure is literally the same). A closed node — every well-typed
/// `Code` block — trivially satisfies the condition.
fn alpha_eq_child(
    left: &RcTerm,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    if left.same(right) {
        let unaffected = (l2r.is_empty() && r2l.is_empty())
            || left.free_vars().iter().all(|v| !l2r.contains_key(&v) && !r2l.contains_key(&v));
        if unaffected {
            return true;
        }
    }
    alpha_eq_inner(left, right, l2r, r2l)
}

fn alpha_eq_inner(
    left: &Term,
    right: &Term,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    match (left, right) {
        (Term::Var(x), Term::Var(y)) => match (l2r.get(x), r2l.get(y)) {
            (Some(mapped_x), Some(mapped_y)) => mapped_x == y && mapped_y == x,
            (None, None) => x == y,
            _ => false,
        },
        (Term::Sort(u), Term::Sort(v)) => u == v,
        (Term::Unit, Term::Unit)
        | (Term::UnitVal, Term::UnitVal)
        | (Term::BoolTy, Term::BoolTy) => true,
        (Term::BoolLit(a), Term::BoolLit(b)) => a == b,
        (
            Term::Pi { binder: x, domain: a1, codomain: b1 },
            Term::Pi { binder: y, domain: a2, codomain: b2 },
        )
        | (
            Term::Sigma { binder: x, first: a1, second: b1 },
            Term::Sigma { binder: y, first: a2, second: b2 },
        ) => {
            std::mem::discriminant(left) == std::mem::discriminant(right)
                && alpha_eq_child(a1, a2, l2r, r2l)
                && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l)
        }
        (
            Term::Code { env_binder: n1, env_ty: e1, arg_binder: x1, arg_ty: a1, body: b1 },
            Term::Code { env_binder: n2, env_ty: e2, arg_binder: x2, arg_ty: a2, body: b2 },
        )
        | (
            Term::CodeTy { env_binder: n1, env_ty: e1, arg_binder: x1, arg_ty: a1, result: b1 },
            Term::CodeTy { env_binder: n2, env_ty: e2, arg_binder: x2, arg_ty: a2, result: b2 },
        ) => {
            std::mem::discriminant(left) == std::mem::discriminant(right)
                && alpha_eq_child(e1, e2, l2r, r2l)
                && alpha_eq_binder(*n1, a1, *n2, a2, l2r, r2l)
                && alpha_eq_binder2(*n1, *x1, b1, *n2, *x2, b2, l2r, r2l)
        }
        (Term::Closure { code: c1, env: e1 }, Term::Closure { code: c2, env: e2 }) => {
            alpha_eq_child(c1, c2, l2r, r2l) && alpha_eq_child(e1, e2, l2r, r2l)
        }
        (Term::App { func: f1, arg: a1 }, Term::App { func: f2, arg: a2 }) => {
            alpha_eq_child(f1, f2, l2r, r2l) && alpha_eq_child(a1, a2, l2r, r2l)
        }
        (
            Term::Let { binder: x, annotation: t1, bound: e1, body: b1 },
            Term::Let { binder: y, annotation: t2, bound: e2, body: b2 },
        ) => {
            alpha_eq_child(t1, t2, l2r, r2l)
                && alpha_eq_child(e1, e2, l2r, r2l)
                && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l)
        }
        (
            Term::Pair { first: a1, second: b1, annotation: t1 },
            Term::Pair { first: a2, second: b2, annotation: t2 },
        ) => {
            alpha_eq_child(a1, a2, l2r, r2l)
                && alpha_eq_child(b1, b2, l2r, r2l)
                && alpha_eq_child(t1, t2, l2r, r2l)
        }
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => {
            alpha_eq_child(a, b, l2r, r2l)
        }
        (
            Term::If { scrutinee: s1, then_branch: t1, else_branch: e1 },
            Term::If { scrutinee: s2, then_branch: t2, else_branch: e2 },
        ) => {
            alpha_eq_child(s1, s2, l2r, r2l)
                && alpha_eq_child(t1, t2, l2r, r2l)
                && alpha_eq_child(e1, e2, l2r, r2l)
        }
        _ => false,
    }
}

fn alpha_eq_binder(
    x: Symbol,
    left: &RcTerm,
    y: Symbol,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    with_pairing(x, y, l2r, r2l, |l2r, r2l| alpha_eq_child(left, right, l2r, r2l))
}

#[allow(clippy::too_many_arguments)]
fn alpha_eq_binder2(
    x1: Symbol,
    x2: Symbol,
    left: &RcTerm,
    y1: Symbol,
    y2: Symbol,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    with_pairing(x1, y1, l2r, r2l, |l2r, r2l| {
        with_pairing(x2, y2, l2r, r2l, |l2r, r2l| alpha_eq_child(left, right, l2r, r2l))
    })
}

/// Runs `f` with the binder pairing `x ↔ y` installed, restoring the
/// previous pairings afterwards.
fn with_pairing(
    x: Symbol,
    y: Symbol,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
    f: impl FnOnce(&mut HashMap<Symbol, Symbol>, &mut HashMap<Symbol, Symbol>) -> bool,
) -> bool {
    let old_l = l2r.insert(x, y);
    let old_r = r2l.insert(y, x);
    let result = f(l2r, r2l);
    match old_l {
        Some(prev) => {
            l2r.insert(x, prev);
        }
        None => {
            l2r.remove(&x);
        }
    }
    match old_r {
        Some(prev) => {
            r2l.insert(y, prev);
        }
        None => {
            r2l.remove(&y);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn free_vars_of_code_exclude_both_binders() {
        // λ (n : A', x : fst n). x y — A' and y are free; n and x are not.
        let c = code("n", var("Aenv"), "x", fst(var("n")), app(var("x"), var("y")));
        assert_eq!(free_vars(&c), vec![sym("Aenv"), sym("y")]);
        assert!(!is_closed(&c));
        assert!(occurs_free(sym("y"), &c));
        assert!(!occurs_free(sym("n"), &c));
    }

    #[test]
    fn closed_code_is_closed() {
        let c = code("n", unit_ty(), "x", bool_ty(), var("x"));
        assert!(is_closed(&c));
        // But the closure over an open environment is not.
        let clo = closure(c, var("captured"));
        assert!(!is_closed(&clo));
        assert_eq!(free_vars(&clo), vec![sym("captured")]);
    }

    #[test]
    fn substitution_into_closure_environments() {
        let clo = closure(code("n", bool_ty(), "x", bool_ty(), var("n")), var("b"));
        let s = subst(&clo, sym("b"), &tt());
        match &s {
            Term::Closure { env, .. } => assert!(alpha_eq(env, &tt())),
            _ => panic!("expected closure"),
        }
    }

    #[test]
    fn substitution_stops_at_shadowing_code_binders() {
        // Substituting for n must not reach under λ (n : …).
        let c = code("n", bool_ty(), "x", bool_ty(), var("n"));
        let s = subst(&c, sym("n"), &tt());
        assert!(alpha_eq(&s, &c));
        // Nor for x under the argument binder.
        let c = code("n", bool_ty(), "x", bool_ty(), var("x"));
        let s = subst(&c, sym("x"), &tt());
        assert!(alpha_eq(&s, &c));
    }

    #[test]
    fn substitution_avoids_capture_by_code_binders() {
        // (λ (n : 1, x : Bool). free)[n/free] must rename the code's n.
        let c = code("n", unit_ty(), "x", bool_ty(), var("free"));
        let s = subst(&c, sym("free"), &var("n"));
        match &s {
            Term::Code { env_binder, body, .. } => {
                assert_ne!(*env_binder, sym("n"), "env binder should have been freshened");
                assert!(alpha_eq(body, &var("n")));
            }
            _ => panic!("expected code"),
        }
        // Same through the argument binder.
        let c = code("n", unit_ty(), "x", bool_ty(), var("free"));
        let s = subst(&c, sym("free"), &var("x"));
        match &s {
            Term::Code { arg_binder, body, .. } => {
                assert_ne!(*arg_binder, sym("x"));
                assert!(alpha_eq(body, &var("x")));
            }
            _ => panic!("expected code"),
        }
    }

    #[test]
    fn freshening_respects_shadowed_code_binders() {
        // Substituting a replacement whose free variables include the
        // shared binder name of λ (n : …, n : …). n must leave the body's
        // occurrence bound to the *argument* binder.
        let shadowing = code("n", var("hole"), "n", bool_ty(), var("n"));
        let s = subst(&shadowing, sym("hole"), &var("n"));
        match &s {
            Term::Code { env_binder, arg_binder, env_ty, body, .. } => {
                assert!(alpha_eq(env_ty, &var("n")), "env type takes the replacement");
                assert_ne!(*env_binder, sym("n"), "env binder freshened to avoid capture");
                // The body still refers to the argument binder.
                assert!(alpha_eq(body, &Term::Var(*arg_binder)));
            }
            _ => panic!("expected code"),
        }
        assert!(alpha_eq(&s, &code("m", var("n"), "y", bool_ty(), var("y"))));
    }

    #[test]
    fn subst_all_applies_in_order() {
        let t = app(var("x"), var("y"));
        let s = subst_all(&t, &[(sym("x"), var("y")), (sym("y"), tt())]);
        assert!(alpha_eq(&s, &app(tt(), tt())));
    }

    #[test]
    fn alpha_equivalence_of_renamed_code() {
        let a = code("n", unit_ty(), "x", bool_ty(), var("x"));
        let b = code("m", unit_ty(), "y", bool_ty(), var("y"));
        assert!(alpha_eq(&a, &b));
        let c = code("m", unit_ty(), "y", bool_ty(), var("m"));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn alpha_distinguishes_code_from_code_types() {
        let c = code("n", unit_ty(), "x", bool_ty(), bool_ty());
        let ct = code_ty("n", unit_ty(), "x", bool_ty(), bool_ty());
        assert!(!alpha_eq(&c, &ct));
        assert!(alpha_eq(&ct, &code_ty("m", unit_ty(), "y", bool_ty(), bool_ty())));
    }

    #[test]
    fn alpha_dependent_argument_types() {
        // λ (n : Σ A : ⋆. 1, x : fst n). x — α varies both binders at once.
        let a = code("n", sigma("A", star(), unit_ty()), "x", fst(var("n")), var("x"));
        let b = code("m", sigma("B", star(), unit_ty()), "y", fst(var("m")), var("y"));
        assert!(alpha_eq(&a, &b));
        let c = code("m", sigma("B", star(), unit_ty()), "y", fst(var("m")), var("m"));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn rename_changes_free_occurrences_only() {
        let t = app(var("x"), code("n", unit_ty(), "x", bool_ty(), var("x")));
        let r = rename(&t, sym("x"), sym("z"));
        assert!(alpha_eq(&r, &app(var("z"), code("n", unit_ty(), "x", bool_ty(), var("x")))));
    }

    #[test]
    fn unit_terms_have_no_free_vars() {
        assert!(is_closed(&unit_ty()));
        assert!(is_closed(&unit_val()));
        assert!(alpha_eq(&unit_ty(), &unit_ty()));
        assert!(!alpha_eq(&unit_ty(), &unit_val()));
    }
}
