//! Free variables, capture-avoiding substitution, renaming, α-equivalence,
//! and the closedness predicate for CC-CC terms.
//!
//! CC-CC uses the same named representation of binders as CC, with two new
//! binding forms: code `λ (n : A', x : A). e` and code types
//! `Code (n : A', x : A). B`, both of which bind `n` in the argument type
//! and `n`, `x` in the body/result. The closedness predicate [`is_closed`]
//! is what rule `[Code]` checks syntactically and what hoisting relies on.

use crate::ast::{RcTerm, Term};
use cccc_util::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// The free variables of `term`, in order of first occurrence (left to
/// right, outside in). Duplicates are removed.
pub fn free_vars(term: &Term) -> Vec<Symbol> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_free(term, &mut Vec::new(), &mut seen, &mut out);
    out
}

/// The free variables of `term` as a set, collected directly (no
/// intermediate ordered `Vec`) — this sits on the substitution hot path,
/// which only needs membership queries.
pub fn free_var_set(term: &Term) -> HashSet<Symbol> {
    let mut out = HashSet::new();
    collect_free_set(term, &mut Vec::new(), &mut out);
    out
}

fn collect_free_set(term: &Term, bound: &mut Vec<Symbol>, out: &mut HashSet<Symbol>) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) {
                out.insert(*x);
            }
        }
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain: body }
        | Term::Sigma { binder, first: domain, second: body } => {
            collect_free_set(domain, bound, out);
            bound.push(*binder);
            collect_free_set(body, bound, out);
            bound.pop();
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            collect_free_set(env_ty, bound, out);
            bound.push(*env_binder);
            collect_free_set(arg_ty, bound, out);
            bound.push(*arg_binder);
            collect_free_set(body, bound, out);
            bound.pop();
            bound.pop();
        }
        Term::Closure { code, env } => {
            collect_free_set(code, bound, out);
            collect_free_set(env, bound, out);
        }
        Term::App { func, arg } => {
            collect_free_set(func, bound, out);
            collect_free_set(arg, bound, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            collect_free_set(annotation, bound, out);
            collect_free_set(bound_term, bound, out);
            bound.push(*binder);
            collect_free_set(body, bound, out);
            bound.pop();
        }
        Term::Pair { first, second, annotation } => {
            collect_free_set(first, bound, out);
            collect_free_set(second, bound, out);
            collect_free_set(annotation, bound, out);
        }
        Term::Fst(e) | Term::Snd(e) => collect_free_set(e, bound, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            collect_free_set(scrutinee, bound, out);
            collect_free_set(then_branch, bound, out);
            collect_free_set(else_branch, bound, out);
        }
    }
}

/// Whether `x` occurs free in `term`. Short-circuits on the first
/// occurrence without allocating — this sits on the closure-application
/// and `[Clo]` hot paths.
pub fn occurs_free(x: Symbol, term: &Term) -> bool {
    match term {
        Term::Var(y) => *y == x,
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => false,
        Term::Pi { binder, domain, codomain } => {
            occurs_free(x, domain) || (*binder != x && occurs_free(x, codomain))
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            occurs_free(x, env_ty)
                || (*env_binder != x
                    && (occurs_free(x, arg_ty) || (*arg_binder != x && occurs_free(x, body))))
        }
        Term::Closure { code, env } => occurs_free(x, code) || occurs_free(x, env),
        Term::App { func, arg } => occurs_free(x, func) || occurs_free(x, arg),
        Term::Let { binder, annotation, bound, body } => {
            occurs_free(x, annotation)
                || occurs_free(x, bound)
                || (*binder != x && occurs_free(x, body))
        }
        Term::Sigma { binder, first, second } => {
            occurs_free(x, first) || (*binder != x && occurs_free(x, second))
        }
        Term::Pair { first, second, annotation } => {
            occurs_free(x, first) || occurs_free(x, second) || occurs_free(x, annotation)
        }
        Term::Fst(e) | Term::Snd(e) => occurs_free(x, e),
        Term::If { scrutinee, then_branch, else_branch } => {
            occurs_free(x, scrutinee) || occurs_free(x, then_branch) || occurs_free(x, else_branch)
        }
    }
}

/// Whether `term` has no free variables — the syntactic premise of rule
/// `[Code]`. Short-circuits on the first free variable found instead of
/// materializing the whole free-variable list.
pub fn is_closed(term: &Term) -> bool {
    !any_free(term, &mut Vec::new())
}

fn any_free(term: &Term, bound: &mut Vec<Symbol>) -> bool {
    match term {
        Term::Var(x) => !bound.contains(x),
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => false,
        Term::Pi { binder, domain, codomain: body }
        | Term::Sigma { binder, first: domain, second: body } => {
            any_free(domain, bound) || {
                bound.push(*binder);
                let found = any_free(body, bound);
                bound.pop();
                found
            }
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            any_free(env_ty, bound) || {
                bound.push(*env_binder);
                let found = any_free(arg_ty, bound) || {
                    bound.push(*arg_binder);
                    let found = any_free(body, bound);
                    bound.pop();
                    found
                };
                bound.pop();
                found
            }
        }
        Term::Closure { code, env } => any_free(code, bound) || any_free(env, bound),
        Term::App { func, arg } => any_free(func, bound) || any_free(arg, bound),
        Term::Let { binder, annotation, bound: bound_term, body } => {
            any_free(annotation, bound) || any_free(bound_term, bound) || {
                bound.push(*binder);
                let found = any_free(body, bound);
                bound.pop();
                found
            }
        }
        Term::Pair { first, second, annotation } => {
            any_free(first, bound) || any_free(second, bound) || any_free(annotation, bound)
        }
        Term::Fst(e) | Term::Snd(e) => any_free(e, bound),
        Term::If { scrutinee, then_branch, else_branch } => {
            any_free(scrutinee, bound)
                || any_free(then_branch, bound)
                || any_free(else_branch, bound)
        }
    }
}

fn collect_free(
    term: &Term,
    bound: &mut Vec<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    match term {
        Term::Var(x) => {
            if !bound.contains(x) && seen.insert(*x) {
                out.push(*x);
            }
        }
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {}
        Term::Pi { binder, domain, codomain } => {
            collect_free(domain, bound, seen, out);
            collect_under(&[*binder], codomain, bound, seen, out);
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
            collect_free(env_ty, bound, seen, out);
            collect_under(&[*env_binder], arg_ty, bound, seen, out);
            collect_under(&[*env_binder, *arg_binder], body, bound, seen, out);
        }
        Term::Closure { code, env } => {
            collect_free(code, bound, seen, out);
            collect_free(env, bound, seen, out);
        }
        Term::App { func, arg } => {
            collect_free(func, bound, seen, out);
            collect_free(arg, bound, seen, out);
        }
        Term::Let { binder, annotation, bound: bound_term, body } => {
            collect_free(annotation, bound, seen, out);
            collect_free(bound_term, bound, seen, out);
            collect_under(&[*binder], body, bound, seen, out);
        }
        Term::Sigma { binder, first, second } => {
            collect_free(first, bound, seen, out);
            collect_under(&[*binder], second, bound, seen, out);
        }
        Term::Pair { first, second, annotation } => {
            collect_free(first, bound, seen, out);
            collect_free(second, bound, seen, out);
            collect_free(annotation, bound, seen, out);
        }
        Term::Fst(e) | Term::Snd(e) => collect_free(e, bound, seen, out),
        Term::If { scrutinee, then_branch, else_branch } => {
            collect_free(scrutinee, bound, seen, out);
            collect_free(then_branch, bound, seen, out);
            collect_free(else_branch, bound, seen, out);
        }
    }
}

fn collect_under(
    binders: &[Symbol],
    body: &Term,
    bound: &mut Vec<Symbol>,
    seen: &mut HashSet<Symbol>,
    out: &mut Vec<Symbol>,
) {
    let before = bound.len();
    bound.extend_from_slice(binders);
    collect_free(body, bound, seen, out);
    bound.truncate(before);
}

/// Capture-avoiding substitution `term[replacement/x]`.
///
/// Binders that shadow `x` stop the substitution; binders whose name occurs
/// free in `replacement` are renamed to fresh symbols before descending.
pub fn subst(term: &Term, x: Symbol, replacement: &Term) -> Term {
    let mut fv = FvCache { replacement, set: None };
    subst_inner(term, x, replacement, &mut fv)
}

/// A lazily computed free-variable set for the replacement term of a
/// substitution: substituting into binder-free positions (the common
/// `[App]`-rule case) never materializes it at all.
struct FvCache<'a> {
    replacement: &'a Term,
    set: Option<HashSet<Symbol>>,
}

impl FvCache<'_> {
    fn contains(&mut self, name: Symbol) -> bool {
        self.set.get_or_insert_with(|| free_var_set(self.replacement)).contains(&name)
    }
}

/// Applies several substitutions in sequence (left to right). Later
/// substitutions see the result of earlier ones.
pub fn subst_all(term: &Term, substitutions: &[(Symbol, Term)]) -> Term {
    let mut out = term.clone();
    for (x, replacement) in substitutions {
        out = subst(&out, *x, replacement);
    }
    out
}

fn subst_inner(term: &Term, x: Symbol, replacement: &Term, fv: &mut FvCache<'_>) -> Term {
    match term {
        Term::Var(y) => {
            if *y == x {
                replacement.clone()
            } else {
                term.clone()
            }
        }
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {
            term.clone()
        }
        Term::Pi { binder, domain, codomain } => {
            let domain = subst_inner(domain, x, replacement, fv).rc();
            let (binder, codomain) = subst_under(*binder, codomain, x, replacement, fv);
            Term::Pi { binder, domain, codomain: codomain.rc() }
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            let (env_binder, arg_binder, env_ty, arg_ty, body) =
                subst_code(*env_binder, env_ty, *arg_binder, arg_ty, body, x, replacement, fv);
            Term::Code {
                env_binder,
                env_ty: env_ty.rc(),
                arg_binder,
                arg_ty: arg_ty.rc(),
                body: body.rc(),
            }
        }
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            let (env_binder, arg_binder, env_ty, arg_ty, result) =
                subst_code(*env_binder, env_ty, *arg_binder, arg_ty, result, x, replacement, fv);
            Term::CodeTy {
                env_binder,
                env_ty: env_ty.rc(),
                arg_binder,
                arg_ty: arg_ty.rc(),
                result: result.rc(),
            }
        }
        Term::Closure { code, env } => Term::Closure {
            code: subst_inner(code, x, replacement, fv).rc(),
            env: subst_inner(env, x, replacement, fv).rc(),
        },
        Term::App { func, arg } => Term::App {
            func: subst_inner(func, x, replacement, fv).rc(),
            arg: subst_inner(arg, x, replacement, fv).rc(),
        },
        Term::Let { binder, annotation, bound, body } => {
            let annotation = subst_inner(annotation, x, replacement, fv).rc();
            let bound = subst_inner(bound, x, replacement, fv).rc();
            let (binder, body) = subst_under(*binder, body, x, replacement, fv);
            Term::Let { binder, annotation, bound, body: body.rc() }
        }
        Term::Sigma { binder, first, second } => {
            let first = subst_inner(first, x, replacement, fv).rc();
            let (binder, second) = subst_under(*binder, second, x, replacement, fv);
            Term::Sigma { binder, first, second: second.rc() }
        }
        Term::Pair { first, second, annotation } => Term::Pair {
            first: subst_inner(first, x, replacement, fv).rc(),
            second: subst_inner(second, x, replacement, fv).rc(),
            annotation: subst_inner(annotation, x, replacement, fv).rc(),
        },
        Term::Fst(e) => Term::Fst(subst_inner(e, x, replacement, fv).rc()),
        Term::Snd(e) => Term::Snd(subst_inner(e, x, replacement, fv).rc()),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: subst_inner(scrutinee, x, replacement, fv).rc(),
            then_branch: subst_inner(then_branch, x, replacement, fv).rc(),
            else_branch: subst_inner(else_branch, x, replacement, fv).rc(),
        },
    }
}

/// Substitutes inside the body of a binder, freshening the binder when it
/// would capture a free variable of the replacement.
fn subst_under(
    binder: Symbol,
    body: &Term,
    x: Symbol,
    replacement: &Term,
    fv: &mut FvCache<'_>,
) -> (Symbol, Term) {
    if binder == x {
        return (binder, body.clone());
    }
    if fv.contains(binder) {
        let fresh = binder.freshen();
        let renamed = rename(body, binder, fresh);
        (fresh, subst_inner(&renamed, x, replacement, fv))
    } else {
        (binder, subst_inner(body, x, replacement, fv))
    }
}

/// The two-binder case shared by `Code` and `CodeTy`: `env_binder` scopes
/// over `arg_ty` and `body`, `arg_binder` scopes over `body` only.
#[allow(clippy::too_many_arguments)]
fn subst_code(
    env_binder: Symbol,
    env_ty: &Term,
    arg_binder: Symbol,
    arg_ty: &Term,
    body: &Term,
    x: Symbol,
    replacement: &Term,
    fv: &mut FvCache<'_>,
) -> (Symbol, Symbol, Term, Term, Term) {
    let env_ty = subst_inner(env_ty, x, replacement, fv);

    // Freshen the environment binder if it would capture. When the
    // argument binder shadows it (arg_binder = env_binder), the body's
    // occurrences refer to the argument and must not be renamed here.
    let (env_binder, arg_ty_scoped, body_scoped) = if env_binder != x && fv.contains(env_binder) {
        let fresh = env_binder.freshen();
        let body_renamed =
            if arg_binder == env_binder { body.clone() } else { rename(body, env_binder, fresh) };
        (fresh, rename(arg_ty, env_binder, fresh), body_renamed)
    } else {
        (env_binder, arg_ty.clone(), body.clone())
    };
    // Then the argument binder (which scopes only over the body).
    let (arg_binder, body_scoped) = if arg_binder != x && fv.contains(arg_binder) {
        let fresh = arg_binder.freshen();
        (fresh, rename(&body_scoped, arg_binder, fresh))
    } else {
        (arg_binder, body_scoped)
    };

    let arg_ty = if env_binder == x {
        arg_ty_scoped
    } else {
        subst_inner(&arg_ty_scoped, x, replacement, fv)
    };
    let body = if env_binder == x || arg_binder == x {
        body_scoped
    } else {
        subst_inner(&body_scoped, x, replacement, fv)
    };
    (env_binder, arg_binder, env_ty, arg_ty, body)
}

/// Renames every free occurrence of `from` in `term` to `to`. `to` is
/// assumed not to be captured by any binder of `term` (guaranteed when `to`
/// is a freshly generated symbol).
pub fn rename(term: &Term, from: Symbol, to: Symbol) -> Term {
    subst(term, from, &Term::Var(to))
}

/// α-equivalence of two terms: structural equality up to consistent
/// renaming of bound variables.
pub fn alpha_eq(left: &Term, right: &Term) -> bool {
    alpha_eq_inner(left, right, &mut HashMap::new(), &mut HashMap::new())
}

fn alpha_eq_inner(
    left: &Term,
    right: &Term,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    match (left, right) {
        (Term::Var(x), Term::Var(y)) => match (l2r.get(x), r2l.get(y)) {
            (Some(mapped_x), Some(mapped_y)) => mapped_x == y && mapped_y == x,
            (None, None) => x == y,
            _ => false,
        },
        (Term::Sort(u), Term::Sort(v)) => u == v,
        (Term::Unit, Term::Unit)
        | (Term::UnitVal, Term::UnitVal)
        | (Term::BoolTy, Term::BoolTy) => true,
        (Term::BoolLit(a), Term::BoolLit(b)) => a == b,
        (
            Term::Pi { binder: x, domain: a1, codomain: b1 },
            Term::Pi { binder: y, domain: a2, codomain: b2 },
        )
        | (
            Term::Sigma { binder: x, first: a1, second: b1 },
            Term::Sigma { binder: y, first: a2, second: b2 },
        ) => {
            std::mem::discriminant(left) == std::mem::discriminant(right)
                && alpha_eq_inner(a1, a2, l2r, r2l)
                && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l)
        }
        (
            Term::Code { env_binder: n1, env_ty: e1, arg_binder: x1, arg_ty: a1, body: b1 },
            Term::Code { env_binder: n2, env_ty: e2, arg_binder: x2, arg_ty: a2, body: b2 },
        )
        | (
            Term::CodeTy { env_binder: n1, env_ty: e1, arg_binder: x1, arg_ty: a1, result: b1 },
            Term::CodeTy { env_binder: n2, env_ty: e2, arg_binder: x2, arg_ty: a2, result: b2 },
        ) => {
            std::mem::discriminant(left) == std::mem::discriminant(right)
                && alpha_eq_inner(e1, e2, l2r, r2l)
                && alpha_eq_binder(*n1, a1, *n2, a2, l2r, r2l)
                && alpha_eq_binder2(*n1, *x1, b1, *n2, *x2, b2, l2r, r2l)
        }
        (Term::Closure { code: c1, env: e1 }, Term::Closure { code: c2, env: e2 }) => {
            alpha_eq_inner(c1, c2, l2r, r2l) && alpha_eq_inner(e1, e2, l2r, r2l)
        }
        (Term::App { func: f1, arg: a1 }, Term::App { func: f2, arg: a2 }) => {
            alpha_eq_inner(f1, f2, l2r, r2l) && alpha_eq_inner(a1, a2, l2r, r2l)
        }
        (
            Term::Let { binder: x, annotation: t1, bound: e1, body: b1 },
            Term::Let { binder: y, annotation: t2, bound: e2, body: b2 },
        ) => {
            alpha_eq_inner(t1, t2, l2r, r2l)
                && alpha_eq_inner(e1, e2, l2r, r2l)
                && alpha_eq_binder(*x, b1, *y, b2, l2r, r2l)
        }
        (
            Term::Pair { first: a1, second: b1, annotation: t1 },
            Term::Pair { first: a2, second: b2, annotation: t2 },
        ) => {
            alpha_eq_inner(a1, a2, l2r, r2l)
                && alpha_eq_inner(b1, b2, l2r, r2l)
                && alpha_eq_inner(t1, t2, l2r, r2l)
        }
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => {
            alpha_eq_inner(a, b, l2r, r2l)
        }
        (
            Term::If { scrutinee: s1, then_branch: t1, else_branch: e1 },
            Term::If { scrutinee: s2, then_branch: t2, else_branch: e2 },
        ) => {
            alpha_eq_inner(s1, s2, l2r, r2l)
                && alpha_eq_inner(t1, t2, l2r, r2l)
                && alpha_eq_inner(e1, e2, l2r, r2l)
        }
        _ => false,
    }
}

fn alpha_eq_binder(
    x: Symbol,
    left: &RcTerm,
    y: Symbol,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    with_pairing(x, y, l2r, r2l, |l2r, r2l| alpha_eq_inner(left, right, l2r, r2l))
}

#[allow(clippy::too_many_arguments)]
fn alpha_eq_binder2(
    x1: Symbol,
    x2: Symbol,
    left: &RcTerm,
    y1: Symbol,
    y2: Symbol,
    right: &RcTerm,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
) -> bool {
    with_pairing(x1, y1, l2r, r2l, |l2r, r2l| {
        with_pairing(x2, y2, l2r, r2l, |l2r, r2l| alpha_eq_inner(left, right, l2r, r2l))
    })
}

/// Runs `f` with the binder pairing `x ↔ y` installed, restoring the
/// previous pairings afterwards.
fn with_pairing(
    x: Symbol,
    y: Symbol,
    l2r: &mut HashMap<Symbol, Symbol>,
    r2l: &mut HashMap<Symbol, Symbol>,
    f: impl FnOnce(&mut HashMap<Symbol, Symbol>, &mut HashMap<Symbol, Symbol>) -> bool,
) -> bool {
    let old_l = l2r.insert(x, y);
    let old_r = r2l.insert(y, x);
    let result = f(l2r, r2l);
    match old_l {
        Some(prev) => {
            l2r.insert(x, prev);
        }
        None => {
            l2r.remove(&x);
        }
    }
    match old_r {
        Some(prev) => {
            r2l.insert(y, prev);
        }
        None => {
            r2l.remove(&y);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn free_vars_of_code_exclude_both_binders() {
        // λ (n : A', x : fst n). x y — A' and y are free; n and x are not.
        let c = code("n", var("Aenv"), "x", fst(var("n")), app(var("x"), var("y")));
        assert_eq!(free_vars(&c), vec![sym("Aenv"), sym("y")]);
        assert!(!is_closed(&c));
        assert!(occurs_free(sym("y"), &c));
        assert!(!occurs_free(sym("n"), &c));
    }

    #[test]
    fn closed_code_is_closed() {
        let c = code("n", unit_ty(), "x", bool_ty(), var("x"));
        assert!(is_closed(&c));
        // But the closure over an open environment is not.
        let clo = closure(c, var("captured"));
        assert!(!is_closed(&clo));
        assert_eq!(free_vars(&clo), vec![sym("captured")]);
    }

    #[test]
    fn substitution_into_closure_environments() {
        let clo = closure(code("n", bool_ty(), "x", bool_ty(), var("n")), var("b"));
        let s = subst(&clo, sym("b"), &tt());
        match &s {
            Term::Closure { env, .. } => assert!(alpha_eq(env, &tt())),
            _ => panic!("expected closure"),
        }
    }

    #[test]
    fn substitution_stops_at_shadowing_code_binders() {
        // Substituting for n must not reach under λ (n : …).
        let c = code("n", bool_ty(), "x", bool_ty(), var("n"));
        let s = subst(&c, sym("n"), &tt());
        assert!(alpha_eq(&s, &c));
        // Nor for x under the argument binder.
        let c = code("n", bool_ty(), "x", bool_ty(), var("x"));
        let s = subst(&c, sym("x"), &tt());
        assert!(alpha_eq(&s, &c));
    }

    #[test]
    fn substitution_avoids_capture_by_code_binders() {
        // (λ (n : 1, x : Bool). free)[n/free] must rename the code's n.
        let c = code("n", unit_ty(), "x", bool_ty(), var("free"));
        let s = subst(&c, sym("free"), &var("n"));
        match &s {
            Term::Code { env_binder, body, .. } => {
                assert_ne!(*env_binder, sym("n"), "env binder should have been freshened");
                assert!(alpha_eq(body, &var("n")));
            }
            _ => panic!("expected code"),
        }
        // Same through the argument binder.
        let c = code("n", unit_ty(), "x", bool_ty(), var("free"));
        let s = subst(&c, sym("free"), &var("x"));
        match &s {
            Term::Code { arg_binder, body, .. } => {
                assert_ne!(*arg_binder, sym("x"));
                assert!(alpha_eq(body, &var("x")));
            }
            _ => panic!("expected code"),
        }
    }

    #[test]
    fn freshening_respects_shadowed_code_binders() {
        // Substituting a replacement whose free variables include the
        // shared binder name of λ (n : …, n : …). n must leave the body's
        // occurrence bound to the *argument* binder.
        let shadowing = code("n", var("hole"), "n", bool_ty(), var("n"));
        let s = subst(&shadowing, sym("hole"), &var("n"));
        match &s {
            Term::Code { env_binder, arg_binder, env_ty, body, .. } => {
                assert!(alpha_eq(env_ty, &var("n")), "env type takes the replacement");
                assert_ne!(*env_binder, sym("n"), "env binder freshened to avoid capture");
                // The body still refers to the argument binder.
                assert!(alpha_eq(body, &Term::Var(*arg_binder)));
            }
            _ => panic!("expected code"),
        }
        assert!(alpha_eq(&s, &code("m", var("n"), "y", bool_ty(), var("y"))));
    }

    #[test]
    fn subst_all_applies_in_order() {
        let t = app(var("x"), var("y"));
        let s = subst_all(&t, &[(sym("x"), var("y")), (sym("y"), tt())]);
        assert!(alpha_eq(&s, &app(tt(), tt())));
    }

    #[test]
    fn alpha_equivalence_of_renamed_code() {
        let a = code("n", unit_ty(), "x", bool_ty(), var("x"));
        let b = code("m", unit_ty(), "y", bool_ty(), var("y"));
        assert!(alpha_eq(&a, &b));
        let c = code("m", unit_ty(), "y", bool_ty(), var("m"));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn alpha_distinguishes_code_from_code_types() {
        let c = code("n", unit_ty(), "x", bool_ty(), bool_ty());
        let ct = code_ty("n", unit_ty(), "x", bool_ty(), bool_ty());
        assert!(!alpha_eq(&c, &ct));
        assert!(alpha_eq(&ct, &code_ty("m", unit_ty(), "y", bool_ty(), bool_ty())));
    }

    #[test]
    fn alpha_dependent_argument_types() {
        // λ (n : Σ A : ⋆. 1, x : fst n). x — α varies both binders at once.
        let a = code("n", sigma("A", star(), unit_ty()), "x", fst(var("n")), var("x"));
        let b = code("m", sigma("B", star(), unit_ty()), "y", fst(var("m")), var("y"));
        assert!(alpha_eq(&a, &b));
        let c = code("m", sigma("B", star(), unit_ty()), "y", fst(var("m")), var("m"));
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn rename_changes_free_occurrences_only() {
        let t = app(var("x"), code("n", unit_ty(), "x", bool_ty(), var("x")));
        let r = rename(&t, sym("x"), sym("z"));
        assert!(alpha_eq(&r, &app(var("z"), code("n", unit_ty(), "x", bool_ty(), var("x")))));
    }

    #[test]
    fn unit_terms_have_no_free_vars() {
        assert!(is_closed(&unit_ty()));
        assert!(is_closed(&unit_val()));
        assert!(alpha_eq(&unit_ty(), &unit_ty()));
        assert!(!alpha_eq(&unit_ty(), &unit_val()));
    }
}
