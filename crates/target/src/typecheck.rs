//! The CC-CC type system (Figure 7).
//!
//! Most rules are those of CC; the two that define typed closure
//! conversion are:
//!
//! * **`[Code]`** — code `λ (n : A', x : A). e` is checked **in the empty
//!   environment**: `· ⊢ A' : s'`, `n : A' ⊢ A : s`, and
//!   `n : A', x : A ⊢ e : B`, giving `Code (n : A', x : A). B`. The
//!   ambient `Γ` is deliberately discarded — this is what makes code
//!   closed, hoistable, and statically allocatable. Open code is rejected
//!   with [`TypeError::OpenCode`].
//! * **`[Clo]`** — a closure `⟪e, e'⟫` where `e : Code (n : A', x : A). B`
//!   and `Γ ⊢ e' : A'` has the *closure type* `Π x : A[e'/n]. B[e'/n]`:
//!   the environment is substituted into the code type, so two closures
//!   with different environments can share a type.
//!
//! Code is not a first-class function: applying it directly is rejected
//! with [`TypeError::NotAClosure`] (rule `[App]` eliminates Π, the type of
//! closures, only).
//!
//! As in the source checker, Σ-formation additionally accepts the
//! predicative ECC rule `A : □, B : ⋆ ⟹ Σ x:A.B : □`, which the
//! environment telescopes of closure conversion need when a closure
//! captures a type variable.

use crate::ast::{RcTerm, Term, Universe};
use crate::env::{Decl, Env};
use crate::equiv::{equiv_with_engine, Engine};
use crate::pretty::term_to_string;
use crate::reduce::{whnf, ReduceError};
use crate::subst::{free_vars, is_closed, occurs_free, rename, subst};
use cccc_util::fuel::Fuel;
use cccc_util::intern::{FxHashMap, NodeId};
use cccc_util::symbol::Symbol;
use std::cell::RefCell;
use std::fmt;

/// Errors produced by the CC-CC type checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// A variable was used that is not bound in the environment.
    UnboundVariable(Symbol),
    /// The universe `□` was used as a term; it has no type.
    BoxHasNoType,
    /// Code (or a code type) with free variables: rule `[Code]` checks
    /// code in the empty environment, so it must be closed.
    OpenCode {
        /// The offending code, pretty-printed.
        code: String,
        /// The free variables that leak, pretty-printed.
        free: String,
    },
    /// The code component of a closure does not have a `Code` type.
    NotCode {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// A term in function position does not have a closure (Π) type —
    /// including bare code, which is not first-class.
    NotAClosure {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// A term in projection position does not have a Σ type.
    NotAPair {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// A term expected to be a type does not live in a universe.
    NotAUniverse {
        /// The offending term, pretty-printed.
        term: String,
        /// Its inferred type, pretty-printed.
        ty: String,
    },
    /// The annotation on a dependent pair is not a Σ type.
    PairAnnotationNotSigma {
        /// The annotation, pretty-printed.
        annotation: String,
    },
    /// The inferred type of a term does not match the expected type.
    Mismatch {
        /// What the context required, pretty-printed.
        expected: String,
        /// What was inferred, pretty-printed.
        found: String,
        /// The term being checked, pretty-printed.
        term: String,
    },
    /// Normalization failed while deciding equivalence.
    Reduction(ReduceError),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::BoxHasNoType => write!(f, "the universe □ has no type"),
            TypeError::OpenCode { code, free } => {
                write!(f, "rule [Code] requires closed code, but `{code}` mentions {free}")
            }
            TypeError::NotCode { term, ty } => {
                write!(f, "closure component `{term}` has type `{ty}`, not a code type")
            }
            TypeError::NotAClosure { term, ty } => {
                write!(f, "`{term}` is applied but has non-closure type `{ty}`")
            }
            TypeError::NotAPair { term, ty } => {
                write!(f, "`{term}` is projected but has non-pair type `{ty}`")
            }
            TypeError::NotAUniverse { term, ty } => {
                write!(f, "`{term}` is used as a type but has type `{ty}`, not a universe")
            }
            TypeError::PairAnnotationNotSigma { annotation } => {
                write!(f, "pair annotation `{annotation}` is not a Σ type")
            }
            TypeError::Mismatch { expected, found, term } => write!(
                f,
                "type mismatch: `{term}` has type `{found}` but `{expected}` was expected"
            ),
            TypeError::Reduction(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<ReduceError> for TypeError {
    fn from(e: ReduceError) -> TypeError {
        TypeError::Reduction(e)
    }
}

/// Result type for the CC-CC type checker.
pub type Result<T> = std::result::Result<T, TypeError>;

/// Infers the type of `term` under `env` (the judgment `Γ ⊢ e : A`).
///
/// # Errors
///
/// Returns a [`TypeError`] when the term is ill-typed.
pub fn infer(env: &Env, term: &Term) -> Result<Term> {
    infer_with_engine(env, term, Engine::Nbe)
}

/// [`infer`] through an explicitly chosen equivalence/normalization
/// engine. [`Engine::Step`] runs the substitution-based step engine — the
/// paper-faithful specification — and exists for differential testing and
/// head-to-head benchmarking against [`Engine::Nbe`].
///
/// # Errors
///
/// Returns a [`TypeError`] when the term is ill-typed.
pub fn infer_with_engine(env: &Env, term: &Term, engine: Engine) -> Result<Term> {
    let mut fuel = Fuel::default();
    infer_with(env, term, &mut fuel, engine)
}

/// Checks `term` against `expected` under `env`, applying the conversion
/// rule `[Conv]` (with closure-η).
///
/// # Errors
///
/// Returns a [`TypeError`] when the term is ill-typed or its type is not
/// definitionally equal to `expected`.
pub fn check(env: &Env, term: &Term, expected: &Term) -> Result<()> {
    let mut fuel = Fuel::default();
    check_with(env, term, expected, &mut fuel, Engine::Nbe)
}

/// Infers the universe in which the type `term` lives.
///
/// # Errors
///
/// Returns [`TypeError::NotAUniverse`] when `term` is not a type.
pub fn infer_universe(env: &Env, term: &Term) -> Result<Universe> {
    let mut fuel = Fuel::default();
    infer_universe_with(env, term, &mut fuel, Engine::Nbe)
}

/// Checks well-formedness of an environment (`⊢ Γ`).
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered while checking entries in
/// order.
pub fn check_env(env: &Env) -> Result<()> {
    let mut prefix = Env::new();
    for decl in env.iter() {
        match decl {
            Decl::Assumption { name, ty } => {
                infer_universe(&prefix, ty)?;
                prefix.push_assumption(*name, (**ty).clone());
            }
            Decl::Definition { name, ty, term } => {
                infer_universe(&prefix, ty)?;
                check(&prefix, term, ty)?;
                prefix.push_definition(*name, (**term).clone(), (**ty).clone());
            }
        }
    }
    Ok(())
}

/// Returns `true` when `term` is well-typed under `env`.
pub fn is_well_typed(env: &Env, term: &Term) -> bool {
    infer(env, term).is_ok()
}

/// The code-typing memo never outgrows this many entries; it is cleared
/// wholesale when it would.
const CODE_MEMO_CAP: usize = 1 << 18;

thread_local! {
    /// Memoized `[Code]`/`[T-Code]` results, keyed by node identity (and
    /// engine, so the step-engine oracle never reads NbE-derived entries).
    ///
    /// This is sound *unconditionally* — no environment component is
    /// needed — because both rules discard the ambient `Γ` and check the
    /// code in the empty environment, so the resulting type depends on the
    /// code term alone. Hash-consing makes the duplicated code that
    /// closure conversion mass-produces (and that separate compilation
    /// re-verifies) literally the same node, so each distinct code block
    /// is checked once per thread.
    static CODE_MEMO: RefCell<FxHashMap<(NodeId, Engine), RcTerm>> =
        RefCell::new(FxHashMap::default());
}

/// Clears this thread's `[Code]` typing memo.
pub fn reset_code_memo() {
    CODE_MEMO.with(|m| m.borrow_mut().clear());
}

fn code_memo_get(id: NodeId, engine: Engine) -> Option<RcTerm> {
    CODE_MEMO.with(|m| m.borrow().get(&(id, engine)).cloned())
}

fn code_memo_insert(id: NodeId, engine: Engine, ty: RcTerm) {
    CODE_MEMO.with(|m| {
        let mut memo = m.borrow_mut();
        if memo.len() >= CODE_MEMO_CAP {
            memo.clear();
        }
        memo.insert((id, engine), ty);
    });
}

/// Weak-head normalizes through the chosen engine: NbE read-back or the
/// step-based `whnf`.
fn head_normal(env: &Env, term: &Term, fuel: &mut Fuel, engine: Engine) -> Result<Term> {
    let result = match engine {
        Engine::Nbe => crate::nbe::whnf_nbe(env, term, fuel),
        Engine::Step => whnf(env, term, fuel),
    };
    result.map_err(TypeError::from)
}

fn infer_with(env: &Env, term: &Term, fuel: &mut Fuel, engine: Engine) -> Result<Term> {
    match term {
        // [Var]
        Term::Var(x) => match env.lookup_type(*x) {
            Some(ty) => Ok((**ty).clone()),
            None => Err(TypeError::UnboundVariable(*x)),
        },
        // [Ax-*]
        Term::Sort(Universe::Star) => Ok(Term::Sort(Universe::Box)),
        Term::Sort(Universe::Box) => Err(TypeError::BoxHasNoType),
        // [Unit] / [UnitVal]
        Term::Unit => Ok(Term::Sort(Universe::Star)),
        Term::UnitVal => Ok(Term::Unit),
        // Ground types (§5.2).
        Term::BoolTy => Ok(Term::Sort(Universe::Star)),
        Term::BoolLit(_) => Ok(Term::BoolTy),
        Term::If { scrutinee, then_branch, else_branch } => {
            check_with(env, scrutinee, &Term::BoolTy, fuel, engine)?;
            let then_ty = infer_with(env, then_branch, fuel, engine)?;
            check_with(env, else_branch, &then_ty, fuel, engine)?;
            Ok(then_ty)
        }
        // [Prod-*] / [Prod-□]: Π is the type of closures.
        Term::Pi { binder, domain, codomain } => {
            infer_universe_with(env, domain, fuel, engine)?;
            let inner = env.with_assumption(*binder, (**domain).clone());
            let codomain_universe = infer_universe_with(&inner, codomain, fuel, engine)?;
            Ok(Term::Sort(codomain_universe))
        }
        // [Sig-*], [Sig-□], and the predicative large rule.
        Term::Sigma { binder, first, second } => {
            let first_universe = infer_universe_with(env, first, fuel, engine)?;
            let inner = env.with_assumption(*binder, (**first).clone());
            let second_universe = infer_universe_with(&inner, second, fuel, engine)?;
            match (first_universe, second_universe) {
                (Universe::Star, Universe::Star) => Ok(Term::Sort(Universe::Star)),
                (_, Universe::Box) => Ok(Term::Sort(Universe::Box)),
                (Universe::Box, Universe::Star) => Ok(Term::Sort(Universe::Box)),
            }
        }
        // [Code]: the empty environment replaces Γ. The judgment depends
        // on the code alone (Γ is discarded), so the result is memoized by
        // node identity — each distinct code block is checked once.
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            let node = term.clone().rc();
            if let Some(ty) = code_memo_get(node.id(), engine) {
                return Ok((*ty).clone());
            }
            require_closed(term)?;
            let empty = Env::new();
            infer_universe_with(&empty, env_ty, fuel, engine)?;
            let with_env = empty.with_assumption(*env_binder, (**env_ty).clone());
            infer_universe_with(&with_env, arg_ty, fuel, engine)?;
            let with_arg = with_env.with_assumption(*arg_binder, (**arg_ty).clone());
            let body_ty = infer_with(&with_arg, body, fuel, engine)?;
            // The resulting code type must itself be well-formed.
            infer_universe_with(&with_arg, &body_ty, fuel, engine)?;
            let code_ty = Term::CodeTy {
                env_binder: *env_binder,
                env_ty: env_ty.clone(),
                arg_binder: *arg_binder,
                arg_ty: arg_ty.clone(),
                result: body_ty.rc(),
            }
            .rc();
            code_memo_insert(node.id(), engine, code_ty.clone());
            Ok((*code_ty).clone())
        }
        // [T-Code]: code types are checked in the empty environment too,
        // and memoized the same way.
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            let node = term.clone().rc();
            if let Some(ty) = code_memo_get(node.id(), engine) {
                return Ok((*ty).clone());
            }
            require_closed(term)?;
            let empty = Env::new();
            infer_universe_with(&empty, env_ty, fuel, engine)?;
            let with_env = empty.with_assumption(*env_binder, (**env_ty).clone());
            infer_universe_with(&with_env, arg_ty, fuel, engine)?;
            let with_arg = with_env.with_assumption(*arg_binder, (**arg_ty).clone());
            let result_universe = infer_universe_with(&with_arg, result, fuel, engine)?;
            let sort = Term::Sort(result_universe).rc();
            code_memo_insert(node.id(), engine, sort.clone());
            Ok((*sort).clone())
        }
        // [Clo]: substitute the environment into the code type.
        Term::Closure { code, env: closure_env } => {
            let code_ty = infer_with(env, code, fuel, engine)?;
            let code_ty_whnf = head_normal(env, &code_ty, fuel, engine)?;
            match code_ty_whnf {
                Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
                    check_with(env, closure_env, &env_ty, fuel, engine)?;
                    // Π x : A[e'/n]. B[e'/n]. In the argument type the
                    // environment binder is never shadowed, but in the
                    // result the argument binder may shadow it (x = n), in
                    // which case every occurrence refers to x and the
                    // substitution does not reach B; otherwise freshen x
                    // when the environment mentions it.
                    let domain = subst(&arg_ty, env_binder, closure_env);
                    let (binder, codomain) = if arg_binder == env_binder {
                        (arg_binder, (*result).clone())
                    } else if occurs_free(arg_binder, closure_env) {
                        let fresh = arg_binder.freshen();
                        let renamed = rename(&result, arg_binder, fresh);
                        (fresh, subst(&renamed, env_binder, closure_env))
                    } else {
                        (arg_binder, subst(&result, env_binder, closure_env))
                    };
                    Ok(Term::Pi { binder, domain: domain.rc(), codomain: codomain.rc() })
                }
                other => Err(TypeError::NotCode {
                    term: term_to_string(code),
                    ty: term_to_string(&other),
                }),
            }
        }
        // [App]: eliminates closures (Π), never code.
        Term::App { func, arg } => {
            let func_ty = infer_with(env, func, fuel, engine)?;
            let func_ty_whnf = head_normal(env, &func_ty, fuel, engine)?;
            match func_ty_whnf {
                Term::Pi { binder, domain, codomain } => {
                    check_with(env, arg, &domain, fuel, engine)?;
                    Ok(subst(&codomain, binder, arg))
                }
                other => Err(TypeError::NotAClosure {
                    term: term_to_string(func),
                    ty: term_to_string(&other),
                }),
            }
        }
        // [Let]
        Term::Let { binder, annotation, bound, body } => {
            infer_universe_with(env, annotation, fuel, engine)?;
            check_with(env, bound, annotation, fuel, engine)?;
            let inner = env.with_definition(*binder, (**bound).clone(), (**annotation).clone());
            let body_ty = infer_with(&inner, body, fuel, engine)?;
            Ok(subst(&body_ty, *binder, bound))
        }
        // [Pair]
        Term::Pair { first, second, annotation } => {
            infer_universe_with(env, annotation, fuel, engine)?;
            let annotation_whnf = head_normal(env, annotation, fuel, engine)?;
            match annotation_whnf {
                Term::Sigma { binder, first: first_ty, second: second_ty } => {
                    check_with(env, first, &first_ty, fuel, engine)?;
                    let expected_second = subst(&second_ty, binder, first);
                    check_with(env, second, &expected_second, fuel, engine)?;
                    Ok((**annotation).clone())
                }
                _ => Err(TypeError::PairAnnotationNotSigma {
                    annotation: term_to_string(annotation),
                }),
            }
        }
        // [Fst]
        Term::Fst(e) => {
            let e_ty = infer_with(env, e, fuel, engine)?;
            let e_ty_whnf = head_normal(env, &e_ty, fuel, engine)?;
            match e_ty_whnf {
                Term::Sigma { first, .. } => Ok((*first).clone()),
                other => {
                    Err(TypeError::NotAPair { term: term_to_string(e), ty: term_to_string(&other) })
                }
            }
        }
        // [Snd]
        Term::Snd(e) => {
            let e_ty = infer_with(env, e, fuel, engine)?;
            let e_ty_whnf = head_normal(env, &e_ty, fuel, engine)?;
            match e_ty_whnf {
                Term::Sigma { binder, second, .. } => {
                    Ok(subst(&second, binder, &Term::Fst(e.clone())))
                }
                other => {
                    Err(TypeError::NotAPair { term: term_to_string(e), ty: term_to_string(&other) })
                }
            }
        }
    }
}

/// The syntactic closedness premise of `[Code]`/`[T-Code]`.
///
/// The success path — every well-typed program — is O(1): closedness is a
/// cached metadata bit on the children's interned nodes. Only the error
/// path materializes the ordered free-variable list for the diagnostic.
fn require_closed(term: &Term) -> Result<()> {
    if is_closed(term) {
        Ok(())
    } else {
        let free = free_vars(term);
        Err(TypeError::OpenCode {
            code: term_to_string(term),
            free: free.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", "),
        })
    }
}

fn check_with(
    env: &Env,
    term: &Term,
    expected: &Term,
    fuel: &mut Fuel,
    engine: Engine,
) -> Result<()> {
    let inferred = infer_with(env, term, fuel, engine)?;
    if equiv_with_engine(env, &inferred, expected, fuel, engine)? {
        Ok(())
    } else {
        Err(TypeError::Mismatch {
            expected: term_to_string(expected),
            found: term_to_string(&inferred),
            term: term_to_string(term),
        })
    }
}

fn infer_universe_with(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
    engine: Engine,
) -> Result<Universe> {
    // `□` itself is a valid classifier even though it is not a term.
    if matches!(term, Term::Sort(Universe::Box)) {
        return Ok(Universe::Box);
    }
    let ty = infer_with(env, term, fuel, engine)?;
    let ty_whnf = head_normal(env, &ty, fuel, engine)?;
    match ty_whnf {
        Term::Sort(u) => Ok(u),
        other => {
            Err(TypeError::NotAUniverse { term: term_to_string(term), ty: term_to_string(&other) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::equiv::definitionally_equal;
    use crate::subst::alpha_eq;

    fn infer_closed(t: &Term) -> Result<Term> {
        infer(&Env::new(), t)
    }

    fn identity_code() -> Term {
        code("n", unit_ty(), "x", bool_ty(), var("x"))
    }

    #[test]
    fn atoms_type_as_in_cc() {
        assert!(alpha_eq(&infer_closed(&star()).unwrap(), &boxu()));
        assert!(matches!(infer_closed(&boxu()), Err(TypeError::BoxHasNoType)));
        assert!(alpha_eq(&infer_closed(&bool_ty()).unwrap(), &star()));
        assert!(alpha_eq(&infer_closed(&tt()).unwrap(), &bool_ty()));
        assert!(alpha_eq(&infer_closed(&unit_ty()).unwrap(), &star()));
        assert!(alpha_eq(&infer_closed(&unit_val()).unwrap(), &unit_ty()));
        assert!(matches!(infer_closed(&var("nope")), Err(TypeError::UnboundVariable(_))));
    }

    #[test]
    fn code_types_in_the_empty_environment() {
        let ty = infer_closed(&identity_code()).unwrap();
        let expected = code_ty("n", unit_ty(), "x", bool_ty(), bool_ty());
        assert!(definitionally_equal(&Env::new(), &ty, &expected));
    }

    #[test]
    fn open_code_is_rejected_even_when_ambient_env_binds_the_leak() {
        let ambient = Env::new().with_assumption(Symbol::intern("leak"), bool_ty());
        let open = code("n", unit_ty(), "x", bool_ty(), var("leak"));
        let err = infer(&ambient, &open).unwrap_err();
        match &err {
            TypeError::OpenCode { free, .. } => assert!(free.contains("leak")),
            other => panic!("expected OpenCode, got {other}"),
        }
        // Same for code types.
        let open_ty = code_ty("n", unit_ty(), "x", var("LeakTy"), bool_ty());
        let ambient = ambient.with_assumption(Symbol::intern("LeakTy"), star());
        assert!(matches!(infer(&ambient, &open_ty), Err(TypeError::OpenCode { .. })));
    }

    #[test]
    fn clo_substitutes_the_environment() {
        // ⟪λ (n : Σ A : ⋆. 1, x : fst n). x, ⟨Bool, ⟨⟩⟩⟫ : Π x : Bool. Bool
        let env_ty = sigma("A", star(), unit_ty());
        let clo = closure(
            code("n2", env_ty.clone(), "x", fst(var("n2")), var("x")),
            pair(bool_ty(), unit_val(), env_ty),
        );
        let ty = infer_closed(&clo).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &pi("x", bool_ty(), bool_ty())));
    }

    #[test]
    fn closures_require_matching_environments() {
        let clo = closure(identity_code(), tt());
        assert!(matches!(infer_closed(&clo), Err(TypeError::Mismatch { .. })));
        let not_code = closure(tt(), unit_val());
        assert!(matches!(infer_closed(&not_code), Err(TypeError::NotCode { .. })));
    }

    #[test]
    fn bare_code_cannot_be_applied() {
        let err = infer_closed(&app(identity_code(), tt())).unwrap_err();
        assert!(matches!(err, TypeError::NotAClosure { .. }));
        let err = infer_closed(&app(tt(), tt())).unwrap_err();
        assert!(matches!(err, TypeError::NotAClosure { .. }));
    }

    #[test]
    fn closure_application_types() {
        let clo = closure(identity_code(), unit_val());
        let ty = infer_closed(&app(clo, tt())).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &bool_ty()));
    }

    #[test]
    fn dependent_closures_substitute_arguments() {
        // The outer code of the polymorphic identity: applying it at Bool
        // gives Π x : Bool. Bool.
        let inner_env_ty = sigma("A", star(), unit_ty());
        let inner = code("n2", inner_env_ty.clone(), "x", fst(var("n2")), var("x"));
        let outer = closure(
            code(
                "n1",
                unit_ty(),
                "A",
                star(),
                closure(inner, pair(var("A"), unit_val(), inner_env_ty)),
            ),
            unit_val(),
        );
        let applied_ty = infer_closed(&app(outer, bool_ty())).unwrap();
        assert!(definitionally_equal(&Env::new(), &applied_ty, &pi("x", bool_ty(), bool_ty())));
    }

    #[test]
    fn lets_pairs_and_projections_type_as_in_cc() {
        let t = let_("u", unit_ty(), unit_val(), tt());
        assert!(alpha_eq(&infer_closed(&t).unwrap(), &bool_ty()));
        let ann = sigma("A", star(), var("A"));
        let p = pair(bool_ty(), tt(), ann.clone());
        assert!(alpha_eq(&infer_closed(&p).unwrap(), &ann));
        assert!(alpha_eq(&infer_closed(&fst(p.clone())).unwrap(), &star()));
        let snd_ty = infer_closed(&snd(p)).unwrap();
        assert!(definitionally_equal(&Env::new(), &snd_ty, &bool_ty()));
        assert!(matches!(infer_closed(&fst(tt())), Err(TypeError::NotAPair { .. })));
        assert!(matches!(
            infer_closed(&pair(tt(), ff(), bool_ty())),
            Err(TypeError::PairAnnotationNotSigma { .. })
        ));
    }

    #[test]
    fn sigma_universes_support_type_capture() {
        // Σ A : ⋆. 1 : □ — the telescope of a closure capturing a type.
        let t = sigma("A", star(), unit_ty());
        assert!(infer_closed(&t).unwrap().is_box());
        // Small telescopes stay small.
        let t = sigma("b", bool_ty(), unit_ty());
        assert!(infer_closed(&t).unwrap().is_star());
    }

    #[test]
    fn conversion_runs_closures_inside_types() {
        // A pair annotation that needs a closure application reduced.
        let family = closure(
            code("n", unit_ty(), "b", bool_ty(), ite(var("b"), bool_ty(), unit_ty())),
            unit_val(),
        );
        let t = app(
            closure(
                code("n", unit_ty(), "x", ite(tt(), bool_ty(), unit_ty()), var("x")),
                unit_val(),
            ),
            tt(),
        );
        assert!(definitionally_equal(&Env::new(), &infer_closed(&t).unwrap(), &bool_ty()));
        // And checking against an unreduced type works through [Conv].
        check(&Env::new(), &tt(), &app(family, tt())).unwrap();
    }

    #[test]
    fn check_env_accepts_dependent_telescopes() {
        let env = Env::new()
            .with_assumption(Symbol::intern("A"), star())
            .with_assumption(Symbol::intern("a"), var("A"))
            .with_definition(Symbol::intern("u"), unit_val(), unit_ty());
        assert!(check_env(&env).is_ok());
        let bad = Env::new().with_definition(Symbol::intern("u"), star(), unit_ty());
        assert!(check_env(&bad).is_err());
    }

    #[test]
    fn shadowed_code_binders_keep_their_references() {
        // λ (n : 1, n : Σ A : ⋆. A). snd n — the argument binder shadows
        // the environment binder, so the body's `n` is the argument and
        // [Clo] must not substitute the environment into the result.
        let arg_ty = sigma("A", star(), var("A"));
        let shadowing = code("n", unit_ty(), "n", arg_ty.clone(), snd(var("n")));
        let clo = closure(shadowing, unit_val());
        let ty = infer_closed(&clo).unwrap();
        match &ty {
            Term::Pi { binder, codomain, .. } => {
                // The codomain projects the *argument*, not the unit env.
                assert!(
                    crate::subst::occurs_free(*binder, codomain),
                    "codomain `{codomain}` must still mention the argument binder"
                );
            }
            other => panic!("expected a closure type, got {other}"),
        }
        // And the closure type is the same as an α-variant without
        // shadowing.
        let unshadowed =
            closure(code("m", unit_ty(), "p", arg_ty.clone(), snd(var("p"))), unit_val());
        let expected = infer_closed(&unshadowed).unwrap();
        assert!(definitionally_equal(&Env::new(), &ty, &expected), "{ty} vs {expected}");
    }

    #[test]
    fn is_well_typed_helper() {
        assert!(is_well_typed(&Env::new(), &unit_val()));
        assert!(!is_well_typed(&Env::new(), &var("ghost")));
    }

    #[test]
    fn error_display_is_informative() {
        let err = infer_closed(&app(tt(), ff())).unwrap_err();
        assert!(err.to_string().contains("non-closure"));
        let err = TypeError::OpenCode { code: "c".into(), free: "`x`".into() };
        assert!(err.to_string().contains("[Code]"));
    }
}
