//! Abstract syntax of CC-CC (Figure 5 of the paper).
//!
//! CC-CC replaces the λ-abstractions of CC with two separate constructs:
//!
//! * **code** `λ (n : A', x : A). e` ([`Term::Code`]) — a two-argument
//!   abstraction over an explicit environment `n` and the real argument
//!   `x`, required by rule `[Code]` to be *closed*;
//! * **closures** `⟪e, e'⟫` ([`Term::Closure`]) — a pair of code and the
//!   environment it expects, which is what application eliminates.
//!
//! Code has its own type former `Code (n : A', x : A). B`
//! ([`Term::CodeTy`]); the Π type of CC survives as the type of *closures*
//! ([`Term::Pi`]). Environments are built from the unit type `1`
//! ([`Term::Unit`]) and strong dependent pairs, exactly as in CC. The
//! ground booleans of §5.2 are carried over unchanged.

use cccc_util::symbol::Symbol;
use std::fmt;
use std::rc::Rc;

/// The two universes of CC-CC, identical to those of CC.
///
/// `⋆` ([`Universe::Star`]) is the impredicative universe of small types;
/// `□` ([`Universe::Box`]) is the predicative universe of large types and is
/// itself untyped.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Universe {
    /// The impredicative universe `⋆` of small types.
    Star,
    /// The predicative universe `□` of large types.
    Box,
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Universe::Star => write!(f, "*"),
            Universe::Box => write!(f, "□"),
        }
    }
}

/// A reference-counted CC-CC term. Terms are immutable; substitution and
/// reduction build new terms, sharing unchanged subterms.
pub type RcTerm = Rc<Term>;

/// CC-CC expressions (Figure 5).
///
/// As in CC there is a single syntactic category for terms, types, and
/// kinds.
#[derive(Clone, Debug)]
pub enum Term {
    /// A variable `x`.
    Var(Symbol),
    /// A universe `⋆` or `□`.
    Sort(Universe),
    /// The type of *closures* `Π x : A. B` — the translation target of the
    /// CC Π type.
    Pi {
        /// The bound variable `x` (may occur in `codomain`).
        binder: Symbol,
        /// The domain `A`.
        domain: RcTerm,
        /// The codomain `B`, which may mention `binder`.
        codomain: RcTerm,
    },
    /// Closed code `λ (n : A', x : A). e` — the CC-CC replacement for λ.
    ///
    /// Rule `[Code]` types this in the *empty* environment, so a well-typed
    /// `Code` node never has free variables.
    Code {
        /// The environment parameter `n`.
        env_binder: Symbol,
        /// The type `A'` of the environment parameter (closed).
        env_ty: RcTerm,
        /// The real argument `x`.
        arg_binder: Symbol,
        /// The type `A` of the argument; may mention `env_binder` (this is
        /// the dependently typed twist of the paper).
        arg_ty: RcTerm,
        /// The body `e`; may mention both binders.
        body: RcTerm,
    },
    /// The type of code, `Code (n : A', x : A). B`.
    CodeTy {
        /// The environment parameter `n`.
        env_binder: Symbol,
        /// The type `A'` of the environment parameter (closed).
        env_ty: RcTerm,
        /// The real argument `x`.
        arg_binder: Symbol,
        /// The type `A` of the argument; may mention `env_binder`.
        arg_ty: RcTerm,
        /// The result type `B`; may mention both binders.
        result: RcTerm,
    },
    /// A closure `⟪e, e'⟫` pairing code `e` with its environment `e'`.
    Closure {
        /// The code component (typed by `[Code]`, in the empty
        /// environment).
        code: RcTerm,
        /// The environment component (typed under the ambient `Γ`).
        env: RcTerm,
    },
    /// Application `e1 e2`; eliminates *closures* (rule `[App]`).
    App {
        /// The function position `e1`.
        func: RcTerm,
        /// The argument position `e2`.
        arg: RcTerm,
    },
    /// Dependent let `let x = e : A in e'`.
    Let {
        /// The bound variable `x`.
        binder: Symbol,
        /// The annotation `A` on the definition.
        annotation: RcTerm,
        /// The definition `e`.
        bound: RcTerm,
        /// The body `e'`, which may mention `binder`.
        body: RcTerm,
    },
    /// Strong dependent pair type `Σ x : A. B` (environment telescopes).
    Sigma {
        /// The bound variable `x` (names the first component in `second`).
        binder: Symbol,
        /// The type `A` of the first component.
        first: RcTerm,
        /// The type `B` of the second component, which may mention
        /// `binder`.
        second: RcTerm,
    },
    /// Dependent pair `⟨e1, e2⟩ as Σ x : A. B`.
    Pair {
        /// The first component `e1`.
        first: RcTerm,
        /// The second component `e2`.
        second: RcTerm,
        /// The Σ-type annotation the pair is formed at.
        annotation: RcTerm,
    },
    /// First projection `fst e`.
    Fst(RcTerm),
    /// Second projection `snd e`.
    Snd(RcTerm),
    /// The unit type `1` terminating environment telescopes.
    Unit,
    /// The unit value `⟨⟩`.
    UnitVal,
    /// The ground type `Bool` (§5.2).
    BoolTy,
    /// A boolean literal `true` or `false`.
    BoolLit(bool),
    /// Non-dependent conditional `if e then e1 else e2`.
    If {
        /// The scrutinee, of type `Bool`.
        scrutinee: RcTerm,
        /// The branch taken when the scrutinee is `true`.
        then_branch: RcTerm,
        /// The branch taken when the scrutinee is `false`.
        else_branch: RcTerm,
    },
}

impl Term {
    /// Wraps the term in an [`Rc`].
    pub fn rc(self) -> RcTerm {
        Rc::new(self)
    }

    /// Returns `true` for the universe `⋆`.
    pub fn is_star(&self) -> bool {
        matches!(self, Term::Sort(Universe::Star))
    }

    /// Returns `true` for the universe `□`.
    pub fn is_box(&self) -> bool {
        matches!(self, Term::Sort(Universe::Box))
    }

    /// Returns the universe if the term is a sort.
    pub fn as_sort(&self) -> Option<Universe> {
        match self {
            Term::Sort(u) => Some(*u),
            _ => None,
        }
    }

    /// Returns the variable name if the term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns `true` when the term is a *value* in the sense of
    /// Theorem 4.8: a universe, code, a closure, a pair, a type
    /// constructor, unit, or a boolean literal.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Term::Sort(_)
                | Term::Code { .. }
                | Term::CodeTy { .. }
                | Term::Closure { .. }
                | Term::Pi { .. }
                | Term::Sigma { .. }
                | Term::Pair { .. }
                | Term::Unit
                | Term::UnitVal
                | Term::BoolTy
                | Term::BoolLit(_)
        )
    }

    /// The number of AST nodes in the term. Used by the benchmarks to
    /// report the code-size blow-up of closure conversion.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// The maximum depth of the AST.
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_)
            | Term::Sort(_)
            | Term::Unit
            | Term::UnitVal
            | Term::BoolTy
            | Term::BoolLit(_) => 1,
            Term::Pi { domain, codomain, .. } => 1 + domain.depth().max(codomain.depth()),
            Term::Code { env_ty, arg_ty, body, .. } => {
                1 + env_ty.depth().max(arg_ty.depth()).max(body.depth())
            }
            Term::CodeTy { env_ty, arg_ty, result, .. } => {
                1 + env_ty.depth().max(arg_ty.depth()).max(result.depth())
            }
            Term::Closure { code, env } => 1 + code.depth().max(env.depth()),
            Term::App { func, arg } => 1 + func.depth().max(arg.depth()),
            Term::Let { annotation, bound, body, .. } => {
                1 + annotation.depth().max(bound.depth()).max(body.depth())
            }
            Term::Sigma { first, second, .. } => 1 + first.depth().max(second.depth()),
            Term::Pair { first, second, annotation } => {
                1 + first.depth().max(second.depth()).max(annotation.depth())
            }
            Term::Fst(e) | Term::Snd(e) => 1 + e.depth(),
            Term::If { scrutinee, then_branch, else_branch } => {
                1 + scrutinee.depth().max(then_branch.depth()).max(else_branch.depth())
            }
        }
    }

    /// Counts the closures in the term (one per source λ after
    /// translation).
    pub fn closure_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |t| {
            if matches!(t, Term::Closure { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Counts the literal `Code` nodes in the term (what hoisting lifts to
    /// the top level).
    pub fn code_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |t| {
            if matches!(t, Term::Code { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Calls `f` on this term and every subterm, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Var(_)
            | Term::Sort(_)
            | Term::Unit
            | Term::UnitVal
            | Term::BoolTy
            | Term::BoolLit(_) => {}
            Term::Pi { domain, codomain, .. } => {
                domain.visit(f);
                codomain.visit(f);
            }
            Term::Code { env_ty, arg_ty, body, .. } => {
                env_ty.visit(f);
                arg_ty.visit(f);
                body.visit(f);
            }
            Term::CodeTy { env_ty, arg_ty, result, .. } => {
                env_ty.visit(f);
                arg_ty.visit(f);
                result.visit(f);
            }
            Term::Closure { code, env } => {
                code.visit(f);
                env.visit(f);
            }
            Term::App { func, arg } => {
                func.visit(f);
                arg.visit(f);
            }
            Term::Let { annotation, bound, body, .. } => {
                annotation.visit(f);
                bound.visit(f);
                body.visit(f);
            }
            Term::Sigma { first, second, .. } => {
                first.visit(f);
                second.visit(f);
            }
            Term::Pair { first, second, annotation } => {
                first.visit(f);
                second.visit(f);
                annotation.visit(f);
            }
            Term::Fst(e) | Term::Snd(e) => e.visit(f),
            Term::If { scrutinee, then_branch, else_branch } => {
                scrutinee.visit(f);
                then_branch.visit(f);
                else_branch.visit(f);
            }
        }
    }

    /// Splits an application spine: `f a b c` becomes `(f, [a, b, c])`.
    pub fn spine(&self) -> (&Term, Vec<&RcTerm>) {
        let mut args = Vec::new();
        let mut head = self;
        while let Term::App { func, arg } = head {
            args.push(arg);
            head = func;
        }
        args.reverse();
        (head, args)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::term_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn universe_display() {
        assert_eq!(Universe::Star.to_string(), "*");
        assert_eq!(Universe::Box.to_string(), "□");
    }

    #[test]
    fn size_and_depth_count_code_and_closures() {
        // ⟪λ (n : 1, x : Bool). x, ⟨⟩⟫ has 6 nodes: Closure, Code, Unit,
        // BoolTy, Var, UnitVal.
        let t = closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val());
        assert_eq!(t.size(), 6);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.closure_count(), 1);
        assert_eq!(t.code_count(), 1);
    }

    #[test]
    fn values_are_recognized() {
        assert!(star().is_value());
        assert!(unit_val().is_value());
        assert!(code("n", unit_ty(), "x", bool_ty(), var("x")).is_value());
        assert!(closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val()).is_value());
        assert!(!app(var("f"), tt()).is_value());
        assert!(!var("x").is_value());
    }

    #[test]
    fn as_sort_and_as_var() {
        assert_eq!(star().as_sort(), Some(Universe::Star));
        assert!(boxu().is_box());
        assert!(star().is_star());
        assert_eq!(var("q").as_var().map(|s| s.base_name()), Some("q".to_owned()));
        assert_eq!(var("q").as_sort(), None);
    }

    #[test]
    fn spine_splits_applications() {
        let t = app(app(var("f"), var("a")), var("b"));
        let (head, args) = t.spine();
        assert!(matches!(head, Term::Var(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn visit_reaches_every_node() {
        let t = pair(tt(), unit_val(), sigma("x", bool_ty(), unit_ty()));
        let mut n = 0;
        t.visit(&mut |_| n += 1);
        assert_eq!(n, t.size());
    }
}
