//! Abstract syntax of CC-CC (Figure 5 of the paper).
//!
//! CC-CC replaces the λ-abstractions of CC with two separate constructs:
//!
//! * **code** `λ (n : A', x : A). e` ([`Term::Code`]) — a two-argument
//!   abstraction over an explicit environment `n` and the real argument
//!   `x`, required by rule `[Code]` to be *closed*;
//! * **closures** `⟪e, e'⟫` ([`Term::Closure`]) — a pair of code and the
//!   environment it expects, which is what application eliminates.
//!
//! Code has its own type former `Code (n : A', x : A). B`
//! ([`Term::CodeTy`]); the Π type of CC survives as the type of *closures*
//! ([`Term::Pi`]). Environments are built from the unit type `1`
//! ([`Term::Unit`]) and strong dependent pairs, exactly as in CC. The
//! ground booleans of §5.2 are carried over unchanged.

use cccc_util::intern::{FreeVars, InternStats, Internable, Interner, Node, NodeMeta};
use cccc_util::symbol::Symbol;
use std::cell::RefCell;
use std::fmt;

/// The two universes of CC-CC, identical to those of CC.
///
/// `⋆` ([`Universe::Star`]) is the impredicative universe of small types;
/// `□` ([`Universe::Box`]) is the predicative universe of large types and is
/// itself untyped.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Universe {
    /// The impredicative universe `⋆` of small types.
    Star,
    /// The predicative universe `□` of large types.
    Box,
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Universe::Star => write!(f, "*"),
            Universe::Box => write!(f, "□"),
        }
    }
}

/// A hash-consed, reference-counted CC-CC term handle. Terms are
/// immutable; substitution and reduction build new terms, sharing
/// unchanged subterms.
///
/// Handles are produced by [`Term::rc`], which routes through a
/// thread-local [`Interner`]: structurally identical subterms — which
/// closure conversion mass-produces, duplicating environment types at
/// every closure — share one allocation and one
/// [`NodeId`](cccc_util::intern::NodeId). `==` on handles is an O(1)
/// identity test that coincides with structural equality, and every node
/// carries cached metadata: free-variable set, closedness (the `[Code]`
/// premise), depth, size (see [`cccc_util::intern`]).
pub type RcTerm = Node<Term>;

/// CC-CC expressions (Figure 5).
///
/// As in CC there is a single syntactic category for terms, types, and
/// kinds.
///
/// The derived `PartialEq`/`Eq`/`Hash` are *shallow-structural*: children
/// compare by node identity, which — thanks to hash-consing — is full
/// structural equality (not α-equivalence; use
/// [`crate::subst::alpha_eq`] for that).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable `x`.
    Var(Symbol),
    /// A universe `⋆` or `□`.
    Sort(Universe),
    /// The type of *closures* `Π x : A. B` — the translation target of the
    /// CC Π type.
    Pi {
        /// The bound variable `x` (may occur in `codomain`).
        binder: Symbol,
        /// The domain `A`.
        domain: RcTerm,
        /// The codomain `B`, which may mention `binder`.
        codomain: RcTerm,
    },
    /// Closed code `λ (n : A', x : A). e` — the CC-CC replacement for λ.
    ///
    /// Rule `[Code]` types this in the *empty* environment, so a well-typed
    /// `Code` node never has free variables.
    Code {
        /// The environment parameter `n`.
        env_binder: Symbol,
        /// The type `A'` of the environment parameter (closed).
        env_ty: RcTerm,
        /// The real argument `x`.
        arg_binder: Symbol,
        /// The type `A` of the argument; may mention `env_binder` (this is
        /// the dependently typed twist of the paper).
        arg_ty: RcTerm,
        /// The body `e`; may mention both binders.
        body: RcTerm,
    },
    /// The type of code, `Code (n : A', x : A). B`.
    CodeTy {
        /// The environment parameter `n`.
        env_binder: Symbol,
        /// The type `A'` of the environment parameter (closed).
        env_ty: RcTerm,
        /// The real argument `x`.
        arg_binder: Symbol,
        /// The type `A` of the argument; may mention `env_binder`.
        arg_ty: RcTerm,
        /// The result type `B`; may mention both binders.
        result: RcTerm,
    },
    /// A closure `⟪e, e'⟫` pairing code `e` with its environment `e'`.
    Closure {
        /// The code component (typed by `[Code]`, in the empty
        /// environment).
        code: RcTerm,
        /// The environment component (typed under the ambient `Γ`).
        env: RcTerm,
    },
    /// Application `e1 e2`; eliminates *closures* (rule `[App]`).
    App {
        /// The function position `e1`.
        func: RcTerm,
        /// The argument position `e2`.
        arg: RcTerm,
    },
    /// Dependent let `let x = e : A in e'`.
    Let {
        /// The bound variable `x`.
        binder: Symbol,
        /// The annotation `A` on the definition.
        annotation: RcTerm,
        /// The definition `e`.
        bound: RcTerm,
        /// The body `e'`, which may mention `binder`.
        body: RcTerm,
    },
    /// Strong dependent pair type `Σ x : A. B` (environment telescopes).
    Sigma {
        /// The bound variable `x` (names the first component in `second`).
        binder: Symbol,
        /// The type `A` of the first component.
        first: RcTerm,
        /// The type `B` of the second component, which may mention
        /// `binder`.
        second: RcTerm,
    },
    /// Dependent pair `⟨e1, e2⟩ as Σ x : A. B`.
    Pair {
        /// The first component `e1`.
        first: RcTerm,
        /// The second component `e2`.
        second: RcTerm,
        /// The Σ-type annotation the pair is formed at.
        annotation: RcTerm,
    },
    /// First projection `fst e`.
    Fst(RcTerm),
    /// Second projection `snd e`.
    Snd(RcTerm),
    /// The unit type `1` terminating environment telescopes.
    Unit,
    /// The unit value `⟨⟩`.
    UnitVal,
    /// The ground type `Bool` (§5.2).
    BoolTy,
    /// A boolean literal `true` or `false`.
    BoolLit(bool),
    /// Non-dependent conditional `if e then e1 else e2`.
    If {
        /// The scrutinee, of type `Bool`.
        scrutinee: RcTerm,
        /// The branch taken when the scrutinee is `true`.
        then_branch: RcTerm,
        /// The branch taken when the scrutinee is `false`.
        else_branch: RcTerm,
    },
}

thread_local! {
    /// The per-thread CC-CC term interner. All smart constructors route
    /// through it, so structurally identical terms built on the same
    /// thread always share one node.
    static INTERNER: RefCell<Interner<Term>> = RefCell::new(Interner::new());
}

/// A snapshot of the CC-CC interner's hit/miss counters (for benchmarks
/// and smoke assertions).
pub fn intern_stats() -> InternStats {
    INTERNER.with(|i| i.borrow().stats())
}

/// Number of entries currently in the CC-CC interner table (live nodes
/// plus not-yet-pruned dead ones).
pub fn intern_table_len() -> usize {
    INTERNER.with(|i| i.borrow().len())
}

impl Internable for Term {
    fn compute_meta(&self) -> NodeMeta {
        // All unions go through [`FreeVars::union`]/[`FreeVars::minus`],
        // which share an existing child allocation whenever one side
        // covers the other — most CC-CC nodes are closed or nearly so and
        // allocate nothing here.
        match self {
            Term::Var(x) => NodeMeta::leaf(FreeVars::singleton(*x)),
            Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => {
                NodeMeta::leaf(FreeVars::closed())
            }
            Term::Pi { binder, domain, codomain: body }
            | Term::Sigma { binder, first: domain, second: body } => {
                let fv = FreeVars::union(domain.free_vars(), &body.free_vars().minus(&[*binder]));
                NodeMeta::node(fv, [domain.meta(), body.meta()])
            }
            // The telescoped two-binder forms: `env_binder` scopes over the
            // argument type and the body, `arg_binder` over the body only.
            Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
            | Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result: body } => {
                let fv = FreeVars::union(
                    &FreeVars::union(env_ty.free_vars(), &arg_ty.free_vars().minus(&[*env_binder])),
                    &body.free_vars().minus(&[*env_binder, *arg_binder]),
                );
                NodeMeta::node(fv, [env_ty.meta(), arg_ty.meta(), body.meta()])
            }
            Term::Closure { code, env } | Term::App { func: code, arg: env } => {
                let fv = FreeVars::union(code.free_vars(), env.free_vars());
                NodeMeta::node(fv, [code.meta(), env.meta()])
            }
            Term::Let { binder, annotation, bound, body } => {
                let fv = FreeVars::union(
                    &FreeVars::union(annotation.free_vars(), bound.free_vars()),
                    &body.free_vars().minus(&[*binder]),
                );
                NodeMeta::node(fv, [annotation.meta(), bound.meta(), body.meta()])
            }
            Term::Pair { first, second, annotation } => {
                let fv = FreeVars::union(
                    &FreeVars::union(first.free_vars(), second.free_vars()),
                    annotation.free_vars(),
                );
                NodeMeta::node(fv, [first.meta(), second.meta(), annotation.meta()])
            }
            // Single-child nodes share the child's set outright.
            Term::Fst(e) | Term::Snd(e) => NodeMeta::node(e.free_vars().clone(), [e.meta()]),
            Term::If { scrutinee, then_branch, else_branch } => {
                let fv = FreeVars::union(
                    &FreeVars::union(scrutinee.free_vars(), then_branch.free_vars()),
                    else_branch.free_vars(),
                );
                NodeMeta::node(fv, [scrutinee.meta(), then_branch.meta(), else_branch.meta()])
            }
        }
    }
}

impl Term {
    /// Interns the term, returning its hash-consed handle. O(1) in the
    /// size of the term: children are already interned, so only the head
    /// is hashed and, on a miss, only the head's metadata is derived.
    pub fn rc(self) -> RcTerm {
        INTERNER.with(|i| i.borrow_mut().intern(self))
    }

    /// Returns `true` for the universe `⋆`.
    pub fn is_star(&self) -> bool {
        matches!(self, Term::Sort(Universe::Star))
    }

    /// Returns `true` for the universe `□`.
    pub fn is_box(&self) -> bool {
        matches!(self, Term::Sort(Universe::Box))
    }

    /// Returns the universe if the term is a sort.
    pub fn as_sort(&self) -> Option<Universe> {
        match self {
            Term::Sort(u) => Some(*u),
            _ => None,
        }
    }

    /// Returns the variable name if the term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns `true` when the term is a *value* in the sense of
    /// Theorem 4.8: a universe, code, a closure, a pair, a type
    /// constructor, unit, or a boolean literal.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Term::Sort(_)
                | Term::Code { .. }
                | Term::CodeTy { .. }
                | Term::Closure { .. }
                | Term::Pi { .. }
                | Term::Sigma { .. }
                | Term::Pair { .. }
                | Term::Unit
                | Term::UnitVal
                | Term::BoolTy
                | Term::BoolLit(_)
        )
    }

    /// Calls `f` on each *direct* child handle, left to right.
    pub fn for_each_child(&self, mut f: impl FnMut(&RcTerm)) {
        match self {
            Term::Var(_)
            | Term::Sort(_)
            | Term::Unit
            | Term::UnitVal
            | Term::BoolTy
            | Term::BoolLit(_) => {}
            Term::Pi { domain: a, codomain: b, .. }
            | Term::Sigma { first: a, second: b, .. }
            | Term::Closure { code: a, env: b }
            | Term::App { func: a, arg: b } => {
                f(a);
                f(b);
            }
            Term::Code { env_ty: a, arg_ty: b, body: c, .. }
            | Term::CodeTy { env_ty: a, arg_ty: b, result: c, .. }
            | Term::Let { annotation: a, bound: b, body: c, .. }
            | Term::Pair { first: a, second: b, annotation: c }
            | Term::If { scrutinee: a, then_branch: b, else_branch: c } => {
                f(a);
                f(b);
                f(c);
            }
            Term::Fst(e) | Term::Snd(e) => f(e),
        }
    }

    /// The number of AST nodes in the term, counted *as a tree* (shared
    /// subterms count once per occurrence). Used by the benchmarks to
    /// report the code-size blow-up of closure conversion. O(1): summed
    /// from the children's cached metadata rather than traversed.
    pub fn size(&self) -> usize {
        let mut total: u64 = 1;
        self.for_each_child(|c| total = total.saturating_add(c.meta().size));
        total.try_into().unwrap_or(usize::MAX)
    }

    /// The maximum depth of the AST. O(1) via cached metadata.
    pub fn depth(&self) -> usize {
        let mut deepest: u32 = 0;
        self.for_each_child(|c| deepest = deepest.max(c.meta().depth));
        (deepest + 1) as usize
    }

    /// Counts the closures in the term (one per source λ after
    /// translation).
    pub fn closure_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |t| {
            if matches!(t, Term::Closure { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Counts the literal `Code` nodes in the term (what hoisting lifts to
    /// the top level).
    pub fn code_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |t| {
            if matches!(t, Term::Code { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Calls `f` on this term and every subterm, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Var(_)
            | Term::Sort(_)
            | Term::Unit
            | Term::UnitVal
            | Term::BoolTy
            | Term::BoolLit(_) => {}
            Term::Pi { domain, codomain, .. } => {
                domain.visit(f);
                codomain.visit(f);
            }
            Term::Code { env_ty, arg_ty, body, .. } => {
                env_ty.visit(f);
                arg_ty.visit(f);
                body.visit(f);
            }
            Term::CodeTy { env_ty, arg_ty, result, .. } => {
                env_ty.visit(f);
                arg_ty.visit(f);
                result.visit(f);
            }
            Term::Closure { code, env } => {
                code.visit(f);
                env.visit(f);
            }
            Term::App { func, arg } => {
                func.visit(f);
                arg.visit(f);
            }
            Term::Let { annotation, bound, body, .. } => {
                annotation.visit(f);
                bound.visit(f);
                body.visit(f);
            }
            Term::Sigma { first, second, .. } => {
                first.visit(f);
                second.visit(f);
            }
            Term::Pair { first, second, annotation } => {
                first.visit(f);
                second.visit(f);
                annotation.visit(f);
            }
            Term::Fst(e) | Term::Snd(e) => e.visit(f),
            Term::If { scrutinee, then_branch, else_branch } => {
                scrutinee.visit(f);
                then_branch.visit(f);
                else_branch.visit(f);
            }
        }
    }

    /// Splits an application spine: `f a b c` becomes `(f, [a, b, c])`.
    pub fn spine(&self) -> (&Term, Vec<&RcTerm>) {
        let mut args = Vec::new();
        let mut head = self;
        while let Term::App { func, arg } = head {
            args.push(arg);
            head = func;
        }
        args.reverse();
        (head, args)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::term_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn universe_display() {
        assert_eq!(Universe::Star.to_string(), "*");
        assert_eq!(Universe::Box.to_string(), "□");
    }

    #[test]
    fn size_and_depth_count_code_and_closures() {
        // ⟪λ (n : 1, x : Bool). x, ⟨⟩⟫ has 6 nodes: Closure, Code, Unit,
        // BoolTy, Var, UnitVal.
        let t = closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val());
        assert_eq!(t.size(), 6);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.closure_count(), 1);
        assert_eq!(t.code_count(), 1);
    }

    #[test]
    fn values_are_recognized() {
        assert!(star().is_value());
        assert!(unit_val().is_value());
        assert!(code("n", unit_ty(), "x", bool_ty(), var("x")).is_value());
        assert!(closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val()).is_value());
        assert!(!app(var("f"), tt()).is_value());
        assert!(!var("x").is_value());
    }

    #[test]
    fn as_sort_and_as_var() {
        assert_eq!(star().as_sort(), Some(Universe::Star));
        assert!(boxu().is_box());
        assert!(star().is_star());
        assert_eq!(var("q").as_var().map(|s| s.base_name()), Some("q"));
        assert_eq!(var("q").as_sort(), None);
    }

    #[test]
    fn spine_splits_applications() {
        let t = app(app(var("f"), var("a")), var("b"));
        let (head, args) = t.spine();
        assert!(matches!(head, Term::Var(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn visit_reaches_every_node() {
        let t = pair(tt(), unit_val(), sigma("x", bool_ty(), unit_ty()));
        let mut n = 0;
        t.visit(&mut |_| n += 1);
        assert_eq!(n, t.size());
    }
}
