//! Dependent environment tuples (the `Σ (xi : Ai …)` telescopes and
//! `⟨xi …⟩` tuples of Figures 9 and 10).
//!
//! Closure conversion packages the free variables `x1 : A1, …, xk : Ak` of
//! a function into
//!
//! * an *environment type*: the right-nested telescope
//!   `Σ x1 : A1. Σ x2 : A2. … 1` ([`telescope_type`]),
//! * an *environment value*: the right-nested tuple `⟨x1, ⟨x2, … ⟨⟩⟩⟩`
//!   ([`variables_tuple`] when the components are the variables
//!   themselves, [`tuple_value`] for arbitrary components), and
//! * a *projection prelude*: `let x1 = fst n in let x2 = fst (snd n) in …`
//!   re-binding the captured variables from the environment parameter
//!   inside code ([`project_bindings`]).
//!
//! Because the telescope is dependent — `A2` may mention `x1` — the order
//! of entries matters; the `FV` metafunction of Figure 10 produces them in
//! dependency order, and everything here preserves that order.

use crate::ast::Term;
use crate::builder;
use crate::subst::subst;
use cccc_util::symbol::Symbol;

/// Builds the environment telescope `Σ x1 : A1. … Σ xk : Ak. 1` for the
/// dependency-ordered entries. The empty telescope is the unit type.
pub fn telescope_type(entries: &[(Symbol, Term)]) -> Term {
    let mut ty = Term::Unit;
    for (name, entry_ty) in entries.iter().rev() {
        ty = builder::sigma_sym(*name, entry_ty.clone(), ty);
    }
    ty
}

/// Builds the environment tuple `⟨x1, ⟨x2, … ⟨⟩⟩⟩` whose components are the
/// captured variables themselves, annotated with the telescope at each
/// level. This is the dynamically constructed environment of rule
/// `[CC-Lam]` (Figure 9).
pub fn variables_tuple(entries: &[(Symbol, Term)]) -> Term {
    let mut value = Term::UnitVal;
    for (index, (name, _)) in entries.iter().enumerate().rev() {
        // The annotation of the pair at level `index` is the telescope of
        // the remaining entries; it may mention earlier variables, which
        // are free here exactly as they are in the components.
        let annotation = telescope_type(&entries[index..]);
        value = builder::pair(Term::Var(*name), value, annotation);
    }
    value
}

/// Builds the tuple `⟨v1, ⟨v2, … ⟨⟩⟩⟩` of arbitrary component values at the
/// given `telescope` type, substituting each component into the types of
/// the later ones (so dependent telescopes are instantiated correctly).
///
/// # Panics
///
/// Panics if `telescope` is not a `Σ …. 1` spine with exactly
/// `values.len()` entries.
pub fn tuple_value(values: &[Term], telescope: &Term) -> Term {
    match (values, telescope) {
        ([], Term::Unit) => Term::UnitVal,
        ([first_value, rest @ ..], Term::Sigma { binder, first: _, second }) => {
            let rest_telescope = subst(second, *binder, first_value);
            let rest_tuple = tuple_value(rest, &rest_telescope);
            builder::pair(first_value.clone(), rest_tuple, telescope.clone())
        }
        _ => panic!("tuple_value: {} values do not fit telescope `{telescope}`", values.len()),
    }
}

/// Wraps `body` in the projection prelude
///
/// ```text
/// let x1 = fst n : A1 in
/// let x2 = fst (snd n) : A2 in
/// …
/// body
/// ```
///
/// where `n` is `env_var`. Inside code this re-binds the captured
/// variables, both in the body and — crucially for dependent types — in
/// the argument's type annotation (Figure 9, rule `[CC-Lam]`).
pub fn project_bindings(env_var: &Term, entries: &[(Symbol, Term)], body: Term) -> Term {
    let mut out = body;
    for (index, (name, entry_ty)) in entries.iter().enumerate().rev() {
        let mut access = env_var.clone();
        for _ in 0..index {
            access = builder::snd(access);
        }
        access = builder::fst(access);
        out = builder::let_sym(*name, entry_ty.clone(), access, out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::env::Env;
    use crate::reduce::normalize_default;
    use crate::subst::alpha_eq;
    use crate::typecheck;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn entries() -> Vec<(Symbol, Term)> {
        vec![(sym("A"), star()), (sym("a"), var("A")), (sym("b"), bool_ty())]
    }

    #[test]
    fn empty_telescope_is_unit() {
        assert!(alpha_eq(&telescope_type(&[]), &unit_ty()));
        assert!(alpha_eq(&variables_tuple(&[]), &unit_val()));
        assert!(alpha_eq(&tuple_value(&[], &unit_ty()), &unit_val()));
    }

    #[test]
    fn telescope_nests_right() {
        let ty = telescope_type(&entries());
        let expected = sigma("A", star(), sigma("a", var("A"), sigma("b", bool_ty(), unit_ty())));
        assert!(alpha_eq(&ty, &expected));
    }

    #[test]
    fn variables_tuple_checks_against_its_telescope() {
        let entries = entries();
        let telescope = telescope_type(&entries);
        let tuple = variables_tuple(&entries);
        // Under an environment binding the captured variables, the tuple
        // has exactly the telescope type.
        let env = Env::new()
            .with_assumption(sym("A"), star())
            .with_assumption(sym("a"), var("A"))
            .with_assumption(sym("b"), bool_ty());
        typecheck::check(&env, &tuple, &telescope).unwrap();
    }

    #[test]
    fn tuple_value_instantiates_dependent_telescopes() {
        let telescope = telescope_type(&entries());
        let concrete = tuple_value(&[bool_ty(), tt(), ff()], &telescope);
        typecheck::check(&Env::new(), &concrete, &telescope).unwrap();
    }

    #[test]
    #[should_panic(expected = "tuple_value")]
    fn tuple_value_rejects_arity_mismatch() {
        let telescope = telescope_type(&entries());
        let _ = tuple_value(&[bool_ty()], &telescope);
    }

    #[test]
    fn project_bindings_recover_the_components() {
        // let b = fst (snd (snd ⟨Bool, ⟨true, ⟨false, ⟨⟩⟩⟩⟩)) in b ⊲* false
        let entries = entries();
        let telescope = telescope_type(&entries);
        let concrete = tuple_value(&[bool_ty(), tt(), ff()], &telescope);
        let projected = project_bindings(&concrete, &entries, var("b"));
        let value = normalize_default(&Env::new(), &projected);
        assert!(alpha_eq(&value, &ff()));
        // And the first component comes back too.
        let projected = project_bindings(&concrete, &entries, var("a"));
        let value = normalize_default(&Env::new(), &projected);
        assert!(alpha_eq(&value, &tt()));
    }

    #[test]
    fn projections_type_check_inside_code() {
        // The full [CC-Lam] shape: code over the telescope whose argument
        // type projects a captured type variable.
        let entries = vec![(sym("A"), star())];
        let telescope = telescope_type(&entries);
        let arg_ty = project_bindings(&var("n"), &entries, var("A"));
        let body = project_bindings(&var("n"), &entries, var("x"));
        let c = code_sym(sym("n"), telescope.clone(), sym("x"), arg_ty, body);
        typecheck::infer(&Env::new(), &c).unwrap();
    }
}
