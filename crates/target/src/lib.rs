//! The target language **CC-CC**: the Calculus of Constructions with
//! *closed code* and *closures* — the target of the typed closure
//! conversion of Bowman & Ahmed, *Typed Closure Conversion for the
//! Calculus of Constructions* (PLDI 2018), Figures 5–7.
//!
//! CC-CC replaces first-class functions with two weaker constructs that
//! compose back into one: **code** `λ (n : A', x : A). e`, which abstracts
//! over an explicit environment and an argument and must be *closed*
//! (checked in the empty environment, so it can be hoisted and statically
//! allocated), and **closures** `⟪e, e'⟫`, which pair code with the
//! environment it expects. The Π type survives as the type of closures;
//! applying a closure substitutes its environment and argument into the
//! code body in one step. Definitional equivalence replaces the η rule of
//! CC with **closure-η**, identifying closures that agree once their
//! environments are substituted in — the principle that lets two closures
//! with different environments share a type (`[Clo]` + `[Conv]`) and that
//! compositionality of the translation relies on.
//!
//! # Paper correspondence (Figures 5–7)
//!
//! | Paper | Module | Item |
//! |---|---|---|
//! | Figure 5, syntax of CC-CC | [`ast`] | [`Term`] with [`Term::Code`], [`Term::CodeTy`], [`Term::Closure`], [`Term::Unit`], [`Term::UnitVal`] |
//! | Figure 5, environments `Γ` | [`mod@env`] | [`Env`], [`Decl`] |
//! | Figure 6, reduction `Γ ⊢ e ⊲ e'` (closure application, δ, ζ, π1/π2) | [`reduce`] | [`reduce::step`], [`reduce::whnf`], [`reduce::normalize`], [`reduce::eval`] |
//! | Figure 6, equivalence `Γ ⊢ e ≡ e'` with closure-η | [`equiv`] | [`equiv::equiv`], [`equiv::definitionally_equal`] |
//! | Figure 6, `⊲*`/`≡` as an environment machine (the hot-path engine) | [`nbe`] | [`nbe::eval`], [`nbe::quote`], [`nbe::conv`] |
//! | Figure 7, typing `Γ ⊢ e : A` with `[Code]` and `[Clo]` | [`typecheck`] | [`typecheck::infer`], [`typecheck::check`], [`typecheck::check_env`] |
//! | Figures 9–10, environment telescopes `Σ (xi : Ai …)` and tuples `⟨xi …⟩` | [`mod@tuple`] | [`tuple::telescope_type`], [`tuple::variables_tuple`], [`tuple::tuple_value`], [`tuple::project_bindings`] |
//! | — | [`subst`] | free variables, capture-avoiding substitution, α-equivalence, [`subst::is_closed`] |
//! | — | [`builder`] | a term-construction DSL |
//! | — | [`pretty`] | a pretty-printer |
//! | — | [`profile`] | a cost-instrumented evaluator (§7 overhead) |
//!
//! # Example
//!
//! ```
//! use cccc_target::builder::*;
//! use cccc_target::{equiv, reduce, typecheck, Env};
//!
//! // The closure-converted boolean identity: ⟪λ (n : 1, x : Bool). x, ⟨⟩⟫
//! let identity = closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val());
//!
//! // [Clo] gives it the closure type Π x : Bool. Bool …
//! let ty = typecheck::infer(&Env::new(), &identity).unwrap();
//! assert!(equiv::definitionally_equal(&Env::new(), &ty, &pi("x", bool_ty(), bool_ty())));
//!
//! // … and applying it runs the closure-application rule of Figure 6.
//! let value = reduce::normalize_default(&Env::new(), &app(identity, tt()));
//! assert!(cccc_target::subst::alpha_eq(&value, &tt()));
//! ```

pub mod ast;
pub mod builder;
pub mod env;
pub mod equiv;
pub mod nbe;
pub mod pretty;
pub mod profile;
pub mod reduce;
pub mod subst;
pub mod tolerant;
pub mod tuple;
pub mod typecheck;
pub mod wire;

pub use ast::{RcTerm, Term, Universe};
pub use env::{Decl, Env};
pub use typecheck::TypeError;
