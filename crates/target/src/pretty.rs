//! Pretty-printing of CC-CC terms.
//!
//! Uses the paper's notation where plain text allows: code prints as
//! `\(n : A', x : A). e`, code types as `Code (n : A', x : A). B`,
//! closures as `<<e, e'>>`, the unit type as `1` and its value as `<>`.

use crate::ast::{Term, Universe};
use crate::env::{Decl, Env};
use cccc_util::pretty::Doc;

/// Precedence levels used to decide where parentheses are required.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    /// Binders and `if`: lowest precedence.
    Binder,
    /// Application.
    App,
    /// Atoms: variables, sorts, closures, parenthesized terms.
    Atom,
}

/// Renders a term to a string at 80 columns.
pub fn term_to_string(term: &Term) -> String {
    term_to_doc(term).render(80)
}

/// Renders a term to a string at the given width.
pub fn term_to_string_width(term: &Term, width: usize) -> String {
    term_to_doc(term).render(width)
}

/// Builds a pretty-printing document for a term.
pub fn term_to_doc(term: &Term) -> Doc {
    doc_at(term, Prec::Binder)
}

/// Renders an environment, e.g. for error messages.
pub fn env_to_string(env: &Env) -> String {
    if env.is_empty() {
        return "·".to_owned();
    }
    let entries: Vec<Doc> = env
        .iter()
        .map(|d| match d {
            Decl::Assumption { name, ty } => {
                Doc::text(format!("{} : {}", name, term_to_string(ty)))
            }
            Decl::Definition { name, ty, term } => {
                Doc::text(format!("{} = {} : {}", name, term_to_string(term), term_to_string(ty)))
            }
        })
        .collect();
    Doc::join(entries, Doc::text(", ")).render(100)
}

fn doc_at(term: &Term, prec: Prec) -> Doc {
    match term {
        Term::Var(x) => Doc::text(x.as_str()),
        Term::Sort(Universe::Star) => Doc::text("*"),
        Term::Sort(Universe::Box) => Doc::text("BOX"),
        Term::Unit => Doc::text("1"),
        Term::UnitVal => Doc::text("<>"),
        Term::BoolTy => Doc::text("Bool"),
        Term::BoolLit(true) => Doc::text("true"),
        Term::BoolLit(false) => Doc::text("false"),
        Term::Pi { binder, domain, codomain } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("Pi ({} : ", binder)),
                doc_at(domain, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(codomain, Prec::Binder)])),
            ])),
        ),
        Term::Sigma { binder, first, second } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("Sigma ({} : ", binder)),
                doc_at(first, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(second, Prec::Binder)])),
            ])),
        ),
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("\\({} : ", env_binder)),
                doc_at(env_ty, Prec::Binder),
                Doc::text(format!(", {} : ", arg_binder)),
                doc_at(arg_ty, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(body, Prec::Binder)])),
            ])),
        ),
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("Code ({} : ", env_binder)),
                doc_at(env_ty, Prec::Binder),
                Doc::text(format!(", {} : ", arg_binder)),
                doc_at(arg_ty, Prec::Binder),
                Doc::text(")."),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(result, Prec::Binder)])),
            ])),
        ),
        Term::Closure { code, env } => Doc::group(Doc::concat(vec![
            Doc::text("<<"),
            doc_at(code, Prec::Binder),
            Doc::text(", "),
            doc_at(env, Prec::Binder),
            Doc::text(">>"),
        ])),
        Term::App { func, arg } => parens_if(
            prec > Prec::App,
            Doc::group(Doc::concat(vec![
                doc_at(func, Prec::App),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(arg, Prec::Atom)])),
            ])),
        ),
        Term::Let { binder, annotation, bound, body } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text(format!("let {} = ", binder)),
                doc_at(bound, Prec::Binder),
                Doc::text(" : "),
                doc_at(annotation, Prec::Binder),
                Doc::text(" in"),
                Doc::nest(2, Doc::concat(vec![Doc::line(), doc_at(body, Prec::Binder)])),
            ])),
        ),
        Term::Pair { first, second, annotation } => Doc::group(Doc::concat(vec![
            Doc::text("<"),
            doc_at(first, Prec::Binder),
            Doc::text(", "),
            doc_at(second, Prec::Binder),
            Doc::text("> as "),
            doc_at(annotation, Prec::Atom),
        ])),
        Term::Fst(e) => {
            parens_if(prec > Prec::App, Doc::concat(vec![Doc::text("fst "), doc_at(e, Prec::Atom)]))
        }
        Term::Snd(e) => {
            parens_if(prec > Prec::App, Doc::concat(vec![Doc::text("snd "), doc_at(e, Prec::Atom)]))
        }
        Term::If { scrutinee, then_branch, else_branch } => parens_if(
            prec > Prec::Binder,
            Doc::group(Doc::concat(vec![
                Doc::text("if "),
                doc_at(scrutinee, Prec::Binder),
                Doc::text(" then "),
                doc_at(then_branch, Prec::Binder),
                Doc::text(" else "),
                doc_at(else_branch, Prec::Binder),
            ])),
        ),
    }
}

fn parens_if(condition: bool, doc: Doc) -> Doc {
    if condition {
        Doc::concat(vec![Doc::text("("), doc, Doc::text(")")])
    } else {
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use cccc_util::symbol::Symbol;

    #[test]
    fn atoms_print_bare() {
        assert_eq!(term_to_string(&var("x")), "x");
        assert_eq!(term_to_string(&star()), "*");
        assert_eq!(term_to_string(&unit_ty()), "1");
        assert_eq!(term_to_string(&unit_val()), "<>");
        assert_eq!(term_to_string(&tt()), "true");
    }

    #[test]
    fn code_and_closures_print_with_both_binders() {
        let c = code("n", unit_ty(), "x", bool_ty(), var("x"));
        assert_eq!(term_to_string(&c), "\\(n : 1, x : Bool). x");
        let clo = closure(c, unit_val());
        assert_eq!(term_to_string(&clo), "<<\\(n : 1, x : Bool). x, <>>>");
        let ct = code_ty("n", unit_ty(), "x", bool_ty(), bool_ty());
        assert_eq!(term_to_string(&ct), "Code (n : 1, x : Bool). Bool");
    }

    #[test]
    fn application_and_projections_print() {
        assert_eq!(term_to_string(&app(var("f"), app(var("g"), var("a")))), "f (g a)");
        assert_eq!(term_to_string(&fst(var("p"))), "fst p");
        let p = pair(tt(), ff(), product(bool_ty(), bool_ty()));
        assert!(term_to_string(&p).starts_with("<true, false> as"));
    }

    #[test]
    fn narrow_width_breaks_lines() {
        let t = code(
            "environment",
            unit_ty(),
            "argument",
            bool_ty(),
            app(var("function"), var("argument")),
        );
        assert!(term_to_string_width(&t, 10).contains('\n'));
    }

    #[test]
    fn env_rendering() {
        assert_eq!(env_to_string(&Env::new()), "·");
        let env = Env::new().with_assumption(Symbol::intern("A"), star()).with_definition(
            Symbol::intern("u"),
            unit_val(),
            unit_ty(),
        );
        let shown = env_to_string(&env);
        assert!(shown.contains("A : *"));
        assert!(shown.contains("u = <> : 1"));
    }

    #[test]
    fn display_impl_matches_pretty() {
        let t = closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val());
        assert_eq!(format!("{t}"), term_to_string(&t));
    }
}
