//! A cost-instrumented evaluator for CC-CC.
//!
//! Counts how many times each reduction rule fires while normalizing a
//! term. Together with the CC profiler in `cccc-source` this quantifies
//! the dynamic overhead of closure conversion (§7): every source β-step
//! becomes exactly one *closure application*, and every captured variable
//! costs one environment projection (a ζ-step through the projection
//! prelude) per call, plus the environment tuple allocation at closure
//! creation time.

use crate::ast::Term;
use crate::env::Env;
use crate::reduce::{apply_closure_code, ReduceError};
use crate::subst::subst;
use cccc_util::cost::CostLabels;
use cccc_util::fuel::Fuel;

/// Marker selecting the CC-CC labels for the shared cost counters.
#[derive(Clone, Copy, Debug)]
pub struct CcccCost;

impl CostLabels for CcccCost {
    const APPLICATION: &'static str = "clo";
    const FUNCTIONS: &'static str = "closures";
    const TRACE_EVENT: &'static str = "cost.cccc";
}

/// Counters for the CC-CC reduction rules. [`Cost::applications`] counts
/// closure applications: `⟪λ (n, x). e, e'⟫ e'' ⊲ e[e'/n][e''/x]`;
/// [`Cost::functions_built`] counts closure values encountered as
/// evaluation results (heap-allocation proxy for the closures a real
/// runtime would create).
pub type Cost = cccc_util::cost::Cost<CcccCost>;

/// Normalizes `term` under `env`, returning the value together with the
/// cost counters accumulated along the way. When a trace sink is installed
/// on the current thread the counters are also recorded as a `cost.cccc`
/// event.
///
/// # Errors
///
/// Returns a [`ReduceError`] when `fuel` is exhausted or bare code is
/// applied.
pub fn evaluate_with_cost(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
) -> Result<(Term, Cost), ReduceError> {
    let mut cost = Cost::default();
    let value = normalize(env, term, fuel, &mut cost)?;
    cost.record_trace();
    Ok((value, cost))
}

/// Normalizes with the default fuel budget.
///
/// # Panics
///
/// Panics if the default budget is exhausted.
pub fn evaluate_with_cost_default(env: &Env, term: &Term) -> (Term, Cost) {
    let mut fuel = Fuel::default();
    evaluate_with_cost(env, term, &mut fuel).expect("instrumented evaluation failed")
}

fn whnf(env: &Env, term: &Term, fuel: &mut Fuel, cost: &mut Cost) -> Result<Term, ReduceError> {
    let mut current = term.clone();
    loop {
        if !fuel.tick() {
            return Err(ReduceError::OutOfFuel);
        }
        match current {
            Term::Var(x) => match env.lookup_definition(x) {
                Some(definition) => {
                    cost.delta += 1;
                    current = (**definition).clone();
                }
                None => return Ok(Term::Var(x)),
            },
            Term::Let { binder, bound, body, .. } => {
                cost.zeta += 1;
                current = subst(&body, binder, &bound);
            }
            Term::App { func, arg } => {
                let func_whnf = whnf(env, &func, fuel, cost)?;
                match func_whnf {
                    Term::Closure { code, env: closure_env } => {
                        let code_whnf = whnf(env, &code, fuel, cost)?;
                        match code_whnf {
                            Term::Code { env_binder, arg_binder, body, .. } => {
                                cost.applications += 1;
                                current = apply_closure_code(
                                    env_binder,
                                    arg_binder,
                                    &body,
                                    &closure_env,
                                    &arg,
                                );
                            }
                            other => {
                                return Ok(Term::App {
                                    func: Term::Closure { code: other.rc(), env: closure_env }.rc(),
                                    arg,
                                })
                            }
                        }
                    }
                    Term::Code { .. } => return Err(ReduceError::BareCodeApplication),
                    other => return Ok(Term::App { func: other.rc(), arg }),
                }
            }
            Term::Fst(e) => {
                let inner = whnf(env, &e, fuel, cost)?;
                match inner {
                    Term::Pair { first, .. } => {
                        cost.projection += 1;
                        current = (*first).clone();
                    }
                    other => return Ok(Term::Fst(other.rc())),
                }
            }
            Term::Snd(e) => {
                let inner = whnf(env, &e, fuel, cost)?;
                match inner {
                    Term::Pair { second, .. } => {
                        cost.projection += 1;
                        current = (*second).clone();
                    }
                    other => return Ok(Term::Snd(other.rc())),
                }
            }
            Term::If { scrutinee, then_branch, else_branch } => {
                let s = whnf(env, &scrutinee, fuel, cost)?;
                match s {
                    Term::BoolLit(true) => {
                        cost.conditional += 1;
                        current = (*then_branch).clone();
                    }
                    Term::BoolLit(false) => {
                        cost.conditional += 1;
                        current = (*else_branch).clone();
                    }
                    other => {
                        return Ok(Term::If { scrutinee: other.rc(), then_branch, else_branch })
                    }
                }
            }
            done => return Ok(done),
        }
    }
}

fn normalize(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
    cost: &mut Cost,
) -> Result<Term, ReduceError> {
    let head = whnf(env, term, fuel, cost)?;
    Ok(match head {
        Term::Var(_)
        | Term::Sort(_)
        | Term::Unit
        | Term::UnitVal
        | Term::BoolTy
        | Term::BoolLit(_) => head,
        Term::Pi { binder, domain, codomain } => Term::Pi {
            binder,
            domain: normalize(env, &domain, fuel, cost)?.rc(),
            codomain: normalize(env, &codomain, fuel, cost)?.rc(),
        },
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => Term::Code {
            env_binder,
            env_ty: normalize(env, &env_ty, fuel, cost)?.rc(),
            arg_binder,
            arg_ty: normalize(env, &arg_ty, fuel, cost)?.rc(),
            body: normalize(env, &body, fuel, cost)?.rc(),
        },
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => Term::CodeTy {
            env_binder,
            env_ty: normalize(env, &env_ty, fuel, cost)?.rc(),
            arg_binder,
            arg_ty: normalize(env, &arg_ty, fuel, cost)?.rc(),
            result: normalize(env, &result, fuel, cost)?.rc(),
        },
        Term::Closure { code, env: closure_env } => {
            cost.functions_built += 1;
            Term::Closure {
                code: normalize(env, &code, fuel, cost)?.rc(),
                env: normalize(env, &closure_env, fuel, cost)?.rc(),
            }
        }
        Term::App { func, arg } => Term::App {
            func: normalize(env, &func, fuel, cost)?.rc(),
            arg: normalize(env, &arg, fuel, cost)?.rc(),
        },
        Term::Let { .. } => unreachable!("whnf eliminates let"),
        Term::Sigma { binder, first, second } => Term::Sigma {
            binder,
            first: normalize(env, &first, fuel, cost)?.rc(),
            second: normalize(env, &second, fuel, cost)?.rc(),
        },
        Term::Pair { first, second, annotation } => {
            cost.pairs_built += 1;
            Term::Pair {
                first: normalize(env, &first, fuel, cost)?.rc(),
                second: normalize(env, &second, fuel, cost)?.rc(),
                annotation: normalize(env, &annotation, fuel, cost)?.rc(),
            }
        }
        Term::Fst(e) => Term::Fst(normalize(env, &e, fuel, cost)?.rc()),
        Term::Snd(e) => Term::Snd(normalize(env, &e, fuel, cost)?.rc()),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: normalize(env, &scrutinee, fuel, cost)?.rc(),
            then_branch: normalize(env, &then_branch, fuel, cost)?.rc(),
            else_branch: normalize(env, &else_branch, fuel, cost)?.rc(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::subst::alpha_eq;

    fn run(term: &Term) -> (Term, Cost) {
        evaluate_with_cost_default(&Env::new(), term)
    }

    fn identity_closure() -> Term {
        closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val())
    }

    #[test]
    fn closure_applications_are_counted() {
        let (value, cost) = run(&app(identity_closure(), tt()));
        assert!(alpha_eq(&value, &tt()));
        assert_eq!(cost.applications, 1);
        assert_eq!(cost.total_steps(), 1);
    }

    #[test]
    fn projection_preludes_cost_zeta_steps() {
        // A closure capturing one variable: applying it fires one closure
        // application and one ζ (the projection let).
        let env_ty = product(bool_ty(), unit_ty());
        let clo = closure(
            code(
                "n",
                env_ty.clone(),
                "x",
                bool_ty(),
                let_("b", bool_ty(), fst(var("n")), ite(var("b"), var("x"), ff())),
            ),
            pair(tt(), unit_val(), env_ty),
        );
        let (value, cost) = run(&app(clo, tt()));
        assert!(alpha_eq(&value, &tt()));
        assert_eq!(cost.applications, 1);
        assert_eq!(cost.zeta, 1);
        assert_eq!(cost.projection, 1);
        assert_eq!(cost.conditional, 1);
    }

    #[test]
    fn delta_counts_label_unfolding() {
        let env = Env::new().with_definition(
            cccc_util::Symbol::intern("id"),
            identity_closure(),
            pi("x", bool_ty(), bool_ty()),
        );
        let mut fuel = Fuel::default();
        let (_, cost) = evaluate_with_cost(&env, &app(var("id"), ff()), &mut fuel).unwrap();
        assert_eq!(cost.delta, 1);
        assert_eq!(cost.applications, 1);
    }

    #[test]
    fn allocation_proxies_fire() {
        let (_, cost) = run(&identity_closure());
        assert_eq!(cost.functions_built, 1);
        let (_, cost) = run(&pair(tt(), ff(), product(bool_ty(), bool_ty())));
        assert_eq!(cost.pairs_built, 1);
    }

    #[test]
    fn instrumented_and_plain_normalization_agree() {
        let program = app(identity_closure(), ite(app(identity_closure(), tt()), ff(), tt()));
        let (value, cost) = run(&program);
        let plain = crate::reduce::normalize_default(&Env::new(), &program);
        assert!(alpha_eq(&value, &plain));
        assert!(cost.total_steps() >= 3);
    }

    #[test]
    fn cost_display_and_addition() {
        let (_, a) = run(&app(identity_closure(), tt()));
        let (_, b) = run(&app(identity_closure(), ff()));
        let sum = a + b;
        assert_eq!(sum.applications, 2);
        assert!(sum.to_string().contains("clo="));
    }
}
