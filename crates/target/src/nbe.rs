//! Normalization by evaluation (NbE) for CC-CC.
//!
//! The algorithmic counterpart of the step relation in [`crate::reduce`]
//! (Figure 6): an environment machine that evaluates terms into a semantic
//! domain ([`Value`]) where code bodies are [`CodeClosure`]s carrying their
//! evaluation environment, definitions unfold lazily through [`Thunk`]s
//! (δ, at most once per environment), and closure application
//! `⟪λ (n : A', x : A). e, e'⟫ e''` extends the machine environment with
//! `n ↦ e'` and `x ↦ e''` instead of substituting. Normal forms are
//! recovered by read-back ([`quote`]); definitional equivalence — including
//! the paper's **closure-η** rule `[≡-Clo-η1/2]` — is decided directly on
//! values ([`conv`]) by applying both sides to the same fresh de Bruijn
//! level, with no fresh symbols and no substitution.
//!
//! # Paper correspondence
//!
//! | Paper (Figure 6) | Here |
//! |---|---|
//! | `Γ ⊢ e ⊲* v` (reduction to a value) | [`eval`] into [`Value`] |
//! | closure application `⟪λ (n, x). e, e'⟫ e''` | [`Value::Clo`] + environment extension in `apply` |
//! | normal form of `e` | [`quote`] ∘ [`eval`] = [`normalize_nbe`] |
//! | `Γ ⊢ e ≡ e'` with closure-η | [`conv`] / [`conv_terms`] |
//! | δ (unfold `x = e : A ∈ Γ`) | [`ValEnv::from_env`] + lazy [`Thunk`] |
//!
//! The step engine stays as the paper-faithful specification; the property
//! suites differentially test [`normalize_nbe`] against
//! [`crate::reduce::normalize`] and [`conv_terms`] against
//! [`crate::equiv::equiv_spec`].

use crate::ast::{RcTerm, Term, Universe};
use crate::env::{Decl, Env};
use crate::reduce::ReduceError;
use cccc_util::fuel::Fuel;
use cccc_util::symbol::Symbol;
use std::cell::OnceCell;
use std::rc::Rc;

/// Maximum depth of nested *β-application* (closure-application) frames;
/// see the identically named constant in `cccc-source`'s NbE module.
/// Structural descent does not count against the bound — it is bounded by
/// the term's syntactic depth, like every other recursive traversal here.
/// Divergent (ill-typed) terms report [`ReduceError::OutOfFuel`] instead
/// of overflowing the stack.
const MAX_EVAL_DEPTH: u32 = 512;

/// A reference-counted semantic value.
pub type RcValue = Rc<Value>;

/// The semantic domain of CC-CC values.
#[derive(Clone, Debug)]
pub enum Value {
    /// A universe `⋆` or `□`.
    Sort(Universe),
    /// The unit type `1`.
    Unit,
    /// The unit value `⟨⟩`.
    UnitVal,
    /// The ground type `Bool`.
    BoolTy,
    /// A boolean literal.
    Bool(bool),
    /// Closed code `λ (n : A', x : A). e`.
    Code {
        /// The environment binder's original name (read-back only).
        env_binder: Symbol,
        /// The argument binder's original name (read-back only).
        arg_binder: Symbol,
        /// The evaluated environment type.
        env_ty: RcValue,
        /// The argument type, suspended over the environment binder.
        arg_ty: Closure,
        /// The body, suspended over both binders.
        body: CodeClosure,
    },
    /// The type of code, `Code (n : A', x : A). B`.
    CodeTy {
        /// The environment binder's original name (read-back only).
        env_binder: Symbol,
        /// The argument binder's original name (read-back only).
        arg_binder: Symbol,
        /// The evaluated environment type.
        env_ty: RcValue,
        /// The argument type, suspended over the environment binder.
        arg_ty: Closure,
        /// The result type, suspended over both binders.
        result: CodeClosure,
    },
    /// A closure `⟪e, e'⟫` pairing (evaluated) code with its environment.
    Clo {
        /// The code component.
        code: RcValue,
        /// The environment component.
        env: RcValue,
    },
    /// The closure type `Π x : A. B`.
    Pi {
        /// The binder's original name (read-back only).
        binder: Symbol,
        /// The evaluated domain.
        domain: RcValue,
        /// The suspended codomain.
        codomain: Closure,
    },
    /// A strong dependent pair type `Σ x : A. B`.
    Sigma {
        /// The binder's original name (read-back only).
        binder: Symbol,
        /// The evaluated type of the first component.
        first: RcValue,
        /// The suspended type of the second component.
        second: Closure,
    },
    /// A dependent pair `⟨e1, e2⟩`.
    Pair {
        /// The first component.
        first: RcValue,
        /// The second component.
        second: RcValue,
        /// The evaluated Σ annotation (ignored by [`conv`], quoted back).
        annotation: RcValue,
    },
    /// A neutral/stuck term: a blocked head under pending eliminations.
    Stuck {
        /// What evaluation is blocked on.
        head: Head,
        /// The eliminations waiting for the head, innermost first.
        spine: Vec<Elim>,
    },
}

impl Value {
    /// A stuck value with an empty spine.
    pub fn stuck(head: Head) -> RcValue {
        Rc::new(Value::Stuck { head, spine: Vec::new() })
    }

    /// A neutral free variable.
    pub fn global(name: Symbol) -> RcValue {
        Value::stuck(Head::Global(name))
    }

    /// A fresh variable at de Bruijn level `level`.
    pub fn local(level: usize) -> RcValue {
        Value::stuck(Head::Local(level))
    }
}

/// The head of a [`Value::Stuck`] spine.
#[derive(Clone, Debug)]
pub enum Head {
    /// A free variable with no definition in the environment.
    Global(Symbol),
    /// A fresh variable introduced when crossing a binder, identified by
    /// its de Bruijn level.
    Local(usize),
    /// A blocked elimination target — either a closure over neutral code
    /// (which rule `[App]` cannot unpack) or, for ill-typed input, a
    /// canonical value the elimination does not apply to.
    Blocked(RcValue),
}

/// One pending elimination in a stuck spine.
#[derive(Clone, Debug)]
pub enum Elim {
    /// Application to an evaluated argument.
    App(RcValue),
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// A conditional blocked on its scrutinee.
    If {
        /// The `then` branch.
        then_branch: Thunk,
        /// The `else` branch.
        else_branch: Thunk,
    },
}

/// A suspended term over one binder.
#[derive(Clone, Debug)]
pub struct Closure {
    env: ValEnv,
    binder: Symbol,
    body: RcTerm,
}

impl Closure {
    /// Applies the closure to an argument value.
    ///
    /// # Errors
    ///
    /// See [`eval`].
    pub fn apply(&self, argument: RcValue, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
        let env = self.env.bind(self.binder, Thunk::forced(argument));
        eval_at(&env, &self.body, fuel, 0)
    }
}

/// A suspended code body (or code-type result) over the environment binder
/// and the argument binder. When the two binders share a name the argument
/// binding shadows the environment binding, exactly as the paper's
/// simultaneous substitution `e[e'/n][e''/x]` resolves it.
#[derive(Clone, Debug)]
pub struct CodeClosure {
    env: ValEnv,
    env_binder: Symbol,
    arg_binder: Symbol,
    body: RcTerm,
}

impl CodeClosure {
    /// Applies the code body to an environment value and an argument value.
    ///
    /// # Errors
    ///
    /// See [`eval`].
    pub fn apply(
        &self,
        environment: RcValue,
        argument: RcValue,
        fuel: &mut Fuel,
    ) -> Result<RcValue, ReduceError> {
        let env = self
            .env
            .bind(self.env_binder, Thunk::forced(environment))
            .bind(self.arg_binder, Thunk::forced(argument));
        eval_at(&env, &self.body, fuel, 0)
    }
}

/// A lazily evaluated value, cached behind an [`OnceCell`] so each
/// definition is evaluated at most once per environment.
#[derive(Clone, Debug)]
pub struct Thunk(Rc<ThunkData>);

#[derive(Debug)]
struct ThunkData {
    cell: OnceCell<RcValue>,
    env: ValEnv,
    /// `None` for already-forced thunks (the cell is pre-filled).
    term: Option<RcTerm>,
}

impl Thunk {
    /// A thunk whose evaluation is suspended.
    pub fn suspended(env: ValEnv, term: RcTerm) -> Thunk {
        Thunk(Rc::new(ThunkData { cell: OnceCell::new(), env, term: Some(term) }))
    }

    /// A thunk holding an already-computed value.
    pub fn forced(value: RcValue) -> Thunk {
        let cell = OnceCell::new();
        let _ = cell.set(value);
        Thunk(Rc::new(ThunkData { cell, env: ValEnv::new(), term: None }))
    }

    /// Forces the thunk, evaluating its term on first use.
    ///
    /// # Errors
    ///
    /// See [`eval`].
    pub fn force(&self, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
        if let Some(value) = self.0.cell.get() {
            return Ok(value.clone());
        }
        let term = self.0.term.as_ref().expect("suspended thunk carries its term");
        let value = eval_at(&self.0.env, term, fuel, 0)?;
        let _ = self.0.cell.set(value.clone());
        Ok(value)
    }
}

/// A persistent evaluation environment mapping variables to [`Thunk`]s;
/// extension is O(1) and shares the tail.
#[derive(Clone, Debug, Default)]
pub struct ValEnv(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Symbol,
    thunk: Thunk,
    rest: ValEnv,
}

impl ValEnv {
    /// The empty environment.
    pub fn new() -> ValEnv {
        ValEnv(None)
    }

    /// Extends the environment with a binding, shadowing earlier entries
    /// of the same name.
    pub fn bind(&self, name: Symbol, thunk: Thunk) -> ValEnv {
        ValEnv(Some(Rc::new(EnvNode { name, thunk, rest: self.clone() })))
    }

    fn lookup(&self, name: Symbol) -> Option<&Thunk> {
        let mut node = self.0.as_deref();
        while let Some(n) = node {
            if n.name == name {
                return Some(&n.thunk);
            }
            node = n.rest.0.as_deref();
        }
        None
    }

    /// Builds the evaluation environment of a typing environment `Γ`:
    /// assumptions become neutral variables, definitions become lazy
    /// δ-thunks over the prefix they were declared in.
    pub fn from_env(env: &Env) -> ValEnv {
        let mut out = ValEnv::new();
        for decl in env.iter() {
            match decl {
                Decl::Assumption { name, .. } => {
                    out = out.bind(*name, Thunk::forced(Value::global(*name)));
                }
                Decl::Definition { name, term, .. } => {
                    let thunk = Thunk::suspended(out.clone(), term.clone());
                    out = out.bind(*name, thunk);
                }
            }
        }
        out
    }
}

/// Evaluates `term` in the evaluation environment `env`.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted and
/// [`ReduceError::BareCodeApplication`] when code is applied outside a
/// closure.
pub fn eval(env: &ValEnv, term: &Term, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
    eval_at(env, term, fuel, 0)
}

fn eval_at(env: &ValEnv, term: &Term, fuel: &mut Fuel, depth: u32) -> Result<RcValue, ReduceError> {
    if !fuel.tick() || depth > MAX_EVAL_DEPTH {
        return Err(ReduceError::OutOfFuel);
    }
    match term {
        Term::Var(x) => match env.lookup(*x) {
            Some(thunk) => thunk.force(fuel),
            None => Ok(Value::global(*x)),
        },
        Term::Sort(u) => Ok(Rc::new(Value::Sort(*u))),
        Term::Unit => Ok(Rc::new(Value::Unit)),
        Term::UnitVal => Ok(Rc::new(Value::UnitVal)),
        Term::BoolTy => Ok(Rc::new(Value::BoolTy)),
        Term::BoolLit(b) => Ok(Rc::new(Value::Bool(*b))),
        Term::Pi { binder, domain, codomain } => Ok(Rc::new(Value::Pi {
            binder: *binder,
            domain: eval_at(env, domain, fuel, depth)?,
            codomain: Closure { env: env.clone(), binder: *binder, body: codomain.clone() },
        })),
        Term::Sigma { binder, first, second } => Ok(Rc::new(Value::Sigma {
            binder: *binder,
            first: eval_at(env, first, fuel, depth)?,
            second: Closure { env: env.clone(), binder: *binder, body: second.clone() },
        })),
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => Ok(Rc::new(Value::Code {
            env_binder: *env_binder,
            arg_binder: *arg_binder,
            env_ty: eval_at(env, env_ty, fuel, depth)?,
            arg_ty: Closure { env: env.clone(), binder: *env_binder, body: arg_ty.clone() },
            body: CodeClosure {
                env: env.clone(),
                env_binder: *env_binder,
                arg_binder: *arg_binder,
                body: body.clone(),
            },
        })),
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            Ok(Rc::new(Value::CodeTy {
                env_binder: *env_binder,
                arg_binder: *arg_binder,
                env_ty: eval_at(env, env_ty, fuel, depth)?,
                arg_ty: Closure { env: env.clone(), binder: *env_binder, body: arg_ty.clone() },
                result: CodeClosure {
                    env: env.clone(),
                    env_binder: *env_binder,
                    arg_binder: *arg_binder,
                    body: result.clone(),
                },
            }))
        }
        Term::Closure { code, env: closure_env } => Ok(Rc::new(Value::Clo {
            code: eval_at(env, code, fuel, depth)?,
            env: eval_at(env, closure_env, fuel, depth)?,
        })),
        Term::App { func, arg } => {
            let func = eval_at(env, func, fuel, depth)?;
            let arg = eval_at(env, arg, fuel, depth)?;
            apply(func, arg, fuel, depth)
        }
        Term::Let { binder, bound, body, .. } => {
            let inner = env.bind(*binder, Thunk::suspended(env.clone(), bound.clone()));
            eval_at(&inner, body, fuel, depth)
        }
        Term::Pair { first, second, annotation } => Ok(Rc::new(Value::Pair {
            first: eval_at(env, first, fuel, depth)?,
            second: eval_at(env, second, fuel, depth)?,
            annotation: eval_at(env, annotation, fuel, depth)?,
        })),
        Term::Fst(e) => Ok(project(eval_at(env, e, fuel, depth)?, true)),
        Term::Snd(e) => Ok(project(eval_at(env, e, fuel, depth)?, false)),
        Term::If { scrutinee, then_branch, else_branch } => {
            let scrutinee = eval_at(env, scrutinee, fuel, depth)?;
            match &*scrutinee {
                Value::Bool(true) => eval_at(env, then_branch, fuel, depth),
                Value::Bool(false) => eval_at(env, else_branch, fuel, depth),
                _ => Ok(extend(
                    scrutinee,
                    Elim::If {
                        then_branch: Thunk::suspended(env.clone(), then_branch.clone()),
                        else_branch: Thunk::suspended(env.clone(), else_branch.clone()),
                    },
                )),
            }
        }
    }
}

/// Applies `func` to `arg`: the closure-application rule when `func` is a
/// closure over literal code, an error for bare code, spine extension
/// otherwise (including closures over neutral code, which are stuck).
fn apply(func: RcValue, arg: RcValue, fuel: &mut Fuel, depth: u32) -> Result<RcValue, ReduceError> {
    // Decide what to do while borrowing `func`, then either run the body
    // (one new β-frame against [`MAX_EVAL_DEPTH`]) or extend the spine
    // with ownership of `func`.
    let beta = match &*func {
        Value::Clo { code, env } => match &**code {
            Value::Code { body, .. } => {
                let inner = body
                    .env
                    .bind(body.env_binder, Thunk::forced(env.clone()))
                    .bind(body.arg_binder, Thunk::forced(arg.clone()));
                Some((inner, body.body.clone()))
            }
            _ => None,
        },
        Value::Code { .. } => return Err(ReduceError::BareCodeApplication),
        _ => None,
    };
    match beta {
        Some((inner, body)) => eval_at(&inner, &body, fuel, depth + 1),
        None => Ok(extend(func, Elim::App(arg))),
    }
}

/// Projects a component out of `value`.
fn project(value: RcValue, first: bool) -> RcValue {
    if let Value::Pair { first: a, second: b, .. } = &*value {
        return if first { a.clone() } else { b.clone() };
    }
    extend(value, if first { Elim::Fst } else { Elim::Snd })
}

/// Pushes an elimination onto a stuck value's spine, wrapping non-spine
/// values in a [`Head::Blocked`]. When the value is uniquely owned the
/// spine is reused in place, so building a neutral spine of n
/// eliminations stays linear.
fn extend(value: RcValue, elim: Elim) -> RcValue {
    match Rc::try_unwrap(value) {
        Ok(Value::Stuck { head, mut spine }) => {
            spine.push(elim);
            Rc::new(Value::Stuck { head, spine })
        }
        Ok(other) => {
            Rc::new(Value::Stuck { head: Head::Blocked(Rc::new(other)), spine: vec![elim] })
        }
        Err(shared) => {
            if let Value::Stuck { head, spine } = &*shared {
                let mut spine = spine.clone();
                spine.push(elim);
                Rc::new(Value::Stuck { head: head.clone(), spine })
            } else {
                Rc::new(Value::Stuck { head: Head::Blocked(shared), spine: vec![elim] })
            }
        }
    }
}

/// Reads a value back into a normal [`Term`].
///
/// Binders are re-introduced with *canonical* generated names, one per de
/// Bruijn level, shared by every read-back on the thread: quoting the same
/// value twice yields the *same* interned term, so repeated normalization
/// hits the hash-consing kernel and repeated conversion checks hit the
/// memo table. The canonical names are globally fresh symbols, so they can
/// never collide with a symbol appearing in any source program; the one
/// way a collision can still arise — a caller re-normalizing a term that
/// contains a previous read-back's canonical name *free* — is detected
/// during the quote, which then soundly restarts with per-quote freshened
/// names. The result is α-equivalent to the step-based normal form.
///
/// # Errors
///
/// See [`eval`].
pub fn quote(value: &Value, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let entry = *fuel;
    match quote_with(&mut Vec::new(), value, fuel, QuoteNames::Canonical) {
        Err(QuoteError::CanonicalCaptured) => {
            // The abandoned canonical attempt must not charge the retry:
            // refund its ticks so the freshening pass runs against the
            // budget this call was handed, not the depleted remainder.
            // Otherwise a term that hits the fallback near the fuel
            // boundary is double-charged and spuriously reports
            // `OutOfFuel`.
            *fuel = entry;
            quote_with(&mut Vec::new(), value, fuel, QuoteNames::Freshen)
                .map_err(QuoteError::into_reduce)
        }
        other => other.map_err(QuoteError::into_reduce),
    }
}

/// How read-back chooses binder names.
#[derive(Clone, Copy, PartialEq, Eq)]
enum QuoteNames {
    /// The thread's canonical per-level names (stable, shareable output).
    Canonical,
    /// A fresh symbol per binder (the always-safe fallback).
    Freshen,
}

/// Internal quote failure: either a genuine reduction error, or a free
/// occurrence of a canonical name that a canonical-mode binder would
/// capture (triggering the freshening retry).
enum QuoteError {
    Reduce(ReduceError),
    CanonicalCaptured,
}

impl QuoteError {
    fn into_reduce(self) -> ReduceError {
        match self {
            QuoteError::Reduce(e) => e,
            // The freshening retry can never conflict.
            QuoteError::CanonicalCaptured => unreachable!("freshened quote cannot conflict"),
        }
    }
}

impl From<ReduceError> for QuoteError {
    fn from(e: ReduceError) -> QuoteError {
        QuoteError::Reduce(e)
    }
}

thread_local! {
    /// The canonical read-back binder names, one per de Bruijn level,
    /// lazily extended. Globally fresh, so they never collide with
    /// program symbols.
    static QUOTE_LEVEL_NAMES: std::cell::RefCell<Vec<Symbol>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The canonical binder name for de Bruijn level `level`.
fn canonical_name(level: usize) -> Symbol {
    QUOTE_LEVEL_NAMES.with(|names| {
        let mut names = names.borrow_mut();
        while names.len() <= level {
            names.push(Symbol::fresh("q"));
        }
        names[level]
    })
}

fn quote_with(
    names: &mut Vec<Symbol>,
    value: &Value,
    fuel: &mut Fuel,
    mode: QuoteNames,
) -> Result<Term, QuoteError> {
    if !fuel.tick() {
        return Err(QuoteError::Reduce(ReduceError::OutOfFuel));
    }
    match value {
        Value::Sort(u) => Ok(Term::Sort(*u)),
        Value::Unit => Ok(Term::Unit),
        Value::UnitVal => Ok(Term::UnitVal),
        Value::BoolTy => Ok(Term::BoolTy),
        Value::Bool(b) => Ok(Term::BoolLit(*b)),
        Value::Pi { binder, domain, codomain } => {
            let domain = quote_with(names, domain, fuel, mode)?;
            let (binder, codomain) = quote_closure(names, *binder, codomain, fuel, mode)?;
            Ok(Term::Pi { binder, domain: domain.rc(), codomain: codomain.rc() })
        }
        Value::Sigma { binder, first, second } => {
            let first = quote_with(names, first, fuel, mode)?;
            let (binder, second) = quote_closure(names, *binder, second, fuel, mode)?;
            Ok(Term::Sigma { binder, first: first.rc(), second: second.rc() })
        }
        Value::Code { env_binder, arg_binder, env_ty, arg_ty, body } => {
            let (env_binder, arg_binder, env_ty, arg_ty, body) =
                quote_code(names, *env_binder, *arg_binder, env_ty, arg_ty, body, fuel, mode)?;
            Ok(Term::Code {
                env_binder,
                env_ty: env_ty.rc(),
                arg_binder,
                arg_ty: arg_ty.rc(),
                body: body.rc(),
            })
        }
        Value::CodeTy { env_binder, arg_binder, env_ty, arg_ty, result } => {
            let (env_binder, arg_binder, env_ty, arg_ty, result) =
                quote_code(names, *env_binder, *arg_binder, env_ty, arg_ty, result, fuel, mode)?;
            Ok(Term::CodeTy {
                env_binder,
                env_ty: env_ty.rc(),
                arg_binder,
                arg_ty: arg_ty.rc(),
                result: result.rc(),
            })
        }
        Value::Clo { code, env } => Ok(Term::Closure {
            code: quote_with(names, code, fuel, mode)?.rc(),
            env: quote_with(names, env, fuel, mode)?.rc(),
        }),
        Value::Pair { first, second, annotation } => Ok(Term::Pair {
            first: quote_with(names, first, fuel, mode)?.rc(),
            second: quote_with(names, second, fuel, mode)?.rc(),
            annotation: quote_with(names, annotation, fuel, mode)?.rc(),
        }),
        Value::Stuck { head, spine } => {
            let mut out = match head {
                Head::Global(x) => {
                    // A free variable equal to a binder introduced by this
                    // quote would be captured. Canonical names are globally
                    // fresh, so this can only happen when the caller feeds a
                    // previous read-back's binder back in free — restart
                    // with per-quote freshening.
                    if mode == QuoteNames::Canonical && names.contains(x) {
                        return Err(QuoteError::CanonicalCaptured);
                    }
                    Term::Var(*x)
                }
                Head::Local(level) => Term::Var(names[*level]),
                Head::Blocked(v) => quote_with(names, v, fuel, mode)?,
            };
            for elim in spine {
                out = match elim {
                    Elim::App(arg) => {
                        Term::App { func: out.rc(), arg: quote_with(names, arg, fuel, mode)?.rc() }
                    }
                    Elim::Fst => Term::Fst(out.rc()),
                    Elim::Snd => Term::Snd(out.rc()),
                    Elim::If { then_branch, else_branch } => {
                        let then_value = then_branch.force(fuel)?;
                        let else_value = else_branch.force(fuel)?;
                        Term::If {
                            scrutinee: out.rc(),
                            then_branch: quote_with(names, &then_value, fuel, mode)?.rc(),
                            else_branch: quote_with(names, &else_value, fuel, mode)?.rc(),
                        }
                    }
                };
            }
            Ok(out)
        }
    }
}

/// Crosses one binder during read-back.
fn quote_closure(
    names: &mut Vec<Symbol>,
    binder: Symbol,
    closure: &Closure,
    fuel: &mut Fuel,
    mode: QuoteNames,
) -> Result<(Symbol, Term), QuoteError> {
    let name = match mode {
        QuoteNames::Canonical => canonical_name(names.len()),
        QuoteNames::Freshen => binder.freshen(),
    };
    let body = closure.apply(Value::local(names.len()), fuel)?;
    names.push(name);
    let body = quote_with(names, &body, fuel, mode);
    names.pop();
    Ok((name, body?))
}

/// Crosses the two binders of code (or a code type) during read-back.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn quote_code(
    names: &mut Vec<Symbol>,
    env_binder: Symbol,
    arg_binder: Symbol,
    env_ty: &RcValue,
    arg_ty: &Closure,
    body: &CodeClosure,
    fuel: &mut Fuel,
    mode: QuoteNames,
) -> Result<(Symbol, Symbol, Term, Term, Term), QuoteError> {
    let env_ty = quote_with(names, env_ty, fuel, mode)?;
    let (name_env, name_arg) = match mode {
        QuoteNames::Canonical => (canonical_name(names.len()), canonical_name(names.len() + 1)),
        QuoteNames::Freshen => (env_binder.freshen(), arg_binder.freshen()),
    };
    let arg_ty_value = arg_ty.apply(Value::local(names.len()), fuel)?;
    names.push(name_env);
    let arg_ty_term = quote_with(names, &arg_ty_value, fuel, mode);
    names.pop();
    let body_value = body.apply(Value::local(names.len()), Value::local(names.len() + 1), fuel)?;
    names.push(name_env);
    names.push(name_arg);
    let body_term = quote_with(names, &body_value, fuel, mode);
    names.pop();
    names.pop();
    Ok((name_env, name_arg, env_ty, arg_ty_term?, body_term?))
}

/// Returns the body/environment of a closure over literal code, if `value`
/// is one — the shape the closure-η rule applies to.
fn as_eta_closure(value: &Value) -> Option<(&CodeClosure, &RcValue)> {
    if let Value::Clo { code, env } = value {
        if let Value::Code { body, .. } = &**code {
            return Some((body, env));
        }
    }
    None
}

/// Decides `Γ ⊢ e1 ≡ e2` directly on values, at binder level `level`,
/// including the closure-η rule `[≡-Clo-η1/2]`: a closure over literal
/// code is identified with anything that behaves the same under
/// application to a shared fresh variable.
///
/// # Errors
///
/// See [`eval`].
pub fn conv(
    level: usize,
    left: &Value,
    right: &Value,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    if !fuel.tick() {
        return Err(ReduceError::OutOfFuel);
    }
    // Closure-η first: either side a closure over literal code.
    let left_clo = as_eta_closure(left);
    let right_clo = as_eta_closure(right);
    match (left_clo, right_clo) {
        (Some((b1, e1)), Some((b2, e2))) => {
            let fresh = Value::local(level);
            let a = b1.apply(e1.clone(), fresh.clone(), fuel)?;
            let b = b2.apply(e2.clone(), fresh, fuel)?;
            return conv(level + 1, &a, &b, fuel);
        }
        (Some((body, clo_env)), None) => {
            return eta_expand_conv(level, body, clo_env, right, fuel);
        }
        (None, Some((body, clo_env))) => {
            return eta_expand_conv(level, body, clo_env, left, fuel);
        }
        (None, None) => {}
    }

    match (left, right) {
        (Value::Sort(u), Value::Sort(v)) => Ok(u == v),
        (Value::Unit, Value::Unit)
        | (Value::UnitVal, Value::UnitVal)
        | (Value::BoolTy, Value::BoolTy) => Ok(true),
        (Value::Bool(a), Value::Bool(b)) => Ok(a == b),
        (
            Value::Pi { domain: d1, codomain: c1, .. },
            Value::Pi { domain: d2, codomain: c2, .. },
        ) => Ok(conv(level, d1, d2, fuel)? && conv_closure(level, c1, c2, fuel)?),
        (
            Value::Sigma { first: f1, second: s1, .. },
            Value::Sigma { first: f2, second: s2, .. },
        ) => Ok(conv(level, f1, f2, fuel)? && conv_closure(level, s1, s2, fuel)?),
        (
            Value::Code { env_ty: e1, arg_ty: a1, body: b1, .. },
            Value::Code { env_ty: e2, arg_ty: a2, body: b2, .. },
        )
        | (
            Value::CodeTy { env_ty: e1, arg_ty: a1, result: b1, .. },
            Value::CodeTy { env_ty: e2, arg_ty: a2, result: b2, .. },
        ) => {
            // Mixed Code/CodeTy pairs cannot reach here — the alternatives
            // pair like with like — and fall to the catch-all `false` arm.
            if !conv(level, e1, e2, fuel)? || !conv_closure(level, a1, a2, fuel)? {
                return Ok(false);
            }
            let env_fresh = Value::local(level);
            let arg_fresh = Value::local(level + 1);
            let v1 = b1.apply(env_fresh.clone(), arg_fresh.clone(), fuel)?;
            let v2 = b2.apply(env_fresh, arg_fresh, fuel)?;
            conv(level + 2, &v1, &v2, fuel)
        }
        // Closures over neutral code compare structurally.
        (Value::Clo { code: c1, env: e1 }, Value::Clo { code: c2, env: e2 }) => {
            Ok(conv(level, c1, c2, fuel)? && conv(level, e1, e2, fuel)?)
        }
        (Value::Pair { first: f1, second: s1, .. }, Value::Pair { first: f2, second: s2, .. }) => {
            Ok(conv(level, f1, f2, fuel)? && conv(level, s1, s2, fuel)?)
        }
        (Value::Stuck { head: h1, spine: s1 }, Value::Stuck { head: h2, spine: s2 }) => {
            if !conv_head(level, h1, h2, fuel)? || s1.len() != s2.len() {
                return Ok(false);
            }
            for (e1, e2) in s1.iter().zip(s2) {
                if !conv_elim(level, e1, e2, fuel)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The closure-η comparison: the code body with the closure's environment
/// and a fresh argument, against `other` applied to that same fresh
/// argument. Bare code is never equivalent to a closure (applying it is a
/// [`ReduceError::BareCodeApplication`]), so that case decides `false`.
fn eta_expand_conv(
    level: usize,
    body: &CodeClosure,
    closure_env: &RcValue,
    other: &Value,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    if matches!(other, Value::Code { .. }) {
        return Ok(false);
    }
    let fresh = Value::local(level);
    let applied_closure = body.apply(closure_env.clone(), fresh.clone(), fuel)?;
    let applied_other = apply_value(other, fresh)?;
    conv(level + 1, &applied_closure, &applied_other, fuel)
}

fn conv_head(level: usize, h1: &Head, h2: &Head, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    match (h1, h2) {
        (Head::Global(x), Head::Global(y)) => Ok(x == y),
        (Head::Local(a), Head::Local(b)) => Ok(a == b),
        (Head::Blocked(a), Head::Blocked(b)) => conv(level, a, b, fuel),
        _ => Ok(false),
    }
}

fn conv_elim(level: usize, e1: &Elim, e2: &Elim, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    match (e1, e2) {
        (Elim::App(a), Elim::App(b)) => conv(level, a, b, fuel),
        (Elim::Fst, Elim::Fst) | (Elim::Snd, Elim::Snd) => Ok(true),
        (
            Elim::If { then_branch: t1, else_branch: f1 },
            Elim::If { then_branch: t2, else_branch: f2 },
        ) => {
            let (t1, t2) = (t1.force(fuel)?, t2.force(fuel)?);
            if !conv(level, &t1, &t2, fuel)? {
                return Ok(false);
            }
            let (f1, f2) = (f1.force(fuel)?, f2.force(fuel)?);
            conv(level, &f1, &f2, fuel)
        }
        _ => Ok(false),
    }
}

/// Compares two closures by instantiating both at the same fresh level.
fn conv_closure(
    level: usize,
    c1: &Closure,
    c2: &Closure,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    let fresh = Value::local(level);
    let a = c1.apply(fresh.clone(), fuel)?;
    let b = c2.apply(fresh, fuel)?;
    conv(level + 1, &a, &b, fuel)
}

/// Applies a borrowed value (used by closure-η, where the other side may
/// be any value).
fn apply_value(func: &Value, arg: RcValue) -> Result<RcValue, ReduceError> {
    match func {
        Value::Clo { code, .. } if matches!(&**code, Value::Code { .. }) => {
            unreachable!("literal-code closures are handled by closure-η before application")
        }
        Value::Code { .. } => Err(ReduceError::BareCodeApplication),
        Value::Stuck { head, spine } => {
            let mut spine = spine.clone();
            spine.push(Elim::App(arg));
            Ok(Rc::new(Value::Stuck { head: head.clone(), spine }))
        }
        other => Ok(Rc::new(Value::Stuck {
            head: Head::Blocked(Rc::new(other.clone())),
            spine: vec![Elim::App(arg)],
        })),
    }
}

/// Evaluates `term` under the typing environment `env`.
///
/// # Errors
///
/// See [`eval`].
pub fn eval_in(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<RcValue, ReduceError> {
    eval(&ValEnv::from_env(env), term, fuel)
}

/// Fully normalizes `term` through the NbE engine. Agrees with
/// [`crate::reduce::normalize`] up to α-equivalence on well-typed terms.
///
/// # Errors
///
/// See [`eval`].
pub fn normalize_nbe(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let value = eval_in(env, term, fuel)?;
    quote(&value, fuel)
}

/// Weak-head normalization through the NbE engine; the type checker uses
/// this to expose head constructors (`Π`, `Σ`, `Code`, sorts, …).
///
/// A term whose head is already canonical (or a neutral variable) is
/// returned unchanged — the dominant case on the type-checking path, where
/// inferred types are usually literal `Π`/`Σ`/`Code` types. Otherwise the
/// term is evaluated and read back, which yields a complete normal form
/// (in particular weak-head normal).
///
/// # Errors
///
/// See [`eval`].
pub fn whnf_nbe(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    match term {
        Term::Sort(_)
        | Term::Unit
        | Term::UnitVal
        | Term::BoolTy
        | Term::BoolLit(_)
        | Term::Pi { .. }
        | Term::Sigma { .. }
        | Term::Code { .. }
        | Term::CodeTy { .. }
        | Term::Closure { .. }
        | Term::Pair { .. } => Ok(term.clone()),
        Term::Var(x) if env.lookup_definition(*x).is_none() => Ok(term.clone()),
        _ => normalize_nbe(env, term, fuel),
    }
}

/// [`normalize_nbe`] with the default fuel budget.
///
/// # Panics
///
/// Panics if the default budget is exhausted or the term applies bare
/// code; intended for tests and examples on well-typed terms.
pub fn normalize_nbe_default(env: &Env, term: &Term) -> Term {
    let mut fuel = Fuel::default();
    normalize_nbe(env, term, &mut fuel).expect("NbE normalization of a well-typed term failed")
}

/// Decides definitional equivalence of two terms through the NbE engine.
///
/// # Errors
///
/// See [`eval`].
pub fn conv_terms(env: &Env, e1: &Term, e2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    let venv = ValEnv::from_env(env);
    let v1 = eval(&venv, e1, fuel)?;
    let v2 = eval(&venv, e2, fuel)?;
    conv(0, &v1, &v2, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::subst::alpha_eq;

    fn nf(t: &Term) -> Term {
        normalize_nbe_default(&Env::new(), t)
    }

    fn identity_closure() -> Term {
        closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val())
    }

    #[test]
    fn closure_application_and_environment_unpacking() {
        assert!(alpha_eq(&nf(&app(identity_closure(), tt())), &tt()));
        let clo = closure(code("n", bool_ty(), "x", unit_ty(), var("n")), tt());
        assert!(alpha_eq(&nf(&app(clo, unit_val())), &tt()));
    }

    #[test]
    fn environment_capture_is_avoided() {
        let clo =
            closure(code("n", bool_ty(), "x", bool_ty(), ite(var("n"), var("x"), ff())), var("x"));
        let value = nf(&app(clo, tt()));
        assert!(alpha_eq(&value, &ite(var("x"), tt(), ff())));
    }

    #[test]
    fn shadowed_code_binders_bind_the_argument() {
        // λ (n : Bool, n : Bool). n — the body's n is the argument.
        let clo = closure(code("n", bool_ty(), "n", bool_ty(), var("n")), ff());
        assert!(alpha_eq(&nf(&app(clo, tt())), &tt()));
    }

    #[test]
    fn bare_code_application_is_reported() {
        let bare = app(code("n", unit_ty(), "x", bool_ty(), var("x")), tt());
        let mut fuel = Fuel::default();
        assert_eq!(
            normalize_nbe(&Env::new(), &bare, &mut fuel).unwrap_err(),
            ReduceError::BareCodeApplication
        );
    }

    #[test]
    fn closure_eta_identifies_environment_shapes() {
        let env_ty = product(bool_ty(), unit_ty());
        let captured = closure(
            code("n", env_ty.clone(), "x", unit_ty(), fst(var("n"))),
            pair(tt(), unit_val(), env_ty),
        );
        let inlined = closure(code("n", unit_ty(), "x", unit_ty(), tt()), unit_val());
        let mut fuel = Fuel::default();
        assert!(conv_terms(&Env::new(), &captured, &inlined, &mut fuel).unwrap());
        let different = closure(code("n", unit_ty(), "x", unit_ty(), ff()), unit_val());
        assert!(!conv_terms(&Env::new(), &captured, &different, &mut fuel).unwrap());
    }

    #[test]
    fn closure_eta_against_neutral_terms() {
        let env = Env::new()
            .with_assumption(cccc_util::Symbol::intern("f"), pi("x", bool_ty(), bool_ty()));
        let wrapper =
            closure(code("n", unit_ty(), "x", bool_ty(), app(var("f"), var("x"))), unit_val());
        let mut fuel = Fuel::default();
        assert!(conv_terms(&env, &wrapper, &var("f"), &mut fuel).unwrap());
        assert!(conv_terms(&env, &var("f"), &wrapper, &mut fuel).unwrap());
        assert!(!conv_terms(&env, &wrapper, &var("g"), &mut fuel).unwrap());
    }

    #[test]
    fn divergence_is_reported_not_overflowed() {
        let omega_half = closure(
            code("n", unit_ty(), "x", pi("b", bool_ty(), bool_ty()), app(var("x"), var("x"))),
            unit_val(),
        );
        let omega = app(omega_half.clone(), omega_half);
        let mut fuel = Fuel::default();
        assert!(matches!(
            normalize_nbe(&Env::new(), &omega, &mut fuel),
            Err(ReduceError::OutOfFuel)
        ));
    }

    #[test]
    fn delta_definitions_unfold_lazily() {
        let env = Env::new().with_definition(cccc_util::Symbol::intern("b"), tt(), bool_ty());
        let mut fuel = Fuel::default();
        let result = normalize_nbe(&env, &ite(var("b"), ff(), tt()), &mut fuel).unwrap();
        assert!(alpha_eq(&result, &ff()));
    }

    #[test]
    fn fallback_retry_is_not_double_charged_near_the_fuel_boundary() {
        // Extract the canonical level-0 read-back name from a Π quote …
        let canonical = match nf(&pi("x", bool_ty(), var("x"))) {
            Term::Pi { binder, .. } => binder,
            other => panic!("expected Pi, got {other}"),
        };
        // … and build a capture-conflict term: the free occurrence of the
        // canonical name under a binder forces quote's freshening retry.
        let tricky = pi("y", bool_ty(), app(var_sym(canonical), var("y")));
        // Budget calibration: an α-variant with a plain free variable has
        // the identical tick structure (same evaluation, same read-back
        // traversal) but never conflicts, so its cost is exactly what one
        // *single* quote pass of `tricky` needs.
        let plain = pi("y", bool_ty(), app(var("plain_free"), var("y")));
        let mut calibration = Fuel::default();
        let _ = normalize_nbe(&Env::new(), &plain, &mut calibration).unwrap();
        let budget = calibration.used();
        // On exactly that budget the conflict case must still succeed:
        // the abandoned canonical attempt's ticks are refunded, so only
        // one full pass is ever charged. (Double-charging the retry —
        // the old behaviour — needs strictly more than `budget` and
        // spuriously reported OutOfFuel here.)
        let mut exact = Fuel::new(budget);
        let result = normalize_nbe(&Env::new(), &tricky, &mut exact)
            .expect("the freshening retry must run on a fresh sub-budget");
        assert!(alpha_eq(&result, &tricky));
        assert!(exact.is_exhausted(), "the budget was chosen to be exactly boundary-tight");
    }
}
