//! A convenience DSL for constructing CC-CC terms programmatically.
//!
//! Every constructor takes owned [`Term`]s and returns an owned [`Term`],
//! wrapping subterms in [`Rc`](std::rc::Rc) internally:
//!
//! ```
//! use cccc_target::builder::*;
//!
//! // The closure-converted boolean identity ⟪λ (n : 1, x : Bool). x, ⟨⟩⟫
//! let id = closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val());
//! assert_eq!(id.closure_count(), 1);
//! ```

use crate::ast::{Term, Universe};
use cccc_util::symbol::Symbol;

/// A variable with the given (interned) name.
pub fn var(name: &str) -> Term {
    Term::Var(Symbol::intern(name))
}

/// A variable referring to an existing symbol.
pub fn var_sym(name: Symbol) -> Term {
    Term::Var(name)
}

/// The universe `⋆`.
pub fn star() -> Term {
    Term::Sort(Universe::Star)
}

/// The universe `□`.
pub fn boxu() -> Term {
    Term::Sort(Universe::Box)
}

/// A sort term from a [`Universe`].
pub fn sort(u: Universe) -> Term {
    Term::Sort(u)
}

/// Closure type `Π x : domain. codomain`.
pub fn pi(binder: &str, domain: Term, codomain: Term) -> Term {
    pi_sym(Symbol::intern(binder), domain, codomain)
}

/// Closure type with an existing binder symbol.
pub fn pi_sym(binder: Symbol, domain: Term, codomain: Term) -> Term {
    Term::Pi { binder, domain: domain.rc(), codomain: codomain.rc() }
}

/// Non-dependent closure type `A → B`, sugar for `Π _ : A. B`.
pub fn arrow(domain: Term, codomain: Term) -> Term {
    pi_sym(Symbol::fresh("_"), domain, codomain)
}

/// Code `λ (env_binder : env_ty, arg_binder : arg_ty). body`.
pub fn code(env_binder: &str, env_ty: Term, arg_binder: &str, arg_ty: Term, body: Term) -> Term {
    code_sym(Symbol::intern(env_binder), env_ty, Symbol::intern(arg_binder), arg_ty, body)
}

/// Code with existing binder symbols.
pub fn code_sym(
    env_binder: Symbol,
    env_ty: Term,
    arg_binder: Symbol,
    arg_ty: Term,
    body: Term,
) -> Term {
    Term::Code { env_binder, env_ty: env_ty.rc(), arg_binder, arg_ty: arg_ty.rc(), body: body.rc() }
}

/// Code type `Code (env_binder : env_ty, arg_binder : arg_ty). result`.
pub fn code_ty(
    env_binder: &str,
    env_ty: Term,
    arg_binder: &str,
    arg_ty: Term,
    result: Term,
) -> Term {
    code_ty_sym(Symbol::intern(env_binder), env_ty, Symbol::intern(arg_binder), arg_ty, result)
}

/// Code type with existing binder symbols.
pub fn code_ty_sym(
    env_binder: Symbol,
    env_ty: Term,
    arg_binder: Symbol,
    arg_ty: Term,
    result: Term,
) -> Term {
    Term::CodeTy {
        env_binder,
        env_ty: env_ty.rc(),
        arg_binder,
        arg_ty: arg_ty.rc(),
        result: result.rc(),
    }
}

/// A closure `⟪code, env⟫`.
pub fn closure(code: Term, env: Term) -> Term {
    Term::Closure { code: code.rc(), env: env.rc() }
}

/// Application `func arg`.
pub fn app(func: Term, arg: Term) -> Term {
    Term::App { func: func.rc(), arg: arg.rc() }
}

/// Iterated application `func arg0 arg1 …`.
pub fn apps(func: Term, args: impl IntoIterator<Item = Term>) -> Term {
    args.into_iter().fold(func, app)
}

/// Dependent let `let x = bound : annotation in body`.
pub fn let_(binder: &str, annotation: Term, bound: Term, body: Term) -> Term {
    let_sym(Symbol::intern(binder), annotation, bound, body)
}

/// Dependent let with an existing binder symbol.
pub fn let_sym(binder: Symbol, annotation: Term, bound: Term, body: Term) -> Term {
    Term::Let { binder, annotation: annotation.rc(), bound: bound.rc(), body: body.rc() }
}

/// Strong dependent pair type `Σ x : first. second`.
pub fn sigma(binder: &str, first: Term, second: Term) -> Term {
    sigma_sym(Symbol::intern(binder), first, second)
}

/// Σ type with an existing binder symbol.
pub fn sigma_sym(binder: Symbol, first: Term, second: Term) -> Term {
    Term::Sigma { binder, first: first.rc(), second: second.rc() }
}

/// Non-dependent product `A × B`, sugar for `Σ _ : A. B`.
pub fn product(first: Term, second: Term) -> Term {
    sigma_sym(Symbol::fresh("_"), first, second)
}

/// Dependent pair `⟨first, second⟩ as annotation`.
pub fn pair(first: Term, second: Term, annotation: Term) -> Term {
    Term::Pair { first: first.rc(), second: second.rc(), annotation: annotation.rc() }
}

/// First projection `fst e`.
pub fn fst(e: Term) -> Term {
    Term::Fst(e.rc())
}

/// Second projection `snd e`.
pub fn snd(e: Term) -> Term {
    Term::Snd(e.rc())
}

/// The unit type `1`.
pub fn unit_ty() -> Term {
    Term::Unit
}

/// The unit value `⟨⟩`.
pub fn unit_val() -> Term {
    Term::UnitVal
}

/// The ground type `Bool`.
pub fn bool_ty() -> Term {
    Term::BoolTy
}

/// A boolean literal.
pub fn bool_lit(value: bool) -> Term {
    Term::BoolLit(value)
}

/// The literal `true`.
pub fn tt() -> Term {
    Term::BoolLit(true)
}

/// The literal `false`.
pub fn ff() -> Term {
    Term::BoolLit(false)
}

/// Conditional `if scrutinee then then_branch else else_branch`.
pub fn ite(scrutinee: Term, then_branch: Term, else_branch: Term) -> Term {
    Term::If {
        scrutinee: scrutinee.rc(),
        then_branch: then_branch.rc(),
        else_branch: else_branch.rc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn builders_produce_expected_shapes() {
        assert!(matches!(var("x"), Term::Var(_)));
        assert!(matches!(star(), Term::Sort(Universe::Star)));
        assert!(matches!(boxu(), Term::Sort(Universe::Box)));
        assert!(matches!(sort(Universe::Star), Term::Sort(Universe::Star)));
        assert!(matches!(pi("x", star(), var("x")), Term::Pi { .. }));
        assert!(matches!(code("n", unit_ty(), "x", star(), var("x")), Term::Code { .. }));
        assert!(matches!(code_ty("n", unit_ty(), "x", star(), star()), Term::CodeTy { .. }));
        assert!(matches!(closure(unit_val(), unit_val()), Term::Closure { .. }));
        assert!(matches!(app(var("f"), var("x")), Term::App { .. }));
        assert!(matches!(let_("x", star(), bool_ty(), var("x")), Term::Let { .. }));
        assert!(matches!(sigma("x", star(), var("x")), Term::Sigma { .. }));
        assert!(matches!(pair(tt(), ff(), product(bool_ty(), bool_ty())), Term::Pair { .. }));
        assert!(matches!(fst(var("p")), Term::Fst(_)));
        assert!(matches!(snd(var("p")), Term::Snd(_)));
        assert!(matches!(unit_ty(), Term::Unit));
        assert!(matches!(unit_val(), Term::UnitVal));
        assert!(matches!(ite(tt(), ff(), tt()), Term::If { .. }));
        assert!(matches!(bool_lit(true), Term::BoolLit(true)));
    }

    #[test]
    fn apps_folds_left() {
        let t = apps(var("f"), vec![var("a"), var("b")]);
        let (head, args) = t.spine();
        assert!(matches!(head, Term::Var(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn arrow_and_product_use_fresh_binders() {
        let a = arrow(bool_ty(), bool_ty());
        let b = arrow(bool_ty(), bool_ty());
        match (&a, &b) {
            (Term::Pi { binder: x, .. }, Term::Pi { binder: y, .. }) => assert_ne!(x, y),
            _ => panic!("arrow should build Pi"),
        }
        assert!(matches!(product(bool_ty(), bool_ty()), Term::Sigma { .. }));
    }
}
