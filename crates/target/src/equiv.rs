//! Definitional equivalence `Γ ⊢ e ≡ e'` for CC-CC (Figure 6).
//!
//! Equivalence is reduction in `⊲*` up to the paper's **closure-η**
//! principle, which replaces the function-η rule of CC: a closure is
//! identified with anything that behaves like it under application,
//!
//! ```text
//! [≡-Clo-η1/2]   ⟪λ (n : A', x : A). e, e'⟫ ≡ e''
//!                when  e[e'/n][x/x] ≡ e'' x   for fresh x
//! ```
//!
//! so two closures with *different environments* (one capturing a value,
//! one with it inlined, one projecting it out of a bigger environment) are
//! definitionally equal exactly when their bodies agree once the
//! environment is substituted in. This is the rule that makes
//! compositionality (Lemma 5.1) and coherence (Lemma 5.4) hold for the
//! translation, and it is what the `[Clo]`/`[Conv]` interplay of Figure 7
//! relies on.
//!
//! Two interchangeable deciders implement the judgment:
//!
//! * [`equiv`] (the default, used by the type checker and everything built
//!   on it) runs the **NbE engine** of [`crate::nbe`]: both sides are
//!   evaluated into the semantic domain and compared with
//!   [`crate::nbe::conv`], which applies closure-η directly on values by
//!   extending machine environments — no fresh symbols, no substitution;
//! * [`equiv_spec`] is the **paper-faithful specification**: both sides
//!   are reduced to weak-head normal form with the step-based engine and
//!   compared structurally, recursing under binders with a shared fresh
//!   variable; when either side is a closure over literal code, the
//!   closure-η comparison applies.
//!
//! The property suites check that the two agree on translated
//! generator-produced programs; [`equiv_spec`] is the differential-testing
//! oracle for the NbE engine.

use crate::ast::{RcTerm, Term};
use crate::builder::var_sym;
use crate::env::Env;
use crate::reduce::{apply_closure_code, whnf, ReduceError};
use crate::subst::subst;
use cccc_util::fuel::Fuel;
use cccc_util::intern::ConvCache;
use cccc_util::symbol::Symbol;
use std::cell::RefCell;

pub use cccc_util::intern::ConvCacheStats;

thread_local! {
    /// Decided conversion pairs for CC-CC, keyed by ordered node ids and
    /// the environment fingerprint (collapsed for closed pairs — the
    /// dominant case here, where `[Code]` checks everything against the
    /// empty environment) — see [`ConvCache`].
    static CONV_CACHE: RefCell<ConvCache> = RefCell::new(ConvCache::new());
}

/// A snapshot of this thread's conversion-cache counters.
pub fn conv_cache_stats() -> ConvCacheStats {
    CONV_CACHE.with(|c| c.borrow().stats())
}

/// Clears this thread's conversion memo table and counters.
pub fn reset_conv_cache() {
    CONV_CACHE.with(|c| c.borrow_mut().reset());
}

/// Number of decided pairs currently in this thread's conversion memo.
pub fn conv_cache_len() -> usize {
    CONV_CACHE.with(|c| c.borrow().len())
}

/// Checks `Γ ⊢ e1 ≡ e2` with an explicit fuel budget, through the NbE
/// engine with identity and memo fast paths.
///
/// # Errors
///
/// Returns a [`ReduceError`] when normalization runs out of fuel (or hits
/// a bare-code application) before the comparison can be decided.
pub fn equiv(env: &Env, e1: &Term, e2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    // Interning the heads is O(1) (children are already interned) and
    // buys node identities for the fast paths below.
    let n1 = e1.clone().rc();
    let n2 = e2.clone().rc();
    equiv_nodes(env, &n1, &n2, fuel)
}

/// [`equiv`] on interned handles.
///
/// Decision ladder: node identity (O(1), hash-consing makes structurally
/// identical terms the *same* node) → memo table of previously decided
/// `(id, id, env)` pairs → α-equivalence (linear, with its own identity
/// shortcuts) → the NbE engine with closure-η. Decided answers are
/// memoized; errors (fuel exhaustion, bare-code application) are not —
/// they depend on the budget, not the judgment.
///
/// # Errors
///
/// Returns a [`ReduceError`] when normalization runs out of fuel (or hits
/// a bare-code application) before the comparison can be decided.
pub fn equiv_nodes(
    env: &Env,
    n1: &RcTerm,
    n2: &RcTerm,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    if n1.same(n2) {
        CONV_CACHE.with(|c| c.borrow_mut().note_identity_hit());
        return Ok(true);
    }
    let key = ConvCache::key(n1, n2, env.fingerprint());
    if let Some(answer) = CONV_CACHE.with(|c| c.borrow_mut().lookup(key)) {
        return Ok(answer);
    }
    // α-equivalent terms are definitionally equal outright; the type
    // checker overwhelmingly compares a type against a near-identical
    // copy of itself, so this pre-check pays for itself many times over
    // before the engine ever evaluates anything.
    let answer = if crate::subst::alpha_eq(n1, n2) {
        true
    } else {
        crate::nbe::conv_terms(env, n1, n2, fuel)?
    };
    CONV_CACHE.with(|c| c.borrow_mut().insert(key, answer));
    Ok(answer)
}

/// Which equivalence/normalization engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Engine {
    /// The normalization-by-evaluation engine ([`crate::nbe`]); the
    /// default on every hot path.
    #[default]
    Nbe,
    /// The substitution-based step engine ([`crate::reduce`]); the
    /// paper-faithful specification and differential-testing oracle.
    Step,
}

/// Checks `Γ ⊢ e1 ≡ e2` with the step-based engine — the executable
/// specification [`equiv`] is differentially tested against.
///
/// # Errors
///
/// Returns a [`ReduceError`] when normalization runs out of fuel (or hits
/// a bare-code application) before the comparison can be decided.
pub fn equiv_spec(env: &Env, e1: &Term, e2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    let n1 = whnf(env, e1, fuel)?;
    let n2 = whnf(env, e2, fuel)?;
    compare_whnf(env, &n1, &n2, fuel)
}

/// Checks `Γ ⊢ e1 ≡ e2` through the chosen engine.
///
/// # Errors
///
/// See [`equiv`] and [`equiv_spec`].
pub fn equiv_with_engine(
    env: &Env,
    e1: &Term,
    e2: &Term,
    fuel: &mut Fuel,
    engine: Engine,
) -> Result<bool, ReduceError> {
    match engine {
        Engine::Nbe => equiv(env, e1, e2, fuel),
        Engine::Step => equiv_spec(env, e1, e2, fuel),
    }
}

/// Checks `Γ ⊢ e1 ≡ e2` with the default fuel budget, treating reduction
/// failure as "not equivalent".
pub fn definitionally_equal(env: &Env, e1: &Term, e2: &Term) -> bool {
    let mut fuel = Fuel::default();
    equiv(env, e1, e2, &mut fuel).unwrap_or(false)
}

/// [`definitionally_equal`] through the step-based specification.
pub fn definitionally_equal_spec(env: &Env, e1: &Term, e2: &Term) -> bool {
    let mut fuel = Fuel::default();
    equiv_spec(env, e1, e2, &mut fuel).unwrap_or(false)
}

/// If `term` is a closure whose code component weak-head normalizes to
/// literal code, returns the pieces the closure-η rule needs.
fn as_eta_closure(
    env: &Env,
    term: &Term,
    fuel: &mut Fuel,
) -> Result<Option<(Symbol, Symbol, Term, Term)>, ReduceError> {
    if let Term::Closure { code, env: closure_env } = term {
        if let Term::Code { env_binder, arg_binder, body, .. } = whnf(env, code, fuel)? {
            return Ok(Some((env_binder, arg_binder, (*body).clone(), (**closure_env).clone())));
        }
    }
    Ok(None)
}

fn compare_whnf(env: &Env, n1: &Term, n2: &Term, fuel: &mut Fuel) -> Result<bool, ReduceError> {
    // Closure-η: if either side is a closure over literal code, compare
    // behaviour under application to a shared fresh variable.
    let left_closure = as_eta_closure(env, n1, fuel)?;
    let right_closure = as_eta_closure(env, n2, fuel)?;
    match (&left_closure, &right_closure) {
        (Some((n, x, body, closure_env)), None) => {
            return eta_expand_compare(env, *n, *x, body, closure_env, n2, fuel);
        }
        (None, Some((n, x, body, closure_env))) => {
            return eta_expand_compare(env, *n, *x, body, closure_env, n1, fuel);
        }
        (Some((n1_, x1, body1, env1)), Some((n2_, x2, body2, env2))) => {
            let fresh = x1.freshen();
            let left = apply_closure_code(*n1_, *x1, body1, env1, &var_sym(fresh));
            let right = apply_closure_code(*n2_, *x2, body2, env2, &var_sym(fresh));
            return equiv_spec(env, &left, &right, fuel);
        }
        (None, None) => {}
    }

    match (n1, n2) {
        (Term::Var(x), Term::Var(y)) => Ok(x == y),
        (Term::Sort(u), Term::Sort(v)) => Ok(u == v),
        (Term::Unit, Term::Unit)
        | (Term::UnitVal, Term::UnitVal)
        | (Term::BoolTy, Term::BoolTy) => Ok(true),
        (Term::BoolLit(a), Term::BoolLit(b)) => Ok(a == b),
        (
            Term::Pi { binder: x, domain: a1, codomain: b1 },
            Term::Pi { binder: y, domain: a2, codomain: b2 },
        )
        | (
            Term::Sigma { binder: x, first: a1, second: b1 },
            Term::Sigma { binder: y, first: a2, second: b2 },
        ) => {
            // Pi matches only the first pattern and Sigma only the second,
            // so the discriminants agree by construction of the match.
            if std::mem::discriminant(n1) != std::mem::discriminant(n2) {
                return Ok(false);
            }
            if !equiv_spec(env, a1, a2, fuel)? {
                return Ok(false);
            }
            compare_under_binder(env, *x, b1, *y, b2, fuel)
        }
        (
            Term::Code { env_binder: m1, env_ty: e1, arg_binder: x1, arg_ty: a1, body: b1 },
            Term::Code { env_binder: m2, env_ty: e2, arg_binder: x2, arg_ty: a2, body: b2 },
        )
        | (
            Term::CodeTy { env_binder: m1, env_ty: e1, arg_binder: x1, arg_ty: a1, result: b1 },
            Term::CodeTy { env_binder: m2, env_ty: e2, arg_binder: x2, arg_ty: a2, result: b2 },
        ) => {
            if std::mem::discriminant(n1) != std::mem::discriminant(n2) {
                return Ok(false);
            }
            if !equiv_spec(env, e1, e2, fuel)? {
                return Ok(false);
            }
            // Share a fresh environment binder, compare argument types,
            // then share a fresh argument binder and compare bodies. When
            // the argument binder shadows the environment binder (x = n),
            // every occurrence in the body refers to the argument, so only
            // the argument renaming applies there.
            let fresh_env = m1.freshen();
            let a1 = subst(a1, *m1, &var_sym(fresh_env));
            let a2 = subst(a2, *m2, &var_sym(fresh_env));
            if !equiv_spec(env, &a1, &a2, fuel)? {
                return Ok(false);
            }
            let fresh_arg = x1.freshen();
            let rename_body = |body: &Term, m: Symbol, x: Symbol| {
                if x == m {
                    subst(body, x, &var_sym(fresh_arg))
                } else {
                    subst(&subst(body, m, &var_sym(fresh_env)), x, &var_sym(fresh_arg))
                }
            };
            let b1 = rename_body(b1, *m1, *x1);
            let b2 = rename_body(b2, *m2, *x2);
            equiv_spec(env, &b1, &b2, fuel)
        }
        // A closure whose code is neutral (an abstract variable, say) is
        // compared structurally.
        (Term::Closure { code: c1, env: e1 }, Term::Closure { code: c2, env: e2 }) => {
            Ok(equiv_spec(env, c1, c2, fuel)? && equiv_spec(env, e1, e2, fuel)?)
        }
        (Term::App { func: f1, arg: a1 }, Term::App { func: f2, arg: a2 }) => {
            Ok(compare_whnf(env, f1, f2, fuel)? && equiv_spec(env, a1, a2, fuel)?)
        }
        // Pairs are compared componentwise; the annotation is a typing
        // artifact and does not affect the value.
        (Term::Pair { first: a1, second: b1, .. }, Term::Pair { first: a2, second: b2, .. }) => {
            Ok(equiv_spec(env, a1, a2, fuel)? && equiv_spec(env, b1, b2, fuel)?)
        }
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => equiv_spec(env, a, b, fuel),
        (
            Term::If { scrutinee: s1, then_branch: t1, else_branch: e1 },
            Term::If { scrutinee: s2, then_branch: t2, else_branch: e2 },
        ) => Ok(equiv_spec(env, s1, s2, fuel)?
            && equiv_spec(env, t1, t2, fuel)?
            && equiv_spec(env, e1, e2, fuel)?),
        _ => Ok(false),
    }
}

/// The closure-η comparison: the closure's body with its environment
/// substituted and a fresh argument, against `other` applied to that same
/// fresh argument.
fn eta_expand_compare(
    env: &Env,
    env_binder: Symbol,
    arg_binder: Symbol,
    body: &Term,
    closure_env: &Term,
    other: &Term,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    // Bare code is never equivalent to a closure — applying it would only
    // produce a BareCodeApplication error, so decide here instead.
    if matches!(other, Term::Code { .. }) {
        return Ok(false);
    }
    let fresh = arg_binder.freshen();
    let applied_closure =
        apply_closure_code(env_binder, arg_binder, body, closure_env, &var_sym(fresh));
    let applied_other = Term::App { func: other.clone().rc(), arg: var_sym(fresh).rc() };
    equiv_spec(env, &applied_closure, &applied_other, fuel)
}

/// Compares two bodies under their respective binders by renaming both to
/// a shared fresh variable.
fn compare_under_binder(
    env: &Env,
    x: Symbol,
    left: &Term,
    y: Symbol,
    right: &Term,
    fuel: &mut Fuel,
) -> Result<bool, ReduceError> {
    let fresh = x.freshen();
    let left = subst(left, x, &var_sym(fresh));
    let right = subst(right, y, &var_sym(fresh));
    equiv_spec(env, &left, &right, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn eq(a: &Term, b: &Term) -> bool {
        definitionally_equal(&Env::new(), a, b)
    }

    fn identity_closure() -> Term {
        closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val())
    }

    #[test]
    fn redexes_equal_their_reducts() {
        assert!(eq(&app(identity_closure(), tt()), &tt()));
        assert!(eq(&let_("u", unit_ty(), unit_val(), ff()), &ff()));
        assert!(!eq(&tt(), &ff()));
    }

    #[test]
    fn closure_eta_environment_vs_inlined() {
        // Capturing true in the environment ≡ inlining true in the body.
        let env_ty = product(bool_ty(), unit_ty());
        let captured = closure(
            code("n", env_ty.clone(), "x", unit_ty(), fst(var("n"))),
            pair(tt(), unit_val(), env_ty),
        );
        let inlined = closure(code("n", unit_ty(), "x", unit_ty(), tt()), unit_val());
        assert!(eq(&captured, &inlined));
        let different = closure(code("n", unit_ty(), "x", unit_ty(), ff()), unit_val());
        assert!(!eq(&captured, &different));
    }

    #[test]
    fn closure_eta_against_neutral_terms() {
        // ⟪λ (n : 1, x : Bool). f x, ⟨⟩⟫ ≡ f for an abstract closure f.
        let env = Env::new()
            .with_assumption(cccc_util::Symbol::intern("f"), pi("x", bool_ty(), bool_ty()));
        let wrapper =
            closure(code("n", unit_ty(), "x", bool_ty(), app(var("f"), var("x"))), unit_val());
        assert!(definitionally_equal(&env, &wrapper, &var("f")));
        assert!(definitionally_equal(&env, &var("f"), &wrapper));
        assert!(!definitionally_equal(&env, &wrapper, &var("g")));
    }

    #[test]
    fn alpha_renamed_code_is_equivalent() {
        let a = code("n", unit_ty(), "x", bool_ty(), var("x"));
        let b = code("m", unit_ty(), "y", bool_ty(), var("y"));
        assert!(eq(&a, &b));
        let ct1 = code_ty("n", unit_ty(), "x", bool_ty(), bool_ty());
        let ct2 = code_ty("m", unit_ty(), "y", bool_ty(), bool_ty());
        assert!(eq(&ct1, &ct2));
    }

    #[test]
    fn shadowed_code_binders_stay_alpha_equivalent() {
        // λ (n : 1, n : Bool). n — the body's n is the argument. The term
        // must be definitionally equal to its α-variant with distinct
        // binders, exactly as alpha_eq judges it.
        let shadowing = code("n", unit_ty(), "n", bool_ty(), var("n"));
        let distinct = code("m", unit_ty(), "y", bool_ty(), var("y"));
        assert!(crate::subst::alpha_eq(&shadowing, &distinct));
        assert!(eq(&shadowing, &distinct));
        // Same for code types.
        let shadowing_ty = code_ty("n", unit_ty(), "n", bool_ty(), bool_ty());
        let distinct_ty = code_ty("m", unit_ty(), "y", bool_ty(), bool_ty());
        assert!(eq(&shadowing_ty, &distinct_ty));
        // And the shadowed body is the argument, not the environment: a
        // code returning its (unit) environment is different.
        let env_returner = code("m", unit_ty(), "y", bool_ty(), var("m"));
        assert!(!eq(&shadowing, &env_returner));
    }

    #[test]
    fn code_types_are_not_closure_types() {
        let ct = code_ty("n", unit_ty(), "x", bool_ty(), bool_ty());
        assert!(!eq(&ct, &pi("x", bool_ty(), bool_ty())));
        assert!(!eq(&code("n", unit_ty(), "x", bool_ty(), var("x")), &ct));
        // Closure vs bare code decides false instead of erroring on the
        // would-be bare-code application.
        let bare = code("n", unit_ty(), "x", bool_ty(), var("x"));
        assert!(!eq(&identity_closure(), &bare));
        assert!(!eq(&bare, &identity_closure()));
    }

    #[test]
    fn pi_and_sigma_compare_under_binders() {
        assert!(eq(&pi("x", bool_ty(), var("x")), &pi("y", bool_ty(), var("y"))));
        assert!(!eq(&pi("x", bool_ty(), bool_ty()), &sigma("x", bool_ty(), bool_ty())));
        // Redexes inside types are run.
        let a = sigma("x", bool_ty(), ite(tt(), bool_ty(), star()));
        let b = sigma("x", bool_ty(), bool_ty());
        assert!(eq(&a, &b));
    }

    #[test]
    fn unit_equivalences() {
        assert!(eq(&unit_ty(), &unit_ty()));
        assert!(eq(&unit_val(), &unit_val()));
        assert!(!eq(&unit_ty(), &unit_val()));
        assert!(!eq(&unit_val(), &tt()));
    }

    #[test]
    fn neutral_spines_compare_structurally() {
        let a = app(app(var("f"), tt()), ff());
        let b = app(app(var("f"), tt()), ff());
        let c = app(app(var("f"), ff()), ff());
        assert!(eq(&a, &b));
        assert!(!eq(&a, &c));
        assert!(eq(&fst(var("p")), &fst(var("p"))));
        assert!(!eq(&fst(var("p")), &snd(var("p"))));
    }

    #[test]
    fn delta_definitions_unfold_during_comparison() {
        let env = Env::new().with_definition(cccc_util::Symbol::intern("two"), tt(), bool_ty());
        assert!(definitionally_equal(&env, &var("two"), &tt()));
    }

    #[test]
    fn divergent_comparisons_fail_gracefully() {
        let omega_half = closure(
            code("n", unit_ty(), "x", pi("b", bool_ty(), bool_ty()), app(var("x"), var("x"))),
            unit_val(),
        );
        let omega = app(omega_half.clone(), omega_half);
        assert!(!definitionally_equal(&Env::new(), &omega, &tt()));
    }
}
