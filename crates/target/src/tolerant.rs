//! Keep-going type checking for CC-CC: collect *every* error, not just the
//! first.
//!
//! [`infer_tolerant`] mirrors [`crate::typecheck`] — including the
//! closure-conversion rules `[Code]`, `[T-Code]`, and `[Clo]` — but records
//! each violation as a [`Diagnostic`] and recovers with the error sentinel
//! `<error>` instead of aborting, exactly like the source-side
//! `cccc_source::tolerant`. A type mentioning the sentinel is *poisoned*
//! ([`is_poisoned`], O(1) on the cached free-variable metadata) and unifies
//! with anything, so a single genuine error does not cascade.
//!
//! CC-CC terms are produced by the translator, never parsed, so there is no
//! span side-table on this side: diagnostics carry pretty-printed terms and
//! notes but no source locations.
//!
//! Unlike the strict checker, the tolerant one does **not** use the
//! `[Code]` memo: recovery results must never pollute a cache that the
//! strict checker (or a later clean run) could observe.
//!
//! ## Error codes
//!
//! | Code | Meaning |
//! |---|---|
//! | `E1001` | unbound variable |
//! | `E1002` | the universe `□` has no type |
//! | `E1003` | application of a non-closure (including bare code) |
//! | `E1004` | projection of a non-pair |
//! | `E1005` | term used as a type is not a universe |
//! | `E1006` | pair annotation is not a Σ type |
//! | `E1008` | type mismatch |
//! | `E1009` | normalization ran out of fuel |
//! | `E1010` | open code (rule `[Code]` requires closed code) |
//! | `E1011` | closure component is not code |

use crate::ast::{RcTerm, Term, Universe};
use crate::env::Env;
use crate::equiv::{equiv_with_engine, Engine};
use crate::pretty::term_to_string;
use crate::subst::{free_vars, occurs_free, rename, subst};
use cccc_util::diag::Diagnostic;
use cccc_util::fuel::Fuel;
use cccc_util::symbol::Symbol;

/// The reserved name of the error sentinel (shared spelling with the
/// source language, so poison survives translation boundaries).
pub const ERROR_NAME: &str = "<error>";

/// The interned sentinel symbol.
pub fn error_symbol() -> Symbol {
    Symbol::intern(ERROR_NAME)
}

/// The sentinel term/type `<error>`.
pub fn error_term() -> Term {
    Term::Var(error_symbol())
}

/// True when `term` mentions the error sentinel anywhere.
pub fn is_poisoned(term: &Term) -> bool {
    occurs_free(error_symbol(), term)
}

/// The result of a tolerant run.
#[derive(Clone, Debug)]
pub struct TolerantOutcome {
    /// The inferred type; mentions `<error>` wherever recovery happened.
    pub ty: Term,
    /// All diagnostics, in order of discovery.
    pub diagnostics: Vec<Diagnostic>,
}

impl TolerantOutcome {
    /// True when no error-severity diagnostic was produced.
    pub fn is_clean(&self) -> bool {
        !self.diagnostics.iter().any(Diagnostic::is_error)
    }
}

/// Infers the type of `term` under `env`, collecting every type error.
pub fn infer_tolerant(env: &Env, term: &Term) -> TolerantOutcome {
    infer_tolerant_with_engine(env, term, Engine::Nbe)
}

/// [`infer_tolerant`] through an explicitly chosen equivalence engine.
pub fn infer_tolerant_with_engine(env: &Env, term: &Term, engine: Engine) -> TolerantOutcome {
    let mut checker = Tolerant { fuel: Fuel::default(), engine, diagnostics: Vec::new() };
    let ty = checker.infer(env, term);
    TolerantOutcome { ty, diagnostics: checker.diagnostics }
}

struct Tolerant {
    fuel: Fuel,
    engine: Engine,
    diagnostics: Vec<Diagnostic>,
}

impl Tolerant {
    fn report(&mut self, code: &str, message: String) {
        self.diagnostics.push(Diagnostic::error(message).with_code(code));
    }

    fn head_normal(&mut self, env: &Env, term: &Term) -> Term {
        let result = match self.engine {
            Engine::Nbe => crate::nbe::whnf_nbe(env, term, &mut self.fuel),
            Engine::Step => crate::reduce::whnf(env, term, &mut self.fuel),
        };
        match result {
            Ok(normal) => normal,
            Err(error) => {
                self.report("E1009", error.to_string());
                self.fuel = Fuel::default();
                error_term()
            }
        }
    }

    fn check(&mut self, env: &Env, term: &Term, expected: &Term) -> bool {
        let found = self.infer(env, term);
        if is_poisoned(&found) || is_poisoned(expected) {
            return true;
        }
        match equiv_with_engine(env, &found, expected, &mut self.fuel, self.engine) {
            Ok(true) => true,
            Ok(false) => {
                self.diagnostics.push(
                    Diagnostic::error(format!(
                        "type mismatch: `{}` has type `{}` but `{}` was expected",
                        term_to_string(term),
                        term_to_string(&found),
                        term_to_string(expected),
                    ))
                    .with_code("E1008")
                    .with_note(format!("expected `{}`", term_to_string(expected)))
                    .with_note(format!("found    `{}`", term_to_string(&found))),
                );
                false
            }
            Err(error) => {
                self.report("E1009", error.to_string());
                self.fuel = Fuel::default();
                true
            }
        }
    }

    fn universe(&mut self, env: &Env, term: &Term) -> Option<Universe> {
        if matches!(term, Term::Sort(Universe::Box)) {
            return Some(Universe::Box);
        }
        let ty = self.infer(env, term);
        if is_poisoned(&ty) {
            return None;
        }
        let ty_whnf = self.head_normal(env, &ty);
        match ty_whnf {
            Term::Sort(u) => Some(u),
            _ if is_poisoned(&ty_whnf) => None,
            other => {
                self.report(
                    "E1005",
                    format!(
                        "`{}` is used as a type but has type `{}`, not a universe",
                        term_to_string(term),
                        term_to_string(&other)
                    ),
                );
                None
            }
        }
    }

    /// Tolerant closedness premise of `[Code]`/`[T-Code]`: free variables
    /// other than the sentinel are reported; sentinel leakage is someone
    /// else's already-reported error.
    fn check_closed(&mut self, term: &Term) -> bool {
        let leaked: Vec<Symbol> =
            free_vars(term).into_iter().filter(|s| *s != error_symbol()).collect();
        if leaked.is_empty() {
            return true;
        }
        self.report(
            "E1010",
            format!(
                "rule [Code] requires closed code, but `{}` mentions {}",
                term_to_string(term),
                leaked.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ")
            ),
        );
        false
    }

    fn infer(&mut self, env: &Env, term: &Term) -> Term {
        match term {
            Term::Var(x) if *x == error_symbol() => error_term(),
            Term::Var(x) => match env.lookup_type(*x) {
                Some(ty) => (**ty).clone(),
                None => {
                    self.report("E1001", format!("unbound variable `{x}`"));
                    error_term()
                }
            },
            Term::Sort(Universe::Star) => Term::Sort(Universe::Box),
            Term::Sort(Universe::Box) => {
                self.report("E1002", "the universe □ has no type".to_string());
                error_term()
            }
            Term::Unit => Term::Sort(Universe::Star),
            Term::UnitVal => Term::Unit,
            Term::BoolTy => Term::Sort(Universe::Star),
            Term::BoolLit(_) => Term::BoolTy,
            Term::If { scrutinee, then_branch, else_branch } => {
                self.check(env, scrutinee, &Term::BoolTy);
                let then_ty = self.infer(env, then_branch);
                if is_poisoned(&then_ty) {
                    self.infer(env, else_branch);
                } else {
                    self.check(env, else_branch, &then_ty);
                }
                then_ty
            }
            Term::Pi { binder, domain, codomain } => {
                self.universe(env, domain);
                let inner = env.with_assumption(*binder, (**domain).clone());
                match self.universe(&inner, codomain) {
                    Some(u) => Term::Sort(u),
                    None => error_term(),
                }
            }
            Term::Sigma { binder, first, second } => {
                let first_universe = self.universe(env, first);
                let inner = env.with_assumption(*binder, (**first).clone());
                let second_universe = self.universe(&inner, second);
                match (first_universe, second_universe) {
                    (Some(Universe::Star), Some(Universe::Star)) => Term::Sort(Universe::Star),
                    (Some(_), Some(_)) => Term::Sort(Universe::Box),
                    _ => error_term(),
                }
            }
            // [Code], checked in the empty environment, without the memo.
            Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
                self.check_closed(term);
                let empty = Env::new();
                self.universe(&empty, env_ty);
                let with_env = empty.with_assumption(*env_binder, (**env_ty).clone());
                self.universe(&with_env, arg_ty);
                let with_arg = with_env.with_assumption(*arg_binder, (**arg_ty).clone());
                let body_ty = self.infer(&with_arg, body);
                if !is_poisoned(&body_ty) {
                    self.universe(&with_arg, &body_ty);
                }
                Term::CodeTy {
                    env_binder: *env_binder,
                    env_ty: env_ty.clone(),
                    arg_binder: *arg_binder,
                    arg_ty: arg_ty.clone(),
                    result: body_ty.rc(),
                }
            }
            // [T-Code]
            Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
                self.check_closed(term);
                let empty = Env::new();
                self.universe(&empty, env_ty);
                let with_env = empty.with_assumption(*env_binder, (**env_ty).clone());
                self.universe(&with_env, arg_ty);
                let with_arg = with_env.with_assumption(*arg_binder, (**arg_ty).clone());
                match self.universe(&with_arg, result) {
                    Some(u) => Term::Sort(u),
                    None => error_term(),
                }
            }
            // [Clo]
            Term::Closure { code, env: closure_env } => {
                let code_ty = self.infer(env, code);
                if is_poisoned(&code_ty) {
                    self.infer(env, closure_env);
                    return error_term();
                }
                let code_ty_whnf = self.head_normal(env, &code_ty);
                match code_ty_whnf {
                    Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
                        self.check(env, closure_env, &env_ty);
                        let domain = subst(&arg_ty, env_binder, closure_env);
                        let (binder, codomain) = if arg_binder == env_binder {
                            (arg_binder, (*result).clone())
                        } else if occurs_free(arg_binder, closure_env) {
                            let fresh = arg_binder.freshen();
                            let renamed = rename(&result, arg_binder, fresh);
                            (fresh, subst(&renamed, env_binder, closure_env))
                        } else {
                            (arg_binder, subst(&result, env_binder, closure_env))
                        };
                        Term::Pi { binder, domain: domain.rc(), codomain: codomain.rc() }
                    }
                    _ if is_poisoned(&code_ty_whnf) => {
                        self.infer(env, closure_env);
                        error_term()
                    }
                    other => {
                        self.report(
                            "E1011",
                            format!(
                                "closure component `{}` has type `{}`, not a code type",
                                term_to_string(code),
                                term_to_string(&other)
                            ),
                        );
                        self.infer(env, closure_env);
                        error_term()
                    }
                }
            }
            Term::App { func, arg } => {
                let func_ty = self.infer(env, func);
                if is_poisoned(&func_ty) {
                    self.infer(env, arg);
                    return error_term();
                }
                let func_ty_whnf = self.head_normal(env, &func_ty);
                match func_ty_whnf {
                    Term::Pi { binder, domain, codomain } => {
                        self.check(env, arg, &domain);
                        subst(&codomain, binder, arg)
                    }
                    _ if is_poisoned(&func_ty_whnf) => {
                        self.infer(env, arg);
                        error_term()
                    }
                    other => {
                        self.report(
                            "E1003",
                            format!(
                                "`{}` is applied but has non-closure type `{}`",
                                term_to_string(func),
                                term_to_string(&other)
                            ),
                        );
                        self.infer(env, arg);
                        error_term()
                    }
                }
            }
            Term::Let { binder, annotation, bound, body } => {
                let annotation_ok = self.universe(env, annotation).is_some();
                let bound_ok = annotation_ok && self.check(env, bound, annotation);
                if bound_ok && !is_poisoned(bound) && !is_poisoned(annotation) {
                    let inner =
                        env.with_definition(*binder, (**bound).clone(), (**annotation).clone());
                    let body_ty = self.infer(&inner, body);
                    subst(&body_ty, *binder, bound)
                } else {
                    let assumed = if annotation_ok { (**annotation).clone() } else { error_term() };
                    let inner = env.with_assumption(*binder, assumed);
                    let body_ty = self.infer(&inner, body);
                    subst(&body_ty, *binder, &error_term())
                }
            }
            Term::Pair { first, second, annotation } => {
                self.universe(env, annotation);
                if is_poisoned(annotation) {
                    self.infer(env, first);
                    self.infer(env, second);
                    return error_term();
                }
                let annotation_whnf = self.head_normal(env, annotation);
                match annotation_whnf {
                    Term::Sigma { binder, first: first_ty, second: second_ty } => {
                        self.check(env, first, &first_ty);
                        let expected_second = subst(&second_ty, binder, first);
                        self.check(env, second, &expected_second);
                        (**annotation).clone()
                    }
                    _ if is_poisoned(&annotation_whnf) => {
                        self.infer(env, first);
                        self.infer(env, second);
                        error_term()
                    }
                    _ => {
                        self.report(
                            "E1006",
                            format!(
                                "pair annotation `{}` is not a Σ type",
                                term_to_string(annotation)
                            ),
                        );
                        self.infer(env, first);
                        self.infer(env, second);
                        error_term()
                    }
                }
            }
            Term::Fst(e) => match self.projection_sigma(env, e) {
                Some((_, first_ty, _)) => (*first_ty).clone(),
                None => error_term(),
            },
            Term::Snd(e) => match self.projection_sigma(env, e) {
                Some((binder, _, second_ty)) => subst(&second_ty, binder, &Term::Fst(e.clone())),
                None => error_term(),
            },
        }
    }

    fn projection_sigma(&mut self, env: &Env, e: &RcTerm) -> Option<(Symbol, RcTerm, RcTerm)> {
        let e_ty = self.infer(env, e);
        if is_poisoned(&e_ty) {
            return None;
        }
        let e_ty_whnf = self.head_normal(env, &e_ty);
        match e_ty_whnf {
            Term::Sigma { binder, first, second } => Some((binder, first, second)),
            _ if is_poisoned(&e_ty_whnf) => None,
            other => {
                self.report(
                    "E1004",
                    format!(
                        "`{}` is projected but has non-pair type `{}`",
                        term_to_string(e),
                        term_to_string(&other)
                    ),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::equiv::definitionally_equal;
    use crate::typecheck::infer;

    fn codes(outcome: &TolerantOutcome) -> Vec<&str> {
        outcome.diagnostics.iter().filter_map(|d| d.code.as_deref()).collect()
    }

    fn id_code() -> Term {
        code("n", unit_ty(), "x", bool_ty(), var("x"))
    }

    #[test]
    fn well_typed_closure_agrees_with_strict_checker() {
        let env = Env::new();
        let clo = closure(id_code(), unit_val());
        let strict = infer(&env, &clo).expect("closure is well-typed");
        let tolerant = infer_tolerant(&env, &clo);
        assert!(tolerant.diagnostics.is_empty(), "{:?}", tolerant.diagnostics);
        assert!(definitionally_equal(&env, &tolerant.ty, &strict));
    }

    #[test]
    fn open_code_reports_e1010_and_continues() {
        // Code mentioning ambient `y` is open; applying the closure with a
        // mismatched argument is a *second* error.
        let open = code("n", unit_ty(), "x", bool_ty(), var("y"));
        let env = Env::new().with_assumption(Symbol::intern("y"), bool_ty());
        let t = app(closure(open, unit_val()), star());
        let outcome = infer_tolerant(&env, &t);
        let found = codes(&outcome);
        assert!(found.contains(&"E1010"), "{found:?}");
    }

    #[test]
    fn bare_code_application_reports_e1003() {
        let outcome = infer_tolerant(&Env::new(), &app(id_code(), tt()));
        assert_eq!(codes(&outcome), vec!["E1003"]);
    }

    #[test]
    fn non_code_closure_component_reports_e1011() {
        let outcome = infer_tolerant(&Env::new(), &closure(tt(), unit_val()));
        assert_eq!(codes(&outcome), vec!["E1011"]);
    }

    #[test]
    fn multiple_errors_accumulate() {
        // Unbound variable in the closure environment AND a mismatched
        // application argument.
        let t = app(closure(id_code(), var("ghost")), star());
        let outcome = infer_tolerant(&Env::new(), &t);
        let found = codes(&outcome);
        assert!(found.contains(&"E1001"), "{found:?}");
        // ghost poisons the env check, but the closure type is still known,
        // so the bad argument is still caught.
        assert!(found.contains(&"E1008"), "{found:?}");
    }

    #[test]
    fn poisoned_types_do_not_cascade() {
        let outcome = infer_tolerant(&Env::new(), &ite(var("ghost"), tt(), ff()));
        assert_eq!(codes(&outcome), vec!["E1001"]);
    }
}
