//! Wire codec for CC-CC terms: flatten to / re-intern from a
//! [`WireTerm`] word buffer.
//!
//! The CC-CC counterpart of `cccc_source::wire`: compiled artifacts
//! (translated terms and their types) cross worker-thread boundaries in
//! the parallel module driver as these buffers, and the artifact cache
//! keys no-op rebuilds on their [`fingerprint`]s. Shared subterms —
//! ubiquitous after closure conversion, which mass-produces identical
//! code blocks — are written once and back-referenced, so buffers are
//! linear in the hash-consed DAG.

use crate::ast::{RcTerm, Term, Universe};
use cccc_util::intern::{FxHashMap, NodeId};
use cccc_util::symbol::Symbol;
use cccc_util::wire::{Fingerprint, WireError, WireReader, WireTerm, WireWriter};

const TAG_BACKREF: u64 = 0;
const TAG_VAR: u64 = 1;
const TAG_STAR: u64 = 2;
const TAG_BOX: u64 = 3;
const TAG_PI: u64 = 4;
const TAG_CODE: u64 = 5;
const TAG_CODE_TY: u64 = 6;
const TAG_CLOSURE: u64 = 7;
const TAG_APP: u64 = 8;
const TAG_LET: u64 = 9;
const TAG_SIGMA: u64 = 10;
const TAG_PAIR: u64 = 11;
const TAG_FST: u64 = 12;
const TAG_SND: u64 = 13;
const TAG_UNIT: u64 = 14;
const TAG_UNIT_VAL: u64 = 15;
const TAG_BOOL_TY: u64 = 16;
const TAG_BOOL_LIT: u64 = 17;
const TAG_IF: u64 = 18;

/// Encodes a CC-CC term into a thread-portable wire buffer.
pub fn encode(term: &Term) -> WireTerm {
    let mut writer = WireWriter::new();
    let mut seen: FxHashMap<NodeId, u64> = FxHashMap::default();
    encode_head(term, &mut writer, &mut seen);
    writer.finish()
}

/// Encodes a CC-CC term into a *process*-portable wire buffer: symbols
/// travel through a relocatable symbol table
/// ([`cccc_util::wire::WireWriter::portable`]) instead of as raw
/// interner parts, so the buffer can be persisted to disk and decoded by
/// a later process. [`decode`] handles both formats transparently.
pub fn encode_portable(term: &Term) -> WireTerm {
    let mut writer = WireWriter::portable();
    let mut seen: FxHashMap<NodeId, u64> = FxHashMap::default();
    encode_head(term, &mut writer, &mut seen);
    writer.finish()
}

/// The process-stable content fingerprint of a term (the fingerprint of
/// its wire encoding).
pub fn fingerprint(term: &Term) -> Fingerprint {
    encode(term).fingerprint()
}

/// An α-invariant, *process-stable* content fingerprint — the CC-CC
/// counterpart of `cccc_source::wire::fingerprint_alpha`. Binders are
/// numbered by a de Bruijn-style scope walk instead of hashed by name,
/// so α-equivalent artifacts always agree even though closure conversion
/// freshens its environment binders differently on every recompile; free
/// variables contribute their textual names (plus generated subscript),
/// so the fingerprint is stable across processes. The query layer keys a
/// unit's *output* on this: a recompile that produced an α-equivalent
/// artifact must early-cut-off every downstream phase.
pub fn fingerprint_alpha(term: &Term) -> Fingerprint {
    let mut writer = WireWriter::new();
    let mut scope: Vec<Symbol> = Vec::new();
    encode_alpha(term, &mut writer, &mut scope);
    writer.finish().fingerprint()
}

/// Writes an occurrence of `x`: its scope depth when bound (counted from
/// the innermost binder), its base name plus generated-subscript when
/// free. The subscript is a separate word — not rendered into the name —
/// so a plain symbol whose name contains `$` can never alias a generated
/// symbol.
fn push_alpha_var(x: Symbol, writer: &mut WireWriter, scope: &[Symbol]) {
    match scope.iter().rev().position(|&b| b == x) {
        Some(depth) => {
            writer.push(1);
            writer.push(depth as u64);
        }
        None => {
            writer.push(0);
            writer.push_str(x.base_name());
            writer.push(x.disambiguator());
        }
    }
}

/// The α-invariant encoding: same tags as [`encode`], but no subterm
/// sharing (back-references would be scope-sensitive) and binders
/// contribute only their positions. `Code`/`CodeTy` bind the environment
/// binder *and* the argument binder in the body/result — both are pushed
/// (environment first, matching the field order the typechecker scopes
/// them in), with the annotations encoded outside.
fn encode_alpha(term: &Term, writer: &mut WireWriter, scope: &mut Vec<Symbol>) {
    match term {
        Term::Var(x) => {
            writer.push(TAG_VAR);
            push_alpha_var(*x, writer, scope);
        }
        Term::Sort(Universe::Star) => writer.push(TAG_STAR),
        Term::Sort(Universe::Box) => writer.push(TAG_BOX),
        Term::Pi { binder, domain, codomain } => {
            writer.push(TAG_PI);
            encode_alpha(domain, writer, scope);
            scope.push(*binder);
            encode_alpha(codomain, writer, scope);
            scope.pop();
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            writer.push(TAG_CODE);
            encode_alpha(env_ty, writer, scope);
            scope.push(*env_binder);
            encode_alpha(arg_ty, writer, scope);
            scope.push(*arg_binder);
            encode_alpha(body, writer, scope);
            scope.pop();
            scope.pop();
        }
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            writer.push(TAG_CODE_TY);
            encode_alpha(env_ty, writer, scope);
            scope.push(*env_binder);
            encode_alpha(arg_ty, writer, scope);
            scope.push(*arg_binder);
            encode_alpha(result, writer, scope);
            scope.pop();
            scope.pop();
        }
        Term::Closure { code, env } => {
            writer.push(TAG_CLOSURE);
            encode_alpha(code, writer, scope);
            encode_alpha(env, writer, scope);
        }
        Term::App { func, arg } => {
            writer.push(TAG_APP);
            encode_alpha(func, writer, scope);
            encode_alpha(arg, writer, scope);
        }
        Term::Let { binder, annotation, bound, body } => {
            writer.push(TAG_LET);
            encode_alpha(annotation, writer, scope);
            encode_alpha(bound, writer, scope);
            scope.push(*binder);
            encode_alpha(body, writer, scope);
            scope.pop();
        }
        Term::Sigma { binder, first, second } => {
            writer.push(TAG_SIGMA);
            encode_alpha(first, writer, scope);
            scope.push(*binder);
            encode_alpha(second, writer, scope);
            scope.pop();
        }
        Term::Pair { first, second, annotation } => {
            writer.push(TAG_PAIR);
            encode_alpha(first, writer, scope);
            encode_alpha(second, writer, scope);
            encode_alpha(annotation, writer, scope);
        }
        Term::Fst(e) => {
            writer.push(TAG_FST);
            encode_alpha(e, writer, scope);
        }
        Term::Snd(e) => {
            writer.push(TAG_SND);
            encode_alpha(e, writer, scope);
        }
        Term::Unit => writer.push(TAG_UNIT),
        Term::UnitVal => writer.push(TAG_UNIT_VAL),
        Term::BoolTy => writer.push(TAG_BOOL_TY),
        Term::BoolLit(b) => {
            writer.push(TAG_BOOL_LIT);
            writer.push(u64::from(*b));
        }
        Term::If { scrutinee, then_branch, else_branch } => {
            writer.push(TAG_IF);
            encode_alpha(scrutinee, writer, scope);
            encode_alpha(then_branch, writer, scope);
            encode_alpha(else_branch, writer, scope);
        }
    }
}

/// Decodes a wire buffer produced by [`encode`] or [`encode_portable`],
/// re-interning every node into the current thread's CC-CC interner.
/// For a portable buffer the embedded symbol table is re-interned first
/// (plain names to identical symbols, generated names to consistently
/// fresh ones), so the result is α-equivalent to the encoded term even
/// in a different process.
///
/// # Errors
///
/// Returns a [`WireError`] if the buffer is corrupt (truncated, unknown
/// tag, bad back-reference, bad symbol table, or trailing words).
pub fn decode(wire: &WireTerm) -> Result<Term, WireError> {
    let mut reader = wire.term_reader()?;
    let mut nodes: Vec<RcTerm> = Vec::new();
    let term = decode_head(&mut reader, &mut nodes)?;
    reader.expect_exhausted()?;
    Ok(term)
}

fn encode_node(node: &RcTerm, writer: &mut WireWriter, seen: &mut FxHashMap<NodeId, u64>) {
    if let Some(&index) = seen.get(&node.id()) {
        writer.push(TAG_BACKREF);
        writer.push(index);
        return;
    }
    encode_head(node, writer, seen);
    let index = seen.len() as u64;
    seen.insert(node.id(), index);
}

fn encode_head(term: &Term, writer: &mut WireWriter, seen: &mut FxHashMap<NodeId, u64>) {
    match term {
        Term::Var(x) => {
            writer.push(TAG_VAR);
            writer.push_symbol(*x);
        }
        Term::Sort(Universe::Star) => writer.push(TAG_STAR),
        Term::Sort(Universe::Box) => writer.push(TAG_BOX),
        Term::Pi { binder, domain, codomain } => {
            writer.push(TAG_PI);
            writer.push_symbol(*binder);
            encode_node(domain, writer, seen);
            encode_node(codomain, writer, seen);
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            writer.push(TAG_CODE);
            writer.push_symbol(*env_binder);
            writer.push_symbol(*arg_binder);
            encode_node(env_ty, writer, seen);
            encode_node(arg_ty, writer, seen);
            encode_node(body, writer, seen);
        }
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            writer.push(TAG_CODE_TY);
            writer.push_symbol(*env_binder);
            writer.push_symbol(*arg_binder);
            encode_node(env_ty, writer, seen);
            encode_node(arg_ty, writer, seen);
            encode_node(result, writer, seen);
        }
        Term::Closure { code, env } => {
            writer.push(TAG_CLOSURE);
            encode_node(code, writer, seen);
            encode_node(env, writer, seen);
        }
        Term::App { func, arg } => {
            writer.push(TAG_APP);
            encode_node(func, writer, seen);
            encode_node(arg, writer, seen);
        }
        Term::Let { binder, annotation, bound, body } => {
            writer.push(TAG_LET);
            writer.push_symbol(*binder);
            encode_node(annotation, writer, seen);
            encode_node(bound, writer, seen);
            encode_node(body, writer, seen);
        }
        Term::Sigma { binder, first, second } => {
            writer.push(TAG_SIGMA);
            writer.push_symbol(*binder);
            encode_node(first, writer, seen);
            encode_node(second, writer, seen);
        }
        Term::Pair { first, second, annotation } => {
            writer.push(TAG_PAIR);
            encode_node(first, writer, seen);
            encode_node(second, writer, seen);
            encode_node(annotation, writer, seen);
        }
        Term::Fst(e) => {
            writer.push(TAG_FST);
            encode_node(e, writer, seen);
        }
        Term::Snd(e) => {
            writer.push(TAG_SND);
            encode_node(e, writer, seen);
        }
        Term::Unit => writer.push(TAG_UNIT),
        Term::UnitVal => writer.push(TAG_UNIT_VAL),
        Term::BoolTy => writer.push(TAG_BOOL_TY),
        Term::BoolLit(b) => {
            writer.push(TAG_BOOL_LIT);
            writer.push(u64::from(*b));
        }
        Term::If { scrutinee, then_branch, else_branch } => {
            writer.push(TAG_IF);
            encode_node(scrutinee, writer, seen);
            encode_node(then_branch, writer, seen);
            encode_node(else_branch, writer, seen);
        }
    }
}

fn decode_node(reader: &mut WireReader<'_>, nodes: &mut Vec<RcTerm>) -> Result<RcTerm, WireError> {
    if reader.peek() == Some(TAG_BACKREF) {
        reader.next_word()?;
        let index = reader.next_word()?;
        return nodes.get(index as usize).cloned().ok_or(WireError::BadBackref(index));
    }
    let term = decode_head(reader, nodes)?;
    let node = term.rc();
    nodes.push(node.clone());
    Ok(node)
}

fn decode_head(reader: &mut WireReader<'_>, nodes: &mut Vec<RcTerm>) -> Result<Term, WireError> {
    let tag = reader.next_word()?;
    Ok(match tag {
        TAG_VAR => Term::Var(reader.next_symbol()?),
        TAG_STAR => Term::Sort(Universe::Star),
        TAG_BOX => Term::Sort(Universe::Box),
        TAG_PI => {
            let binder = reader.next_symbol()?;
            let domain = decode_node(reader, nodes)?;
            let codomain = decode_node(reader, nodes)?;
            Term::Pi { binder, domain, codomain }
        }
        TAG_CODE => {
            let env_binder = reader.next_symbol()?;
            let arg_binder = reader.next_symbol()?;
            let env_ty = decode_node(reader, nodes)?;
            let arg_ty = decode_node(reader, nodes)?;
            let body = decode_node(reader, nodes)?;
            Term::Code { env_binder, env_ty, arg_binder, arg_ty, body }
        }
        TAG_CODE_TY => {
            let env_binder = reader.next_symbol()?;
            let arg_binder = reader.next_symbol()?;
            let env_ty = decode_node(reader, nodes)?;
            let arg_ty = decode_node(reader, nodes)?;
            let result = decode_node(reader, nodes)?;
            Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result }
        }
        TAG_CLOSURE => {
            let code = decode_node(reader, nodes)?;
            let env = decode_node(reader, nodes)?;
            Term::Closure { code, env }
        }
        TAG_APP => {
            let func = decode_node(reader, nodes)?;
            let arg = decode_node(reader, nodes)?;
            Term::App { func, arg }
        }
        TAG_LET => {
            let binder = reader.next_symbol()?;
            let annotation = decode_node(reader, nodes)?;
            let bound = decode_node(reader, nodes)?;
            let body = decode_node(reader, nodes)?;
            Term::Let { binder, annotation, bound, body }
        }
        TAG_SIGMA => {
            let binder = reader.next_symbol()?;
            let first = decode_node(reader, nodes)?;
            let second = decode_node(reader, nodes)?;
            Term::Sigma { binder, first, second }
        }
        TAG_PAIR => {
            let first = decode_node(reader, nodes)?;
            let second = decode_node(reader, nodes)?;
            let annotation = decode_node(reader, nodes)?;
            Term::Pair { first, second, annotation }
        }
        TAG_FST => Term::Fst(decode_node(reader, nodes)?),
        TAG_SND => Term::Snd(decode_node(reader, nodes)?),
        TAG_UNIT => Term::Unit,
        TAG_UNIT_VAL => Term::UnitVal,
        TAG_BOOL_TY => Term::BoolTy,
        TAG_BOOL_LIT => Term::BoolLit(reader.next_word()? != 0),
        TAG_IF => {
            let scrutinee = decode_node(reader, nodes)?;
            let then_branch = decode_node(reader, nodes)?;
            let else_branch = decode_node(reader, nodes)?;
            Term::If { scrutinee, then_branch, else_branch }
        }
        other => return Err(WireError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder as t;

    fn round_trip(term: &Term) {
        let wire = encode(term);
        let decoded = decode(&wire).expect("decodes");
        assert!(
            term.clone().rc().same(&decoded.clone().rc()),
            "round trip changed term:\n  original: {term}\n  decoded:  {decoded}"
        );
        assert_eq!(wire.fingerprint(), encode(&decoded).fingerprint());
    }

    #[test]
    fn closure_forms_round_trip() {
        let code = t::code("n", t::unit_ty(), "x", t::bool_ty(), t::var("x"));
        round_trip(&code);
        round_trip(&t::closure(code.clone(), t::unit_val()));
        round_trip(&t::code_ty("n", t::unit_ty(), "x", t::bool_ty(), t::bool_ty()));
        round_trip(&t::app(t::closure(code, t::unit_val()), t::tt()));
    }

    #[test]
    fn translated_programs_round_trip_with_sharing() {
        // Translation output is the DAG-heavy case: hash-consed duplicate
        // code blocks must back-reference rather than re-serialize.
        let duplicated = {
            let code = t::code("n", t::unit_ty(), "x", t::bool_ty(), t::var("x"));
            let clo = t::closure(code, t::unit_val());
            t::pair(clo.clone(), clo, t::sigma("_p", t::bool_ty(), t::bool_ty()))
        };
        let wire = encode(&duplicated);
        round_trip(&duplicated);
        let single = encode(&t::closure(
            t::code("n", t::unit_ty(), "x", t::bool_ty(), t::var("x")),
            t::unit_val(),
        ));
        assert!(wire.len() < 2 * single.len());
    }

    #[test]
    fn unit_forms_round_trip() {
        round_trip(&t::unit_ty());
        round_trip(&t::unit_val());
        round_trip(&t::ite(t::tt(), t::unit_val(), t::unit_val()));
        round_trip(&t::let_("u", t::unit_ty(), t::unit_val(), t::var("u")));
        round_trip(&t::fst(t::var("p")));
        round_trip(&t::snd(t::var("p")));
        round_trip(&t::pi("A", t::star(), t::var("A")));
        round_trip(&t::boxu());
    }

    #[test]
    fn fingerprints_distinguish_terms() {
        assert_ne!(fingerprint(&t::tt()), fingerprint(&t::ff()));
        assert_ne!(fingerprint(&t::unit_ty()), fingerprint(&t::unit_val()));
    }

    #[test]
    fn alpha_fingerprints_quotient_binder_names() {
        // The closure-conversion case: the same code block with differently
        // freshened env/arg binders must fingerprint identically …
        let a = t::code("n", t::unit_ty(), "x", t::bool_ty(), t::var("x"));
        let b = t::code("m", t::unit_ty(), "y", t::bool_ty(), t::var("y"));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint_alpha(&a), fingerprint_alpha(&b));
        // … the env binder scopes over the body too …
        let env_a = t::code("n", t::bool_ty(), "x", t::bool_ty(), t::var("n"));
        let env_b = t::code("m", t::bool_ty(), "y", t::bool_ty(), t::var("m"));
        let arg_ref = t::code("m", t::bool_ty(), "y", t::bool_ty(), t::var("y"));
        assert_eq!(fingerprint_alpha(&env_a), fingerprint_alpha(&env_b));
        assert_ne!(fingerprint_alpha(&env_a), fingerprint_alpha(&arg_ref));
        // … code types are quotiented the same way …
        let ty_a = t::code_ty("n", t::unit_ty(), "x", t::bool_ty(), t::bool_ty());
        let ty_b = t::code_ty("e", t::unit_ty(), "v", t::bool_ty(), t::bool_ty());
        assert_eq!(fingerprint_alpha(&ty_a), fingerprint_alpha(&ty_b));
        // … free variables still count by name …
        assert_ne!(fingerprint_alpha(&t::var("p")), fingerprint_alpha(&t::var("q")));
        // … and Π/Σ/let binders are quotiented too.
        let pi_a = t::pi("A", t::star(), t::var("A"));
        let pi_b = t::pi("B", t::star(), t::var("B"));
        assert_eq!(fingerprint_alpha(&pi_a), fingerprint_alpha(&pi_b));
        let let_a = t::let_("u", t::unit_ty(), t::unit_val(), t::var("u"));
        let let_b = t::let_("w", t::unit_ty(), t::unit_val(), t::var("w"));
        assert_eq!(fingerprint_alpha(&let_a), fingerprint_alpha(&let_b));
    }

    #[test]
    fn alpha_fingerprints_hash_free_variables_by_name() {
        // A free plain symbol and a free generated symbol with the same
        // base name must not collide …
        let plain = t::var("w");
        let generated = cccc_util::symbol::Symbol::fresh("w");
        assert_ne!(fingerprint_alpha(&plain), fingerprint_alpha(&Term::Var(generated)));
        // … two interned copies of the same name agree …
        assert_eq!(fingerprint_alpha(&t::var("w")), fingerprint_alpha(&plain));
        // … and a plain symbol textually equal to a generated symbol's
        // display form does not alias it.
        let aliased = t::var(&format!("w${}", generated.disambiguator()));
        assert_ne!(fingerprint_alpha(&aliased), fingerprint_alpha(&Term::Var(generated)));
    }

    #[test]
    fn alpha_fingerprints_are_stable_across_generated_binder_refreshes() {
        // Encode portably, decode (re-freshening generated binders), and
        // the α-fingerprint must not move — the property the query layer's
        // early cutoff rests on.
        let env_binder = cccc_util::symbol::Symbol::fresh("env");
        let generated =
            t::code_sym(env_binder, t::unit_ty(), "y".into(), t::bool_ty(), t::var("y"));
        let decoded = decode(&encode_portable(&generated)).unwrap();
        assert_ne!(fingerprint(&generated), fingerprint(&decoded));
        assert_eq!(fingerprint_alpha(&generated), fingerprint_alpha(&decoded));
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        use cccc_util::wire::WireWriter;
        let mut w = WireWriter::new();
        w.push(77);
        assert!(matches!(decode(&w.finish()), Err(WireError::BadTag(77))));
    }

    #[test]
    fn portable_buffers_round_trip() {
        // Closure-converted shapes with only plain names relocate to
        // structurally identical terms …
        let code = t::code("n", t::unit_ty(), "x", t::bool_ty(), t::var("x"));
        let program = t::app(t::closure(code, t::unit_val()), t::tt());
        let wire = encode_portable(&program);
        assert!(wire.is_portable());
        let decoded = decode(&wire).expect("portable buffer decodes");
        assert!(program.clone().rc().same(&decoded.clone().rc()));

        // … and bound generated binders (the environment parameters
        // closure conversion freshens) come back α-equivalent.
        let env_binder = cccc_util::symbol::Symbol::fresh("env");
        let generated =
            t::code_sym(env_binder, t::unit_ty(), "y".into(), t::bool_ty(), t::var("y"));
        let decoded = decode(&encode_portable(&generated)).unwrap();
        assert!(crate::subst::alpha_eq(&generated, &decoded));
    }
}
