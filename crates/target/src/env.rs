//! Typing environments `Γ` for CC-CC and their well-formedness (Figure 7).
//!
//! Identical in structure to the CC environments: an ordered telescope of
//! assumptions `x : A` and definitions `x = e : A`. Note that per rule
//! `[Code]`, the code fragments of a program never see the ambient `Γ` —
//! they are checked in the empty environment — but closures, environments,
//! and the surrounding program do.

use crate::ast::{RcTerm, Term};
use cccc_util::intern::mix_env_entry;
use cccc_util::symbol::Symbol;
use std::fmt;

/// One entry of a typing environment.
#[derive(Clone, Debug)]
pub enum Decl {
    /// An assumption `x : A`.
    Assumption {
        /// The variable.
        name: Symbol,
        /// Its type.
        ty: RcTerm,
    },
    /// A definition `x = e : A`.
    Definition {
        /// The variable.
        name: Symbol,
        /// Its type.
        ty: RcTerm,
        /// Its definition, unfolded by δ-reduction.
        term: RcTerm,
    },
}

impl Decl {
    /// The variable bound by this entry.
    pub fn name(&self) -> Symbol {
        match self {
            Decl::Assumption { name, .. } | Decl::Definition { name, .. } => *name,
        }
    }

    /// The declared type of the entry.
    pub fn ty(&self) -> &RcTerm {
        match self {
            Decl::Assumption { ty, .. } | Decl::Definition { ty, .. } => ty,
        }
    }

    /// The definition, if this is a `x = e : A` entry.
    pub fn definition(&self) -> Option<&RcTerm> {
        match self {
            Decl::Assumption { .. } => None,
            Decl::Definition { term, .. } => Some(term),
        }
    }
}

/// A CC-CC typing environment `Γ`.
///
/// Every environment carries a content *fingerprint* — a hash of its entry
/// sequence with terms identified by their interned node ids — maintained
/// incrementally on extension. Two environments with identical content have
/// identical fingerprints, which is what keys the memoized conversion
/// checker in [`crate::equiv`].
#[derive(Clone, Debug, Default)]
pub struct Env {
    decls: Vec<Decl>,
    fingerprint: u64,
}

/// Folds one declaration into a fingerprint.
fn mix_decl(fingerprint: u64, decl: &Decl) -> u64 {
    match decl {
        Decl::Assumption { name, ty } => mix_env_entry(fingerprint, *name, ty.id(), None),
        Decl::Definition { name, ty, term } => {
            mix_env_entry(fingerprint, *name, ty.id(), Some(term.id()))
        }
    }
}

/// Recomputes a fingerprint from scratch (used by the bulk constructors).
fn fingerprint_of(decls: &[Decl]) -> u64 {
    decls.iter().fold(0, mix_decl)
}

impl Env {
    /// The empty environment `·` — the only environment rule `[Code]`
    /// checks code under.
    pub fn new() -> Env {
        Env { decls: Vec::new(), fingerprint: 0 }
    }

    /// The environment's content fingerprint: a hash of the entry sequence
    /// with terms identified by interned node id. Environments with equal
    /// content always agree; unequal content collides only with hash
    /// probability. Used as the environment component of conversion memo
    /// keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Returns a new environment extended with the assumption `name : ty`.
    pub fn with_assumption(&self, name: Symbol, ty: Term) -> Env {
        let mut next = self.clone();
        next.push_assumption(name, ty);
        next
    }

    /// Returns a new environment extended with the definition
    /// `name = term : ty`.
    pub fn with_definition(&self, name: Symbol, term: Term, ty: Term) -> Env {
        let mut next = self.clone();
        next.push_definition(name, term, ty);
        next
    }

    /// Appends the assumption `name : ty` in place.
    pub fn push_assumption(&mut self, name: Symbol, ty: Term) {
        let decl = Decl::Assumption { name, ty: ty.rc() };
        self.fingerprint = mix_decl(self.fingerprint, &decl);
        self.decls.push(decl);
    }

    /// Appends the definition `name = term : ty` in place.
    pub fn push_definition(&mut self, name: Symbol, term: Term, ty: Term) {
        let decl = Decl::Definition { name, ty: ty.rc(), term: term.rc() };
        self.fingerprint = mix_decl(self.fingerprint, &decl);
        self.decls.push(decl);
    }

    /// Looks up the most recent entry for `name`.
    pub fn lookup(&self, name: Symbol) -> Option<&Decl> {
        self.decls.iter().rev().find(|d| d.name() == name)
    }

    /// Looks up the declared type of `name`.
    pub fn lookup_type(&self, name: Symbol) -> Option<&RcTerm> {
        self.lookup(name).map(Decl::ty)
    }

    /// Looks up the definition of `name`, if it has one (used by
    /// δ-reduction).
    pub fn lookup_definition(&self, name: Symbol) -> Option<&RcTerm> {
        self.lookup(name).and_then(Decl::definition)
    }

    /// Whether `name` is bound in the environment.
    pub fn contains(&self, name: Symbol) -> bool {
        self.lookup(name).is_some()
    }

    /// Iterates over the entries from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Decl> {
        self.decls.iter()
    }

    /// The names bound in the environment, oldest first.
    pub fn names(&self) -> Vec<Symbol> {
        self.decls.iter().map(Decl::name).collect()
    }

    /// The position of the most recent entry for `name`, oldest-first.
    pub fn position(&self, name: Symbol) -> Option<usize> {
        self.decls.iter().rposition(|d| d.name() == name)
    }

    /// Restricts the environment to the entries whose names appear in
    /// `keep`, preserving order.
    pub fn restrict(&self, keep: &[Symbol]) -> Env {
        let decls: Vec<Decl> =
            self.decls.iter().filter(|d| keep.contains(&d.name())).cloned().collect();
        let fingerprint = fingerprint_of(&decls);
        Env { decls, fingerprint }
    }

    /// Appends all entries of `other` after the entries of `self`.
    pub fn append(&self, other: &Env) -> Env {
        let mut decls = self.decls.clone();
        decls.extend(other.decls.iter().cloned());
        let fingerprint = other.decls.iter().fold(self.fingerprint, mix_decl);
        Env { decls, fingerprint }
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.decls.is_empty() {
            return write!(f, "·");
        }
        let mut first = true;
        for d in &self.decls {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match d {
                Decl::Assumption { name, ty } => write!(f, "{name} : {ty}")?,
                Decl::Definition { name, ty, term } => write!(f, "{name} = {term} : {ty}")?,
            }
        }
        Ok(())
    }
}

impl FromIterator<Decl> for Env {
    fn from_iter<I: IntoIterator<Item = Decl>>(iter: I) -> Env {
        let decls: Vec<Decl> = iter.into_iter().collect();
        let fingerprint = fingerprint_of(&decls);
        Env { decls, fingerprint }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn empty_env_displays_dot() {
        assert_eq!(Env::new().to_string(), "·");
        assert!(Env::new().is_empty());
    }

    #[test]
    fn lookup_finds_latest_binding() {
        let env =
            Env::new().with_assumption(sym("x"), bool_ty()).with_assumption(sym("x"), unit_ty());
        let ty = env.lookup_type(sym("x")).unwrap();
        assert!(matches!(&**ty, Term::Unit));
    }

    #[test]
    fn definitions_are_retrievable() {
        let env = Env::new().with_definition(sym("u"), unit_val(), unit_ty());
        assert!(env.lookup_definition(sym("u")).is_some());
        assert!(env.lookup_definition(sym("missing")).is_none());
        assert!(env.contains(sym("u")));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn restrict_and_append_preserve_order() {
        let env = Env::new()
            .with_assumption(sym("a"), star())
            .with_assumption(sym("b"), var("a"))
            .with_assumption(sym("c"), var("b"));
        let restricted = env.restrict(&[sym("c"), sym("a")]);
        assert_eq!(restricted.names(), vec![sym("a"), sym("c")]);
        let appended = restricted.append(&Env::new().with_assumption(sym("z"), star()));
        assert_eq!(appended.names(), vec![sym("a"), sym("c"), sym("z")]);
        assert_eq!(appended.position(sym("z")), Some(2));
    }

    #[test]
    fn display_shows_definitions() {
        let env = Env::new().with_definition(sym("u"), unit_val(), unit_ty());
        assert!(env.to_string().contains('='));
    }
}
