//! Reduction for CC-CC (Figure 6).
//!
//! The relation `Γ ⊢ e ⊲ e'` has the same δ (definition unfolding), ζ
//! (dependent let), π1/π2 (projections), and `if` rules as CC, but β is
//! replaced by the *closure application* rule
//!
//! ```text
//! ⟪λ (n : A', x : A). e, e'⟫ e'' ⊲ e[e'/n][e''/x]
//! ```
//!
//! which unpacks the closure, substituting the environment for the
//! environment parameter and the argument for the argument parameter in a
//! single (simultaneous) step.
//!
//! This module provides:
//!
//! * [`step`] / [`step_rc`] — one leftmost-outermost reduction step,
//! * [`reduce_steps`] — iterated stepping with a step bound,
//! * [`whnf`] — weak-head normalization (what the equivalence and type
//!   checkers need),
//! * [`normalize`] / [`normalize_default`] — full normalization,
//! * [`eval`] — evaluation of closed programs to values.
//!
//! Definition unfolding shares the environment's [`RcTerm`] instead of
//! deep-copying the definition, so δ-heavy normalization (hoisted programs,
//! label environments) allocates nothing per unfold.

use crate::ast::{RcTerm, Term};
use crate::env::Env;
use crate::subst::{occurs_free, rename, subst};
use cccc_util::fuel::Fuel;
use cccc_util::symbol::Symbol;
use std::fmt;

/// Errors produced by the reduction engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceError {
    /// The fuel budget was exhausted before a normal form was reached.
    OutOfFuel,
    /// Bare code was applied as if it were a closure. Code is not a
    /// first-class function in CC-CC (rule `[App]` eliminates closures
    /// only), so such a term is stuck *and* ill-typed.
    BareCodeApplication,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::OutOfFuel => write!(f, "reduction fuel exhausted"),
            ReduceError::BareCodeApplication => {
                write!(f, "bare code applied outside a closure")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// The closure-application reduct `e[e'/n][e''/x]`, computed
/// capture-avoidingly: the two substitutions are morally simultaneous, so
/// the binders are freshened first when they could collide with free
/// variables of the environment or argument.
pub(crate) fn apply_closure_code(
    env_binder: Symbol,
    arg_binder: Symbol,
    body: &Term,
    environment: &Term,
    argument: &Term,
) -> Term {
    // Freshen the argument binder if the environment could capture it (or
    // if the two binders collide, in which case the argument binder shadows
    // the environment binder).
    let (arg_binder, body) = if arg_binder == env_binder || occurs_free(arg_binder, environment) {
        let fresh = arg_binder.freshen();
        (fresh, rename(body, arg_binder, fresh))
    } else {
        (arg_binder, body.clone())
    };
    let body = subst(&body, env_binder, environment);
    subst(&body, arg_binder, argument)
}

/// Performs one reduction step in leftmost-outermost order, or returns
/// `None` if the term is in normal form with respect to `env`.
pub fn step(env: &Env, term: &Term) -> Option<Term> {
    step_rc(env, term).map(|rc| (*rc).clone())
}

/// [`step`] returning a shared [`RcTerm`]: a δ-unfold returns the
/// environment's own `Rc` (no copy), and iterated callers
/// ([`reduce_steps`]) avoid re-cloning the current term each step.
pub fn step_rc(env: &Env, term: &Term) -> Option<RcTerm> {
    match term {
        // ⊲δ: unfold a variable that has a definition in Γ. The Rc is
        // shared with the environment entry.
        Term::Var(x) => env.lookup_definition(*x).cloned(),
        Term::Sort(_) | Term::Unit | Term::UnitVal | Term::BoolTy | Term::BoolLit(_) => None,
        // ⊲ζ: let x = e : A in e1 ⊲ e1[e/x]
        Term::Let { binder, bound, body, .. } => Some(subst(body, *binder, bound).rc()),
        Term::App { func, arg } => {
            // The closure-application rule (Figure 6).
            if let Term::Closure { code, env: closure_env } = &**func {
                if let Term::Code { env_binder, arg_binder, body, .. } = &**code {
                    return Some(
                        apply_closure_code(*env_binder, *arg_binder, body, closure_env, arg).rc(),
                    );
                }
            }
            if let Some(stepped) = step_rc(env, func) {
                return Some(Term::App { func: stepped, arg: arg.clone() }.rc());
            }
            step_rc(env, arg).map(|stepped| Term::App { func: func.clone(), arg: stepped }.rc())
        }
        Term::Fst(e) => {
            if let Term::Pair { first, .. } = &**e {
                // ⊲π1 — shares the component.
                return Some(first.clone());
            }
            step_rc(env, e).map(|stepped| Term::Fst(stepped).rc())
        }
        Term::Snd(e) => {
            if let Term::Pair { second, .. } = &**e {
                // ⊲π2
                return Some(second.clone());
            }
            step_rc(env, e).map(|stepped| Term::Snd(stepped).rc())
        }
        Term::If { scrutinee, then_branch, else_branch } => {
            if let Term::BoolLit(b) = &**scrutinee {
                return Some(if *b { then_branch.clone() } else { else_branch.clone() });
            }
            if let Some(s) = step_rc(env, scrutinee) {
                return Some(
                    Term::If {
                        scrutinee: s,
                        then_branch: then_branch.clone(),
                        else_branch: else_branch.clone(),
                    }
                    .rc(),
                );
            }
            if let Some(t) = step_rc(env, then_branch) {
                return Some(
                    Term::If {
                        scrutinee: scrutinee.clone(),
                        then_branch: t,
                        else_branch: else_branch.clone(),
                    }
                    .rc(),
                );
            }
            step_rc(env, else_branch).map(|e| {
                Term::If {
                    scrutinee: scrutinee.clone(),
                    then_branch: then_branch.clone(),
                    else_branch: e,
                }
                .rc()
            })
        }
        Term::Closure { code, env: closure_env } => {
            if let Some(c) = step_rc(env, code) {
                return Some(Term::Closure { code: c, env: closure_env.clone() }.rc());
            }
            step_rc(env, closure_env).map(|e| Term::Closure { code: code.clone(), env: e }.rc())
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => {
            if let Some(t) = step_rc(env, env_ty) {
                return Some(
                    Term::Code {
                        env_binder: *env_binder,
                        env_ty: t,
                        arg_binder: *arg_binder,
                        arg_ty: arg_ty.clone(),
                        body: body.clone(),
                    }
                    .rc(),
                );
            }
            if let Some(t) = step_rc(env, arg_ty) {
                return Some(
                    Term::Code {
                        env_binder: *env_binder,
                        env_ty: env_ty.clone(),
                        arg_binder: *arg_binder,
                        arg_ty: t,
                        body: body.clone(),
                    }
                    .rc(),
                );
            }
            step_rc(env, body).map(|b| {
                Term::Code {
                    env_binder: *env_binder,
                    env_ty: env_ty.clone(),
                    arg_binder: *arg_binder,
                    arg_ty: arg_ty.clone(),
                    body: b,
                }
                .rc()
            })
        }
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => {
            if let Some(t) = step_rc(env, env_ty) {
                return Some(
                    Term::CodeTy {
                        env_binder: *env_binder,
                        env_ty: t,
                        arg_binder: *arg_binder,
                        arg_ty: arg_ty.clone(),
                        result: result.clone(),
                    }
                    .rc(),
                );
            }
            if let Some(t) = step_rc(env, arg_ty) {
                return Some(
                    Term::CodeTy {
                        env_binder: *env_binder,
                        env_ty: env_ty.clone(),
                        arg_binder: *arg_binder,
                        arg_ty: t,
                        result: result.clone(),
                    }
                    .rc(),
                );
            }
            step_rc(env, result).map(|r| {
                Term::CodeTy {
                    env_binder: *env_binder,
                    env_ty: env_ty.clone(),
                    arg_binder: *arg_binder,
                    arg_ty: arg_ty.clone(),
                    result: r,
                }
                .rc()
            })
        }
        Term::Pi { binder, domain, codomain } => {
            if let Some(d) = step_rc(env, domain) {
                return Some(
                    Term::Pi { binder: *binder, domain: d, codomain: codomain.clone() }.rc(),
                );
            }
            step_rc(env, codomain)
                .map(|c| Term::Pi { binder: *binder, domain: domain.clone(), codomain: c }.rc())
        }
        Term::Sigma { binder, first, second } => {
            if let Some(a) = step_rc(env, first) {
                return Some(
                    Term::Sigma { binder: *binder, first: a, second: second.clone() }.rc(),
                );
            }
            step_rc(env, second)
                .map(|b| Term::Sigma { binder: *binder, first: first.clone(), second: b }.rc())
        }
        Term::Pair { first, second, annotation } => {
            if let Some(a) = step_rc(env, first) {
                return Some(
                    Term::Pair { first: a, second: second.clone(), annotation: annotation.clone() }
                        .rc(),
                );
            }
            if let Some(b) = step_rc(env, second) {
                return Some(
                    Term::Pair { first: first.clone(), second: b, annotation: annotation.clone() }
                        .rc(),
                );
            }
            step_rc(env, annotation).map(|t| {
                Term::Pair { first: first.clone(), second: second.clone(), annotation: t }.rc()
            })
        }
    }
}

/// Repeatedly applies [`step_rc`] at most `max_steps` times; returns the
/// final term and the number of steps actually taken.
pub fn reduce_steps(env: &Env, term: &Term, max_steps: usize) -> (Term, usize) {
    let mut current: Option<RcTerm> = None;
    for taken in 0..max_steps {
        let view: &Term = current.as_deref().unwrap_or(term);
        match step_rc(env, view) {
            Some(next) => current = Some(next),
            None => {
                return (current.map_or_else(|| term.clone(), |rc| (*rc).clone()), taken);
            }
        }
    }
    (current.map_or_else(|| term.clone(), |rc| (*rc).clone()), max_steps)
}

/// Reduces `term` to weak-head normal form under `env`.
///
/// # Errors
///
/// Returns [`ReduceError::OutOfFuel`] when `fuel` is exhausted and
/// [`ReduceError::BareCodeApplication`] when code is applied outside a
/// closure.
pub fn whnf(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    // Canonical heads and definition-free variables are already weak-head
    // normal: return a (shallow, handle-sharing) clone without interning
    // the head or spending fuel. This is the dominant case on the
    // type-checking path, where inferred types are usually literal
    // `Π`/`Σ`/`Code`-type/sorts.
    match term {
        Term::Sort(_)
        | Term::Unit
        | Term::UnitVal
        | Term::BoolTy
        | Term::BoolLit(_)
        | Term::Pi { .. }
        | Term::Sigma { .. }
        | Term::Code { .. }
        | Term::CodeTy { .. }
        | Term::Pair { .. } => return Ok(term.clone()),
        Term::Var(x) if env.lookup_definition(*x).is_none() => return Ok(term.clone()),
        _ => {}
    }
    // `current` holds a shared handle so that δ-unfolds and structural
    // descents never copy the definition being unfolded.
    let mut current: RcTerm = term.clone().rc();
    loop {
        if !fuel.tick() {
            return Err(ReduceError::OutOfFuel);
        }
        match &*current {
            Term::Var(x) => match env.lookup_definition(*x) {
                Some(def) => current = def.clone(),
                None => return Ok((*current).clone()),
            },
            Term::Let { binder, bound, body, .. } => {
                current = subst(body, *binder, bound).rc();
            }
            Term::App { func, arg } => {
                let func_whnf = whnf(env, func, fuel)?;
                match func_whnf {
                    Term::Closure { code, env: closure_env } => {
                        let code_whnf = whnf(env, &code, fuel)?;
                        match code_whnf {
                            Term::Code { env_binder, arg_binder, body, .. } => {
                                current = apply_closure_code(
                                    env_binder,
                                    arg_binder,
                                    &body,
                                    &closure_env,
                                    arg,
                                )
                                .rc();
                            }
                            other => {
                                // A closure over neutral "code" (e.g. an
                                // abstract variable) is itself neutral.
                                return Ok(Term::App {
                                    func: Term::Closure { code: other.rc(), env: closure_env }.rc(),
                                    arg: arg.clone(),
                                });
                            }
                        }
                    }
                    Term::Code { .. } => return Err(ReduceError::BareCodeApplication),
                    other => {
                        return Ok(Term::App { func: other.rc(), arg: arg.clone() });
                    }
                }
            }
            Term::Fst(e) => {
                let inner = whnf(env, e, fuel)?;
                match inner {
                    Term::Pair { first, .. } => current = first,
                    other => return Ok(Term::Fst(other.rc())),
                }
            }
            Term::Snd(e) => {
                let inner = whnf(env, e, fuel)?;
                match inner {
                    Term::Pair { second, .. } => current = second,
                    other => return Ok(Term::Snd(other.rc())),
                }
            }
            Term::If { scrutinee, then_branch, else_branch } => {
                let s = whnf(env, scrutinee, fuel)?;
                match s {
                    Term::BoolLit(true) => current = then_branch.clone(),
                    Term::BoolLit(false) => current = else_branch.clone(),
                    other => {
                        return Ok(Term::If {
                            scrutinee: other.rc(),
                            then_branch: then_branch.clone(),
                            else_branch: else_branch.clone(),
                        })
                    }
                }
            }
            _ => return Ok((*current).clone()),
        }
    }
}

/// Fully normalizes `term` under `env`: weak-head normalizes, then recurses
/// into all remaining subterms (including under binders and inside code).
///
/// Subterms that [`whnf`] already left head-normal — the function of a
/// stuck application, the target of a stuck projection, the scrutinee of a
/// stuck `if` — are *not* re-weak-head-normalized on the way down; without
/// this, normalizing a neutral spine `f a1 … an` re-ran `whnf` from each
/// spine prefix, making the legacy engine accidentally quadratic in spine
/// length.
///
/// # Errors
///
/// See [`whnf`].
pub fn normalize(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let head = whnf(env, term, fuel)?;
    normalize_head(env, head, fuel)
}

/// Normalizes the subterms of a term already in weak-head normal form.
fn normalize_head(env: &Env, head: Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    let norm = |e: &RcTerm, fuel: &mut Fuel| -> Result<RcTerm, ReduceError> {
        Ok(normalize(env, e, fuel)?.rc())
    };
    // Re-enters `normalize_head` (no `whnf`) on positions the enclosing
    // `whnf` already head-normalized.
    let norm_whnf = |e: &RcTerm, fuel: &mut Fuel| -> Result<RcTerm, ReduceError> {
        Ok(normalize_head(env, (**e).clone(), fuel)?.rc())
    };
    Ok(match head {
        Term::Var(_)
        | Term::Sort(_)
        | Term::Unit
        | Term::UnitVal
        | Term::BoolTy
        | Term::BoolLit(_) => head,
        Term::Pi { binder, domain, codomain } => {
            Term::Pi { binder, domain: norm(&domain, fuel)?, codomain: norm(&codomain, fuel)? }
        }
        Term::Code { env_binder, env_ty, arg_binder, arg_ty, body } => Term::Code {
            env_binder,
            env_ty: norm(&env_ty, fuel)?,
            arg_binder,
            arg_ty: norm(&arg_ty, fuel)?,
            body: norm(&body, fuel)?,
        },
        Term::CodeTy { env_binder, env_ty, arg_binder, arg_ty, result } => Term::CodeTy {
            env_binder,
            env_ty: norm(&env_ty, fuel)?,
            arg_binder,
            arg_ty: norm(&arg_ty, fuel)?,
            result: norm(&result, fuel)?,
        },
        Term::Closure { code, env: closure_env } => {
            Term::Closure { code: norm(&code, fuel)?, env: norm(&closure_env, fuel)? }
        }
        Term::App { func, arg } => {
            Term::App { func: norm_whnf(&func, fuel)?, arg: norm(&arg, fuel)? }
        }
        Term::Let { .. } => unreachable!("whnf eliminates let"),
        Term::Sigma { binder, first, second } => {
            Term::Sigma { binder, first: norm(&first, fuel)?, second: norm(&second, fuel)? }
        }
        Term::Pair { first, second, annotation } => Term::Pair {
            first: norm(&first, fuel)?,
            second: norm(&second, fuel)?,
            annotation: norm(&annotation, fuel)?,
        },
        Term::Fst(e) => Term::Fst(norm_whnf(&e, fuel)?),
        Term::Snd(e) => Term::Snd(norm_whnf(&e, fuel)?),
        Term::If { scrutinee, then_branch, else_branch } => Term::If {
            scrutinee: norm_whnf(&scrutinee, fuel)?,
            then_branch: norm(&then_branch, fuel)?,
            else_branch: norm(&else_branch, fuel)?,
        },
    })
}

/// Normalizes with the default fuel budget.
///
/// # Panics
///
/// Panics if the default budget is exhausted or the term applies bare
/// code; intended for tests and examples operating on well-typed terms.
pub fn normalize_default(env: &Env, term: &Term) -> Term {
    let mut fuel = Fuel::default();
    normalize(env, term, &mut fuel).expect("normalization of a well-typed term failed")
}

/// Evaluates a closed program to a value (Theorem 4.8's `e ⊲* v`).
///
/// # Errors
///
/// See [`whnf`].
pub fn eval(env: &Env, term: &Term, fuel: &mut Fuel) -> Result<Term, ReduceError> {
    normalize(env, term, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::subst::alpha_eq;

    fn nf(t: &Term) -> Term {
        normalize_default(&Env::new(), t)
    }

    fn identity_closure() -> Term {
        closure(code("n", unit_ty(), "x", bool_ty(), var("x")), unit_val())
    }

    #[test]
    fn closure_application_beta() {
        let t = app(identity_closure(), tt());
        assert!(alpha_eq(&nf(&t), &tt()));
    }

    #[test]
    fn closure_application_unpacks_the_environment() {
        // ⟪λ (n : Bool, x : 1). n, true⟫ ⟨⟩ ⊲ true
        let clo = closure(code("n", bool_ty(), "x", unit_ty(), var("n")), tt());
        assert!(alpha_eq(&nf(&app(clo, unit_val())), &tt()));
    }

    #[test]
    fn environment_capture_is_avoided() {
        // The environment mentions a free variable named like the argument
        // binder: ⟪λ (n : Bool, x : Bool). if n then x else false, x⟫ true
        // must not confuse the captured `x` with the argument.
        let clo =
            closure(code("n", bool_ty(), "x", bool_ty(), ite(var("n"), var("x"), ff())), var("x"));
        let value = nf(&app(clo, tt()));
        // n ↦ the *free* x, so the result is `if x then true else false`.
        assert!(alpha_eq(&value, &ite(var("x"), tt(), ff())));
    }

    #[test]
    fn zeta_delta_and_projections() {
        let t = let_("u", unit_ty(), unit_val(), tt());
        assert!(alpha_eq(&nf(&t), &tt()));
        let env = Env::new().with_definition(Symbol::intern("b"), tt(), bool_ty());
        let mut fuel = Fuel::default();
        assert!(alpha_eq(&normalize(&env, &var("b"), &mut fuel).unwrap(), &tt()));
        let p = pair(tt(), ff(), product(bool_ty(), bool_ty()));
        assert!(alpha_eq(&nf(&fst(p.clone())), &tt()));
        assert!(alpha_eq(&nf(&snd(p)), &ff()));
        assert!(alpha_eq(&nf(&ite(tt(), ff(), tt())), &ff()));
    }

    #[test]
    fn step_counts_closure_applications() {
        let t = app(identity_closure(), app(identity_closure(), tt()));
        let (v, steps) = reduce_steps(&Env::new(), &t, 100);
        assert!(alpha_eq(&v, &tt()));
        assert_eq!(steps, 2);
    }

    #[test]
    fn step_on_values_is_none() {
        assert!(step(&Env::new(), &tt()).is_none());
        assert!(step(&Env::new(), &unit_val()).is_none());
        assert!(step(&Env::new(), &identity_closure()).is_none());
        assert!(step(&Env::new(), &var("free")).is_none());
    }

    #[test]
    fn step_reduces_inside_code_and_environments() {
        // A redex inside a closure environment is found by the contextual
        // closure.
        let clo =
            closure(code("n", bool_ty(), "x", unit_ty(), var("n")), app(identity_closure(), tt()));
        let stepped = step(&Env::new(), &clo).unwrap();
        match stepped {
            Term::Closure { env, .. } => assert!(alpha_eq(&env, &tt())),
            other => panic!("expected closure, got {other}"),
        }
        // And one inside a code body.
        let c = code("n", unit_ty(), "x", bool_ty(), app(identity_closure(), var("x")));
        let stepped = step(&Env::new(), &c).unwrap();
        match stepped {
            Term::Code { body, .. } => assert!(alpha_eq(&body, &var("x"))),
            other => panic!("expected code, got {other}"),
        }
    }

    #[test]
    fn bare_code_application_is_a_stuck_error() {
        let bare = app(code("n", unit_ty(), "x", bool_ty(), var("x")), tt());
        let mut fuel = Fuel::default();
        assert_eq!(
            whnf(&Env::new(), &bare, &mut fuel).unwrap_err(),
            ReduceError::BareCodeApplication
        );
    }

    #[test]
    fn neutral_applications_do_not_reduce() {
        let neutral = app(var("f"), tt());
        assert!(step(&Env::new(), &neutral).is_none());
        let mut fuel = Fuel::default();
        let w = whnf(&Env::new(), &neutral, &mut fuel).unwrap();
        assert!(alpha_eq(&w, &neutral));
    }

    #[test]
    fn delta_unfolding_shares_the_definition() {
        let definition = identity_closure();
        let env = Env::new().with_definition(
            Symbol::intern("id"),
            definition,
            pi("x", bool_ty(), bool_ty()),
        );
        let unfolded = step_rc(&env, &var("id")).unwrap();
        let again = step_rc(&env, &var("id")).unwrap();
        // Both unfolds return the same shared node.
        assert!(unfolded.same(&again));
    }

    #[test]
    fn out_of_fuel_is_reported() {
        // ω = ⟪λ (n : 1, x : Π b : Bool. Bool). x x, ⟨⟩⟫ applied to itself
        // diverges (ill-typed, but a good fuel witness).
        let omega_half = closure(
            code("n", unit_ty(), "x", pi("b", bool_ty(), bool_ty()), app(var("x"), var("x"))),
            unit_val(),
        );
        let omega = app(omega_half.clone(), omega_half);
        let mut fuel = Fuel::new(500);
        assert!(matches!(normalize(&Env::new(), &omega, &mut fuel), Err(ReduceError::OutOfFuel)));
    }

    #[test]
    fn reduce_error_displays() {
        assert_eq!(ReduceError::OutOfFuel.to_string(), "reduction fuel exhausted");
        assert!(ReduceError::BareCodeApplication.to_string().contains("code"));
    }
}
